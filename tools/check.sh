#!/usr/bin/env bash
# Full verification flow: the tier-1 gate (which includes the tier1_resume
# kill-and-resume determinism matrix and the tier1_net HTTP loopback
# suite), an end-to-end HTTP smoke (demo server + curl + graceful SIGTERM),
# the observability, serving and network suites under ThreadSanitizer
# (including the model hot-swap hammer and the net chaos fault injection),
# a failpoint-enabled kill -> resume -> hot-reload chaos smoke, and a
# serving-latency regression guard against the committed BENCH_serve.json.
#
#   tools/check.sh            # tier-1 + tsan obs/serve
#   tools/check.sh --fast     # tier-1 only
#   tools/check.sh --bench    # tier-1 + bench-regression guard
#
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

fast=0
bench=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
elif [[ "${1:-}" == "--bench" ]]; then
  bench=1
fi

echo "=== tier-1: configure + build + ctest (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest -L tier1 --no-tests=error --output-on-failure -j"$(nproc)")

if [[ "${fast}" != "1" ]]; then
  echo "=== http smoke: demo server up -> curl healthz/metrics/score -> graceful SIGTERM ==="
  cmake --build build -j --target example_http_server_demo >/dev/null
  smoke_dir="$(mktemp -d /tmp/dbg4eth_http_smoke.XXXXXX)"
  smoke_log="${smoke_dir}/server.log"
  smoke_port=18742
  ./build/examples/example_http_server_demo \
      --port="${smoke_port}" --ckpt-dir="${smoke_dir}/ckpt" \
      > "${smoke_log}" 2>&1 &
  smoke_pid=$!
  trap 'kill -9 "${smoke_pid}" 2>/dev/null || true; rm -rf "${smoke_dir}"' EXIT
  # First run trains the demo model before binding; wait for the banner.
  for _ in $(seq 1 600); do
    grep -q "listening on" "${smoke_log}" && break
    kill -0 "${smoke_pid}" 2>/dev/null || { cat "${smoke_log}"; exit 1; }
    sleep 0.5
  done
  grep -q "listening on" "${smoke_log}" || { cat "${smoke_log}"; exit 1; }
  base="http://127.0.0.1:${smoke_port}"
  [[ "$(curl -sf "${base}/healthz")" == "ok" ]]
  # grep without -q: -q would close the pipe early and fail curl under
  # pipefail with a write error.
  curl -sf "${base}/metrics" | grep "^net_requests_total" >/dev/null
  score_addr="$(grep -o '"address": [0-9]*' "${smoke_log}" | head -1 | grep -o '[0-9]*')"
  curl -sf -X POST "${base}/v1/score" -d "{\"address\": ${score_addr}}" \
      | grep '"score": ' >/dev/null
  # Trace propagation: a client traceparent id comes back as x-trace-id;
  # the debug surface serves trace trees, vars and a live profile.
  smoke_tid="1234567890abcdef1234567890abcdef"
  curl -sf -D - -o /dev/null -X POST "${base}/v1/score" \
      -H "traceparent: 00-${smoke_tid}-00f067aa0ba902b7-01" \
      -d "{\"address\": ${score_addr}}" \
      | grep -i "x-trace-id: ${smoke_tid}" >/dev/null
  # Exemplars are dialect-gated: a classic 0.0.4 scrape must stay clean
  # (a '#' after a sample value fails the whole Prometheus scrape) while
  # a negotiated OpenMetrics scrape carries them plus the "# EOF" marker.
  if curl -sf "${base}/metrics" | grep -F ' # {' >/dev/null; then
    echo "http smoke: classic /metrics carries exemplar suffixes"
    exit 1
  fi
  openmetrics="$(curl -sf -H 'Accept: application/openmetrics-text' "${base}/metrics")"
  echo "${openmetrics}" | grep -F '# {trace_id="' >/dev/null
  echo "${openmetrics}" | tail -1 | grep -x '# EOF' >/dev/null
  curl -sf "${base}/debug/traces" | grep '"traces"' >/dev/null
  curl -sf "${base}/debug/vars" | grep '"metrics"' >/dev/null
  # One second of wall-clock sampling must yield non-empty folded stacks
  # ("name;name count" lines) for flamegraph tooling.
  profile_out="$(curl -sf "${base}/debug/profile?seconds=1")"
  [[ -n "${profile_out}" ]]
  echo "${profile_out}" | head -1 | grep -E ' [0-9]+$' >/dev/null
  kill -TERM "${smoke_pid}"
  smoke_status=0
  wait "${smoke_pid}" || smoke_status=$?
  trap - EXIT
  rm -rf "${smoke_dir}"
  if [[ "${smoke_status}" != "0" ]]; then
    echo "http smoke: server exited ${smoke_status} (graceful drain failed)"
    exit 1
  fi
  echo "  http smoke passed (server drained and exited 0)"
fi

if [[ "${bench}" == "1" ]]; then
  echo "=== bench-regression guard: cold p50/p95 vs committed BENCH_serve.json ==="
  cmake --build build -j --target bench_serve_throughput >/dev/null
  fresh_a="$(mktemp /tmp/bench_serve.XXXXXX.json)"
  fresh_b="$(mktemp /tmp/bench_serve.XXXXXX.json)"
  trap 'rm -f "${fresh_a}" "${fresh_b}"' EXIT
  ./build/bench/bench_serve_throughput "${fresh_a}" >/dev/null
  # A second sample guards against flakes: latency quantiles of a
  # queue-dominated run jitter well past 20% on a busy machine, so a
  # regression must reproduce in both runs to fail the check.
  ./build/bench/bench_serve_throughput "${fresh_b}" >/dev/null
  python3 - "BENCH_serve.json" "${fresh_a}" "${fresh_b}" <<'PY'
import json, sys

committed = json.load(open(sys.argv[1]))
samples = [json.load(open(path)) for path in sys.argv[2:]]

def cold_latency(doc, workers):
    for point in doc["cold"]:
        if point["workers"] == workers:
            return point["latency"]
    raise SystemExit(f"no cold point at workers={workers}")

failed = False
for workers in (1, 8):
    base = cold_latency(committed, workers)
    for quantile in ("p50_us", "p95_us"):
        best = min(cold_latency(s, workers)[quantile] for s in samples)
        ratio = best / base[quantile] if base[quantile] > 0 else 1.0
        marker = "OK  "
        if ratio > 1.20:  # >20% slower than the committed baseline.
            marker = "FAIL"
            failed = True
        print(f"  {marker} cold {quantile} workers={workers}: "
              f"best-of-{len(samples)} {best:.0f}us vs baseline "
              f"{base[quantile]:.0f}us ({ratio:.2f}x)")
if failed:
    raise SystemExit("bench regression: cold latency >20% above the "
                     "committed BENCH_serve.json baseline in every sample")
print("  bench-regression guard passed")
PY
fi

if [[ "${fast}" == "1" || "${bench}" == "1" ]]; then
  echo "=== skipping tsan pass (fast/bench mode) ==="
  exit 0
fi

echo "=== tsan: configure + build (build-tsan/) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j

echo "=== tsan: obs suite (ctest -L obs) ==="
(cd build-tsan && ctest -L obs --no-tests=error --output-on-failure -j"$(nproc)")

echo "=== tsan: serve + chaos + inference fast-path suites ==="
(cd build-tsan && ctest -R "Serve|ServerStats|ThreadPool|RequestQueue|ResultCache|InferenceArena|TapeFree|FastPath|MaskedAttentionAlpha|PackedBlocks|ModelRegistry" \
    --no-tests=error --output-on-failure -j"$(nproc)")

# The network suite carries the event loops' cross-thread handoffs
# (acceptor -> loop inbox -> handler pool -> loop completion), and the
# net chaos tests inject accept/read/write faults under that concurrency
# — both must be clean under tsan.
echo "=== tsan: net suite + net chaos (ctest -L net / -R NetChaos) ==="
(cd build-tsan && ctest -L net --no-tests=error --output-on-failure -j"$(nproc)")
(cd build-tsan && ctest -R "NetChaos" --no-tests=error --output-on-failure -j"$(nproc)")

# The tsan preset compiles with DBG4ETH_FAILPOINTS=ON, so this stage
# actually injects the faults; in the default build these tests skip.
echo "=== failpoints: kill during snapshot/epoch -> resume -> hot-reload smoke ==="
(cd build-tsan && ctest -R "ResumeReloadChaos" \
    --no-tests=error --output-on-failure -j"$(nproc)")

echo "=== all checks passed ==="
