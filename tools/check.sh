#!/usr/bin/env bash
# Full verification flow: the tier-1 gate plus the observability and
# serving suites under ThreadSanitizer.
#
#   tools/check.sh            # tier-1 + tsan obs/serve
#   tools/check.sh --fast     # tier-1 only
#
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

fast=0
if [[ "${1:-}" == "--fast" ]]; then
  fast=1
fi

echo "=== tier-1: configure + build + ctest (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest -L tier1 --no-tests=error --output-on-failure -j"$(nproc)")

if [[ "${fast}" == "1" ]]; then
  echo "=== fast mode: skipping tsan pass ==="
  exit 0
fi

echo "=== tsan: configure + build (build-tsan/) ==="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j

echo "=== tsan: obs suite (ctest -L obs) ==="
(cd build-tsan && ctest -L obs --no-tests=error --output-on-failure -j"$(nproc)")

echo "=== tsan: serve + chaos suites ==="
(cd build-tsan && ctest -R "Serve|ServerStats|ThreadPool|RequestQueue|ResultCache" \
    --no-tests=error --output-on-failure -j"$(nproc)")

echo "=== all checks passed ==="
