// Scenario: a compliance team must identify which counterparty addresses
// are undeclared exchange hot wallets (KYC / "know your account"). The
// team has a handful of confirmed labels and a large pool of unknown
// addresses; it wants a ranked review queue.
//
// This example trains an exchange identifier, scores every unknown
// candidate, and reports precision-at-k of the resulting review queue.
//
// Run: ./build/examples/example_exchange_compliance
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/label_store.h"
#include "eth/ledger.h"
#include "graph/build.h"
#include "graph/sampling.h"
#include "features/node_features.h"

using namespace dbg4eth;  // Example code; library code never does this.

int main() {
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 1500;
  ledger_config.num_exchange = 40;
  ledger_config.duration_days = 180.0;
  ledger_config.seed = 11;
  eth::LedgerSimulator ledger(ledger_config);
  if (!ledger.Generate().ok()) return 1;

  // Label scarcity: the public label cloud covers only 60% of exchanges.
  Rng label_rng(3);
  eth::LabelStore labels =
      eth::LabelStore::BuildFromLedger(ledger, 0.6, &label_rng);
  const auto known_exchanges =
      labels.LabeledAccounts(eth::AccountClass::kExchange);
  std::printf("label cloud: %zu labeled accounts, %zu known exchanges\n",
              labels.size(), known_exchanges.size());

  // Train on the labeled subset.
  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kExchange;
  ds_config.max_positives = static_cast<int>(known_exchanges.size());
  ds_config.num_time_slices = 8;
  auto ds = eth::BuildDataset(ledger, ds_config);
  if (!ds.ok()) return 1;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();
  core::Dbg4EthConfig config;
  config.gsg.hidden_dim = 24;
  config.gsg.epochs = 8;
  config.ldg.hidden_dim = 24;
  config.ldg.epochs = 6;
  core::Dbg4Eth model(config);
  Rng split_rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset.labels(), config.train_fraction, config.val_fraction,
      &split_rng);
  if (!model.Train(&dataset, split).ok()) return 1;

  // Candidate pool: unlabeled exchanges (ground truth hidden) mixed with
  // active normal users.
  struct Candidate {
    eth::AccountId id;
    bool truly_exchange;
    double score = 0.0;
  };
  std::vector<Candidate> queue;
  for (eth::AccountId id :
       ledger.AccountsOfClass(eth::AccountClass::kExchange)) {
    if (!labels.Lookup(id).has_value()) queue.push_back({id, true});
  }
  Rng pick_rng(9);
  int added_normals = 0;
  while (added_normals < 60) {
    const eth::AccountId id = 1 + pick_rng.UniformInt(ledger_config.num_normal);
    if (ledger.TransactionsOf(id).size() < 8) continue;
    queue.push_back({id, false});
    ++added_normals;
  }

  graph::SamplingConfig sampling;
  int scored = 0;
  for (Candidate& candidate : queue) {
    auto sub_result = graph::SampleSubgraph(ledger, candidate.id, sampling);
    if (!sub_result.ok()) continue;
    eth::TxSubgraph sub = std::move(sub_result).ValueOrDie();
    eth::GraphInstance inst;
    inst.gsg = graph::BuildGlobalStaticGraph(sub);
    inst.ldg = graph::BuildLocalDynamicGraphs(sub, 8);
    const Matrix feats =
        features::LogScaleFeatures(features::ComputeNodeFeatures(sub));
    inst.gsg.node_features = feats;
    for (auto& slice : inst.ldg) slice.node_features = feats;
    inst.subgraph = std::move(sub);
    model.Normalize(&inst);  // apply the model's feature statistics
    candidate.score = model.PredictProba(inst);
    ++scored;
  }
  std::printf("scored %d candidate addresses\n\n", scored);

  std::sort(queue.begin(), queue.end(), [](const auto& a, const auto& b) {
    return a.score > b.score;
  });
  std::printf("top of the review queue:\n");
  const int k = std::min<int>(10, static_cast<int>(queue.size()));
  int hits = 0;
  for (int i = 0; i < k; ++i) {
    std::printf("  #%2d account %5d  P(exchange)=%.3f  [%s]\n", i + 1,
                queue[i].id, queue[i].score,
                queue[i].truly_exchange ? "exchange" : "normal user");
    hits += queue[i].truly_exchange ? 1 : 0;
  }
  std::printf("\nprecision@%d = %.0f%%\n", k, 100.0 * hits / k);
  return 0;
}
