// Scenario: a monitoring service trains the de-anonymization model
// offline, ships the checkpoint to production scorers, and serves
// predictions without retraining.
//
// This example trains a bridge identifier, saves it, reloads it from the
// checkpoint bytes, and verifies that the restored model reproduces the
// original predictions bit-for-bit.
//
// Run: ./build/examples/example_model_persistence
#include <cstdio>
#include <sstream>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"

using namespace dbg4eth;  // Example code; library code never does this.

int main() {
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 1200;
  ledger_config.duration_days = 150.0;
  ledger_config.seed = 21;
  eth::LedgerSimulator ledger(ledger_config);
  if (!ledger.Generate().ok()) return 1;

  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kBridge;
  ds_config.max_positives = 30;
  ds_config.num_time_slices = 8;
  auto ds = eth::BuildDataset(ledger, ds_config);
  if (!ds.ok()) return 1;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();

  // --- offline: train and checkpoint ---
  core::Dbg4EthConfig config;
  config.gsg.hidden_dim = 24;
  config.gsg.epochs = 8;
  config.ldg.hidden_dim = 24;
  config.ldg.epochs = 6;
  core::Dbg4Eth trainer(config);
  Rng rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset.labels(), config.train_fraction, config.val_fraction, &rng);
  if (!trainer.Train(&dataset, split).ok()) return 1;

  std::stringstream checkpoint;
  if (Status st = trainer.Save(&checkpoint); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint size: %zu bytes\n", checkpoint.str().size());

  // --- production: load and serve ---
  auto loaded = core::Dbg4Eth::Load(&checkpoint);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto& scorer = loaded.ValueOrDie();

  int checked = 0;
  double max_diff = 0.0;
  for (int idx : split.test) {
    const auto& inst = dataset.instances[idx];
    const double original = trainer.PredictProba(inst);
    const double restored = scorer->PredictProba(inst);
    max_diff = std::max(max_diff, std::abs(original - restored));
    ++checked;
  }
  std::printf("verified %d test predictions, max |diff| = %.2e\n", checked,
              max_diff);
  std::printf(max_diff == 0.0
                  ? "restored model is bit-identical to the trained one\n"
                  : "WARNING: restored model diverges!\n");
  return max_diff == 0.0 ? 0 : 1;
}
