// Scenario: an exchange compliance desk runs the de-anonymization model as
// an online service. The model is trained and checkpointed offline; the
// serving layer loads the checkpoint and scores addresses concurrently as
// requests arrive, micro-batching them across a worker pool and caching
// results keyed by (address, ledger height).
//
// This demo trains a small exchange identifier, saves it, stands up an
// InferenceService on the checkpoint, hammers it from several client
// threads (with repeats, so the cache gets exercised), and prints the
// ServerStats operational report followed by the process-wide metrics in
// Prometheus text exposition format (the same dump a scrape endpoint
// would serve).
//
// Run: ./build/examples/example_serving_demo
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"
#include "obs/export.h"
#include "serve/inference_service.h"

using namespace dbg4eth;  // Example code; library code never does this.

int main() {
  // --- offline: ledger, dataset, training, checkpoint ---
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 1200;
  ledger_config.duration_days = 150.0;
  ledger_config.seed = 21;
  eth::LedgerSimulator ledger(ledger_config);
  if (!ledger.Generate().ok()) return 1;

  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kExchange;
  ds_config.max_positives = 30;
  ds_config.sampling.top_k = 6;
  ds_config.sampling.max_nodes = 48;
  ds_config.num_time_slices = 6;
  auto ds = eth::BuildDataset(ledger, ds_config);
  if (!ds.ok()) return 1;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();

  core::Dbg4EthConfig model_config;
  model_config.gsg.hidden_dim = 24;
  model_config.gsg.epochs = 6;
  model_config.ldg.hidden_dim = 24;
  model_config.ldg.epochs = 4;
  core::Dbg4Eth trainer(model_config);
  Rng rng(model_config.seed);
  const ml::SplitIndices split =
      ml::StratifiedSplit(dataset.labels(), model_config.train_fraction,
                          model_config.val_fraction, &rng);
  if (!trainer.Train(&dataset, split).ok()) return 1;

  std::stringstream checkpoint;
  if (!trainer.Save(&checkpoint).ok()) return 1;
  std::printf("trained exchange identifier, checkpoint = %zu bytes\n\n",
              checkpoint.str().size());

  // --- online: serving layer over the checkpoint ---
  serve::InferenceServiceConfig serve_config;
  serve_config.num_workers = 4;
  serve_config.queue.max_batch = 8;
  serve_config.queue.max_wait_us = 1000;
  serve_config.cache.capacity = 1024;
  serve_config.sampling = ds_config.sampling;
  serve_config.num_time_slices = ds_config.num_time_slices;
  auto created =
      serve::InferenceService::Create(serve_config, &checkpoint, &ledger);
  if (!created.ok()) {
    std::fprintf(stderr, "service: %s\n", created.status().ToString().c_str());
    return 1;
  }
  auto& service = *created.ValueOrDie();

  // Addresses worth scoring: every labeled account class.
  std::vector<eth::AccountId> addresses;
  for (auto cls :
       {eth::AccountClass::kExchange, eth::AccountClass::kIcoWallet,
        eth::AccountClass::kMining, eth::AccountClass::kPhishHack,
        eth::AccountClass::kBridge, eth::AccountClass::kDefi}) {
    for (eth::AccountId id : ledger.AccountsOfClass(cls)) {
      addresses.push_back(id);
    }
  }
  std::printf("serving %zu candidate addresses with %d workers...\n",
              addresses.size(), serve_config.num_workers);

  // N client threads, each sweeping the address list twice (the second
  // sweep should be nearly all cache hits).
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, &addresses, c] {
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (size_t i = c; i < addresses.size(); i += kClients) {
          (void)service.Score(addresses[i]);
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  // A few headline scores: top suspected exchanges.
  std::printf("\nsample scores (P(exchange)):\n");
  int shown = 0;
  for (eth::AccountId id : ledger.AccountsOfClass(eth::AccountClass::kExchange)) {
    const serve::ScoreResult result = service.Score(id);
    if (!result.ok()) continue;
    std::printf("  account %-6d -> %.3f%s\n", id, result.probability,
                result.cache_hit ? "  (cached)" : "");
    if (++shown >= 5) break;
  }

  std::printf("\n--- ServerStats ---\n%s\n",
              serve::ServerStats::Format(service.StatsSnapshot()).c_str());
  service.Shutdown();

  // Everything the process recorded — serving counters and latency
  // histograms, training phase timings from the offline phase above,
  // cache events — in Prometheus text exposition format.
  std::printf("\n--- metrics (text exposition) ---\n%s",
              obs::TextExposition().c_str());
  return 0;
}
