// Scenario: an investigator receives a report about a suspicious address
// and wants (a) a calibrated probability that it is a phishing/hack
// wallet and (b) the behavioural evidence behind the call.
//
// This example trains a phish-hack model, then "investigates" unlabeled
// suspect addresses: it samples each suspect's transaction subgraph,
// scores it, and prints the 15-dim deep features of the suspect next to
// the average profile of known phishing wallets.
//
// Run: ./build/examples/example_phishing_investigation
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"
#include "features/node_features.h"
#include "graph/build.h"
#include "graph/sampling.h"

using namespace dbg4eth;  // Example code; library code never does this.

namespace {

/// Builds one GraphInstance for a suspect account outside the training
/// dataset (the same materialization BuildDataset performs).
Result<eth::GraphInstance> Investigate(const eth::LedgerSimulator& ledger,
                                       eth::AccountId suspect,
                                       int num_time_slices) {
  graph::SamplingConfig sampling;
  DBG4ETH_ASSIGN_OR_RETURN(eth::TxSubgraph sub,
                           graph::SampleSubgraph(ledger, suspect, sampling));
  eth::GraphInstance inst;
  inst.gsg = graph::BuildGlobalStaticGraph(sub);
  inst.ldg = graph::BuildLocalDynamicGraphs(sub, num_time_slices);
  const Matrix feats =
      features::LogScaleFeatures(features::ComputeNodeFeatures(sub));
  inst.gsg.node_features = feats;
  for (auto& slice : inst.ldg) slice.node_features = feats;
  inst.subgraph = std::move(sub);
  return inst;
}

}  // namespace

int main() {
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 1500;
  ledger_config.duration_days = 180.0;
  ledger_config.seed = 7;
  eth::LedgerSimulator ledger(ledger_config);
  if (!ledger.Generate().ok()) return 1;

  // Train the detector on the labeled portion.
  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kPhishHack;
  ds_config.max_positives = 40;
  ds_config.num_time_slices = 8;
  auto ds = eth::BuildDataset(ledger, ds_config);
  if (!ds.ok()) return 1;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();

  core::Dbg4EthConfig config;
  config.gsg.hidden_dim = 24;
  config.gsg.epochs = 8;
  config.ldg.hidden_dim = 24;
  config.ldg.epochs = 6;
  core::Dbg4Eth model(config);
  Rng rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset.labels(), config.train_fraction, config.val_fraction, &rng);
  if (!model.Train(&dataset, split).ok()) return 1;
  std::printf("detector trained on %zu graphs\n\n", split.train.size());

  // Mean phishing profile (log-scaled features of known positive centers).
  std::vector<double> phish_profile(features::kFeatureDim, 0.0);
  int n_pos = 0;
  for (const auto& inst : dataset.instances) {
    if (inst.label != 1) continue;
    for (int c = 0; c < features::kFeatureDim; ++c) {
      phish_profile[c] += inst.gsg.node_features.At(inst.gsg.center, c);
    }
    ++n_pos;
  }
  for (double& v : phish_profile) v /= n_pos;

  // Suspects: one actual phishing wallet, one exchange, one normal user,
  // none of which the investigator has labels for.
  struct Suspect {
    const char* description;
    eth::AccountId id;
  };
  const std::vector<Suspect> suspects = {
      {"reported drainer wallet",
       ledger.AccountsOfClass(eth::AccountClass::kPhishHack).back()},
      {"high-volume counterparty",
       ledger.AccountsOfClass(eth::AccountClass::kExchange).back()},
      {"random retail user", 25},
  };
  for (const Suspect& suspect : suspects) {
    auto inst_result = Investigate(ledger, suspect.id, 8);
    if (!inst_result.ok()) {
      std::printf("%-26s : no transaction history (%s)\n",
                  suspect.description,
                  inst_result.status().ToString().c_str());
      continue;
    }
    eth::GraphInstance inst = std::move(inst_result).ValueOrDie();
    model.Normalize(&inst);  // apply the model's feature statistics
    const double p = model.PredictProba(inst);
    std::printf("%-26s : P(phish) = %.3f  %s\n", suspect.description, p,
                p > 0.5 ? "<-- FLAG FOR REVIEW" : "");

    // Evidence: suspect's features vs. the known-phish profile, largest
    // deviations first.
    std::vector<std::pair<double, int>> deviations;
    for (int c = 0; c < features::kFeatureDim; ++c) {
      const double value = inst.gsg.node_features.At(inst.gsg.center, c);
      deviations.push_back({value - phish_profile[c], c});
    }
    std::sort(deviations.begin(), deviations.end(), [](auto a, auto b) {
      return std::abs(a.first) > std::abs(b.first);
    });
    std::printf("    strongest deviations from known-phish profile:");
    for (int k = 0; k < 3; ++k) {
      std::printf(" %s(%+.1f)",
                  features::FeatureNames()[deviations[k].second].c_str(),
                  deviations[k].first);
    }
    std::printf("\n");
  }
  return 0;
}
