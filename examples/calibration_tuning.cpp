// Scenario: a risk platform consumes model scores and must report
// trustworthy probabilities (paper challenge (ii)). This example uses the
// calibration library standalone: it fits the six calibration methods of
// Sec. IV-C on a deliberately over-confident score distribution, compares
// their ECE reduction, and shows how the adaptive ΔECE weighting (Eq.
// 24-25) combines them.
//
// Run: ./build/examples/example_calibration_tuning
#include <cstdio>
#include <vector>

#include "calib/adaptive.h"
#include "calib/ece.h"
#include "common/math_util.h"
#include "common/rng.h"

using namespace dbg4eth;  // Example code; library code never does this.

namespace {

/// Over-confident classifier: true P(y=1|s) is milder than the reported s.
void SampleScores(int n, uint64_t seed, std::vector<double>* scores,
                  std::vector<int>* labels) {
  Rng rng(seed);
  scores->clear();
  labels->clear();
  for (int i = 0; i < n; ++i) {
    const double s = rng.Uniform();
    const double true_p = 0.3 + 0.4 * s;  // much flatter than reported
    scores->push_back(s);
    labels->push_back(rng.Bernoulli(true_p) ? 1 : 0);
  }
}

}  // namespace

int main() {
  std::vector<double> fit_scores, test_scores;
  std::vector<int> fit_labels, test_labels;
  SampleScores(1200, 1, &fit_scores, &fit_labels);
  SampleScores(1200, 2, &test_scores, &test_labels);

  const double raw_ece =
      calib::ExpectedCalibrationError(test_scores, test_labels);
  std::printf("raw model ECE on held-out data: %.4f\n\n", raw_ece);

  std::printf("%-14s %-12s %-10s %s\n", "method", "family", "test ECE",
              "reduction");
  for (auto& method : calib::MakeAllCalibrators()) {
    if (!method->Fit(fit_scores, fit_labels).ok()) continue;
    const double ece = calib::ExpectedCalibrationError(
        method->CalibrateAll(test_scores), test_labels);
    std::printf("%-14s %-12s %-10.4f %+.4f\n", method->name().c_str(),
                method->parametric() ? "parametric" : "non-param.", ece,
                raw_ece - ece);
  }

  calib::AdaptiveCalibrator adaptive;
  if (!adaptive.Fit(fit_scores, fit_labels).ok()) return 1;
  const double adaptive_ece = calib::ExpectedCalibrationError(
      adaptive.CalibrateAll(test_scores), test_labels);
  std::printf("%-14s %-12s %-10.4f %+.4f\n", "adaptive", "ensemble",
              adaptive_ece, raw_ece - adaptive_ece);

  std::printf("\nadaptive weights (Eq. 25, proportional to ΔECE):\n");
  for (const auto& m : adaptive.methods()) {
    std::printf("  %-12s ΔECE=%+.4f  weight=%+.3f\n", m.name.c_str(),
                m.delta_ece, m.weight);
  }

  std::printf("\nreliability diagram after adaptive calibration:\n");
  const auto bins = calib::ReliabilityDiagram(
      adaptive.CalibrateAll(test_scores), test_labels);
  for (size_t b = 0; b < bins.size(); ++b) {
    if (bins[b].fraction == 0.0) continue;
    std::printf("  bin %zu: confidence %.2f accuracy %.2f mass %.2f\n", b,
                bins[b].mean_confidence, bins[b].accuracy, bins[b].fraction);
  }
  return 0;
}
