// Scenario: an analyst has real chain data — a transaction dump plus a
// label list exported from a block explorer — and wants to run the full
// DBG4ETH pipeline on it.
//
// The CSV format is documented in eth/csv_ledger.h:
//   transactions: from,to,value,timestamp,gas_price,gas_used,to_is_contract
//   labels:       address,label
//
// For a self-contained demo this example first *exports* a simulated
// ledger to CSV files (standing in for the explorer dump), then runs the
// import -> dataset -> train -> classify path exactly as it would on real
// data.
//
// Run: ./build/examples/example_import_real_data
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/dbg4eth.h"
#include "eth/csv_ledger.h"
#include "eth/dataset.h"
#include "eth/ledger.h"

using namespace dbg4eth;  // Example code; library code never does this.

int main() {
  // --- stand-in for a block-explorer export ---
  eth::LedgerConfig sim_config;
  sim_config.num_normal = 1200;
  sim_config.duration_days = 150.0;
  sim_config.seed = 33;
  eth::LedgerSimulator sim(sim_config);
  if (!sim.Generate().ok()) return 1;
  const char* tx_path = "/tmp/dbg4eth_transactions.csv";
  const char* label_path = "/tmp/dbg4eth_labels.csv";
  {
    std::ofstream tx_file(tx_path);
    std::ofstream label_file(label_path);
    eth::WriteTransactionsCsv(sim, &tx_file);
    eth::WriteLabelsCsv(sim, &label_file);
  }
  std::printf("exported %zu transactions to %s\n", sim.transactions().size(),
              tx_path);

  // --- the actual import path an analyst would start from ---
  std::ifstream tx_file(tx_path);
  auto ledger_result = eth::CsvLedger::FromCsv(&tx_file);
  if (!ledger_result.ok()) {
    std::fprintf(stderr, "import: %s\n",
                 ledger_result.status().ToString().c_str());
    return 1;
  }
  auto ledger = std::move(ledger_result).ValueOrDie();
  std::ifstream label_file(label_path);
  auto labels_applied = ledger->LoadLabels(&label_file);
  if (!labels_applied.ok()) return 1;
  std::printf("imported %zu accounts, %zu transactions, %d labels\n",
              ledger->accounts().size(), ledger->transactions().size(),
              labels_applied.ValueOrDie());

  // Train a phish-hack identifier on the imported data.
  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kPhishHack;
  ds_config.max_positives = 40;
  ds_config.num_time_slices = 8;
  auto ds = eth::BuildDataset(*ledger, ds_config);
  if (!ds.ok()) return 1;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();

  core::Dbg4EthConfig model_config;
  model_config.gsg.hidden_dim = 24;
  model_config.gsg.epochs = 8;
  model_config.ldg.hidden_dim = 24;
  model_config.ldg.epochs = 6;
  core::Dbg4Eth model(model_config);
  auto report = model.TrainAndEvaluate(&dataset);
  if (!report.ok()) return 1;
  std::printf("\nphish-hack identification on imported data:\n");
  std::printf("  F1 %.2f%%  accuracy %.2f%%  AUC %.3f\n",
              report.ValueOrDie().metrics.f1 * 100,
              report.ValueOrDie().metrics.accuracy * 100,
              report.ValueOrDie().auc);

  // Look up a specific address the way an analyst would.
  const auto phishes = ledger->AccountsOfClass(eth::AccountClass::kPhishHack);
  if (!phishes.empty()) {
    std::printf("\nexample address lookup: '%s' is labeled %s\n",
                ledger->AddressOf(phishes[0]).c_str(),
                eth::AccountClassName(
                    ledger->accounts()[phishes[0]].cls));
  }
  return 0;
}
