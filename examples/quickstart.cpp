// Quickstart: the whole DBG4ETH pipeline in ~60 lines.
//
// 1. Simulate an Ethereum ledger with labeled behavioural classes.
// 2. Build an account-centred subgraph dataset for one class.
// 3. Train the double-graph model (GSG + LDG + adaptive calibration +
//    LightGBM head) and evaluate it.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/example_quickstart
#include <cstdio>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"

using namespace dbg4eth;  // Example code; library code never does this.

int main() {
  // 1. A synthetic Ethereum ledger: ~4k accounts, class-specific behaviour
  //    generators (exchange hubs, ICO bursts, mining periodicity, ...).
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 1500;
  ledger_config.duration_days = 180.0;
  ledger_config.seed = 42;
  eth::LedgerSimulator ledger(ledger_config);
  if (Status st = ledger.Generate(); !st.ok()) {
    std::fprintf(stderr, "ledger: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ledger: %zu accounts, %zu transactions\n",
              ledger.accounts().size(), ledger.transactions().size());

  // 2. A binary dataset: is this account a phishing/hack wallet?
  //    Sampling keeps each account's top-K counterparties by average
  //    transaction value, 2 hops deep (paper Eq. 2).
  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kPhishHack;
  ds_config.max_positives = 40;
  ds_config.num_time_slices = 8;
  auto ds_result = eth::BuildDataset(ledger, ds_config);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  eth::SubgraphDataset dataset = std::move(ds_result).ValueOrDie();
  std::printf("dataset: %d graphs (%d positive), avg %.0f nodes\n",
              dataset.num_graphs(), dataset.num_positives(),
              dataset.avg_nodes());

  // 3. Train and evaluate the full double-graph model.
  core::Dbg4EthConfig model_config;
  model_config.gsg.hidden_dim = 24;
  model_config.gsg.epochs = 8;
  model_config.ldg.hidden_dim = 24;
  model_config.ldg.epochs = 6;
  core::Dbg4Eth model(model_config);
  auto report_result = model.TrainAndEvaluate(&dataset);
  if (!report_result.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 report_result.status().ToString().c_str());
    return 1;
  }
  const core::EvaluationReport& report = report_result.ValueOrDie();
  std::printf("\nDBG4ETH on phish-hack:\n");
  std::printf("  precision %.2f%%  recall %.2f%%  F1 %.2f%%  accuracy "
              "%.2f%%  AUC %.3f\n",
              report.metrics.precision * 100, report.metrics.recall * 100,
              report.metrics.f1 * 100, report.metrics.accuracy * 100,
              report.auc);

  // The adaptive calibration fitted six methods per branch (Eq. 24-25).
  std::printf("\nGSG calibration weights:");
  for (const auto& m : report.gsg_calibration) {
    std::printf(" %s=%.2f", m.name.c_str(), m.weight);
  }
  std::printf("\nLDG calibration weights:");
  for (const auto& m : report.ldg_calibration) {
    std::printf(" %s=%.2f", m.name.c_str(), m.weight);
  }
  std::printf("\n");
  return 0;
}
