// Scenario: the de-anonymization model served over HTTP. A checkpoint
// directory is the contract between training and serving: on first run
// this demo trains a small exchange identifier and publishes it there;
// on later runs it skips training and serves the existing checkpoint.
// A ModelRegistry watcher polls the same directory, so publishing a new
// generation (e.g. by a retraining job, or by re-running this demo with
// --retrain) hot-swaps the serving model with zero downtime.
//
// Run:  ./build/examples/example_http_server_demo [--port=N] [--ckpt-dir=D]
// Then: curl -s http://127.0.0.1:<port>/healthz
//       curl -s -X POST http://127.0.0.1:<port>/v1/score -d '{"address": 3}'
//       curl -s http://127.0.0.1:<port>/metrics | head
// Stop with SIGINT/SIGTERM: the server drains in-flight requests and the
// process exits 0.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "common/checkpoint_store.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"
#include "net/scoring_app.h"
#include "net/server.h"
#include "serve/inference_service.h"
#include "serve/model_registry.h"

using namespace dbg4eth;  // Example code; library code never does this.

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

constexpr int kTimeSlices = 4;

graph::SamplingConfig Sampling() {
  graph::SamplingConfig sampling;
  sampling.top_k = 6;
  sampling.max_nodes = 48;
  return sampling;
}

/// Trains the exchange identifier and returns its Save frame.
bool TrainCheckpoint(const eth::LedgerSimulator& ledger,
                     std::string* checkpoint) {
  eth::DatasetConfig ds_config;
  ds_config.target = eth::AccountClass::kExchange;
  ds_config.max_positives = 16;
  ds_config.sampling = Sampling();
  ds_config.num_time_slices = kTimeSlices;
  auto ds = eth::BuildDataset(ledger, ds_config);
  if (!ds.ok()) return false;
  eth::SubgraphDataset dataset = std::move(ds).ValueOrDie();

  core::Dbg4EthConfig config;
  config.gsg.hidden_dim = 16;
  config.gsg.epochs = 3;
  config.ldg.hidden_dim = 16;
  config.ldg.num_time_slices = kTimeSlices;
  config.ldg.epochs = 2;
  core::Dbg4Eth model(config);
  Rng rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset.labels(), config.train_fraction, config.val_fraction, &rng);
  if (!model.Train(&dataset, split).ok()) return false;

  std::stringstream frame;
  if (!model.Save(&frame).ok()) return false;
  *checkpoint = frame.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;  // Ephemeral by default; read it off the banner.
  std::string ckpt_dir =
      (std::filesystem::temp_directory_path() / "dbg4eth_http_demo_ckpt")
          .string();
  bool retrain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--ckpt-dir=", 11) == 0) {
      ckpt_dir = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--retrain") == 0) {
      retrain = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--ckpt-dir=D] [--retrain]\n",
                   argv[0]);
      return 2;
    }
  }

  // The ledger is the serving-time context; it must match what the
  // checkpoint was trained against, so it is deterministic (fixed seed).
  eth::LedgerConfig ledger_config;
  ledger_config.num_normal = 800;
  ledger_config.duration_days = 120.0;
  ledger_config.seed = 21;
  eth::LedgerSimulator ledger(ledger_config);
  if (!ledger.Generate().ok()) return 1;

  // --- train-or-load: publish a checkpoint only when the store is empty.
  CheckpointStoreConfig store_config;
  store_config.directory = ckpt_dir;
  store_config.retain = 3;
  auto store = CheckpointStore::Open(store_config);
  if (!store.ok()) {
    std::fprintf(stderr, "checkpoint store: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  if (store.ValueOrDie()->LatestGeneration() == 0 || retrain) {
    std::printf("training exchange identifier (first run)...\n");
    std::fflush(stdout);
    std::string checkpoint;
    if (!TrainCheckpoint(ledger, &checkpoint)) return 1;
    auto saved = store.ValueOrDie()->Save([&](std::ostream* os) {
      os->write(checkpoint.data(),
                static_cast<std::streamsize>(checkpoint.size()));
      return os->good() ? Status::OK()
                        : Status::Internal("short checkpoint write");
    });
    if (!saved.ok()) return 1;
    std::printf("published %s\n", saved.ValueOrDie().c_str());
  } else {
    std::printf("serving existing checkpoint generation %llu from %s\n",
                static_cast<unsigned long long>(
                    store.ValueOrDie()->LatestGeneration()),
                ckpt_dir.c_str());
  }

  // --- service over the newest valid checkpoint ---
  auto payload = store.ValueOrDie()->LoadLatestValid();
  if (!payload.ok()) {
    std::fprintf(stderr, "load: %s\n", payload.status().ToString().c_str());
    return 1;
  }
  serve::InferenceServiceConfig serve_config;
  serve_config.num_workers = 4;
  serve_config.queue.max_batch = 8;
  serve_config.queue.max_wait_us = 1000;
  serve_config.cache.capacity = 1024;
  serve_config.sampling = Sampling();
  serve_config.num_time_slices = kTimeSlices;
  std::stringstream payload_stream(payload.ValueOrDie());
  auto created = serve::InferenceService::Create(serve_config,
                                                 &payload_stream, &ledger);
  if (!created.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  auto& service = *created.ValueOrDie();

  // --- hot-reload watcher on the same checkpoint directory ---
  serve::ModelRegistryConfig registry_config;
  registry_config.store = store_config;
  registry_config.poll_interval_us = 200'000;
  auto registry = serve::ModelRegistry::Create(registry_config,
                                               /*probe=*/nullptr);
  if (!registry.ok()) {
    std::fprintf(stderr, "registry: %s\n",
                 registry.status().ToString().c_str());
    return 1;
  }
  registry.ValueOrDie()->SetSwapCallback(
      [&service](std::shared_ptr<const core::Dbg4Eth> model,
                 uint64_t generation) {
        service.SwapModel(std::move(model), generation);
      });

  // --- HTTP front end ---
  net::HttpServerConfig http_config;
  http_config.port = port;
  // The demo is the place to watch requests flow: one structured line per
  // request, trace id included, correlatable with /debug/traces.
  http_config.access_log = true;
  net::HttpServer server(http_config);
  net::ScoringApp app(&service, &server);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("listening on http://%s (model generation %llu)\n",
              server.address().c_str(),
              static_cast<unsigned long long>(service.model_generation()));
  std::printf("try:  curl -s -X POST http://%s/v1/score -d "
              "'{\"address\": %d}'\n",
              server.address().c_str(),
              ledger.AccountsOfClass(eth::AccountClass::kExchange).front());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("draining...\n");
  std::fflush(stdout);
  registry.ValueOrDie()->StopWatcher();
  server.Shutdown();
  std::printf("shut down cleanly (%llu requests served)\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
