#ifndef DBG4ETH_SERVE_REQUEST_QUEUE_H_
#define DBG4ETH_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/types.h"

namespace dbg4eth {
namespace serve {

/// \brief Micro-batching parameters.
struct RequestQueueConfig {
  /// Dispatch as soon as this many requests have accumulated...
  int max_batch = 16;
  /// ...or once this long has passed since the batch started forming,
  /// whichever comes first.
  int64_t max_wait_us = 2000;
  /// Bound on queued (not yet popped) requests; Push blocks beyond it.
  size_t capacity = 4096;
};

/// \brief Bounded MPMC request queue with micro-batching on the pop side.
///
/// Producers `Push` single requests; the dispatcher `PopBatch`es up to
/// `max_batch` of them, waiting at most `max_wait_us` from the moment the
/// first request of the forming batch is visible — so a full batch
/// dispatches immediately and a lone request dispatches after the wait
/// bound, trading a little latency for amortized dispatch.
class RequestQueue {
 public:
  explicit RequestQueue(const RequestQueueConfig& config);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Enqueues one request, blocking while the queue is at capacity.
  /// Returns false (request not enqueued) once the queue is closed.
  bool Push(ScoreRequest request);

  /// Outcome of a non-blocking TryPush.
  enum class PushResult {
    kAccepted,  ///< Enqueued.
    kFull,      ///< Queue at capacity — admission control should shed.
    kClosed,    ///< Queue closed — service shutting down.
  };

  /// Non-blocking Push for admission control: never waits on capacity.
  /// On kFull / kClosed the request (and its promise) is destroyed.
  PushResult TryPush(ScoreRequest request);

  /// Blocks until a batch is ready (first-request age >= max_wait_us or
  /// max_batch requests available), fills `out` with 1..max_batch requests
  /// and returns true. Returns false only when the queue is closed and
  /// fully drained.
  bool PopBatch(std::vector<ScoreRequest>* out);

  /// Rejects further Pushes and wakes every waiter. Requests already
  /// queued remain poppable until drained.
  void Close();

  bool closed() const;
  size_t size() const;
  const RequestQueueConfig& config() const { return config_; }

 private:
  const RequestQueueConfig config_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ScoreRequest> queue_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_REQUEST_QUEUE_H_
