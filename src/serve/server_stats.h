#ifndef DBG4ETH_SERVE_SERVER_STATS_H_
#define DBG4ETH_SERVE_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dbg4eth {
namespace serve {

/// \brief Operational counters and latency distributions of the serving
/// layer. All mutators are thread-safe; Snapshot gives a consistent-enough
/// point-in-time view for reporting.
///
/// Latency distributions are obs::Histogram instances (the shared
/// exponential-bucket implementation — quantile logic lives in src/obs,
/// not here). Each ServerStats keeps its *own* histograms so per-service
/// snapshots stay isolated, and additionally mirrors every event into the
/// process-wide obs::MetricsRegistry (`serve_*` families), so exporters
/// see serving traffic aggregated across services without extra plumbing.
class ServerStats {
 public:
  struct LatencySummary {
    uint64_t count = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
  };

  struct Snapshot {
    /// Successfully resolved requests (cold, cache-hit, or stale-served).
    uint64_t requests = 0;
    uint64_t cache_hits = 0;
    /// Per-request failures other than deadline expiry and load shedding
    /// (unknown address, degenerate subgraph, cold path down past the
    /// retry budget, shutdown rejections).
    uint64_t errors = 0;
    /// Requests resolved kDeadlineExceeded without a forward pass.
    uint64_t deadline_exceeded = 0;
    /// Requests shed with kResourceExhausted at admission.
    uint64_t shed = 0;
    /// Cold-path retry attempts after transient failures.
    uint64_t retried = 0;
    /// Requests answered from a stale cache entry in degraded mode.
    uint64_t stale_served = 0;
    uint64_t batches = 0;
    double avg_batch_size = 0.0;
    double cache_hit_rate = 0.0;
    /// Worker threads actually running, after the service clamped the
    /// configured count to the hardware concurrency.
    int workers = 0;
    LatencySummary cold;   ///< Full path: materialize + forward pass.
    LatencySummary hit;    ///< Served from the result cache.
    LatencySummary stale;  ///< Degraded mode: stale entry at an old height.
  };

  /// `registry` receives the process-wide mirror instruments; null uses
  /// the global registry (tests may pass their own to observe mirrors in
  /// isolation).
  explicit ServerStats(obs::MetricsRegistry* registry = nullptr);

  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// Records one finished request: its end-to-end latency goes into the
  /// cold or cache-hit histogram. A non-empty `trace_id` attaches an
  /// exemplar to the mirror `serve_latency_us` bucket the latency landed
  /// in, linking the exposition back to the retained trace.
  void RecordRequest(double latency_us, bool cache_hit,
                     const std::string& trace_id = std::string());
  void RecordError();
  void RecordBatch(size_t batch_size);
  /// Records one request resolved kDeadlineExceeded (not an error).
  void RecordDeadlineExceeded();
  /// Records one request shed with kResourceExhausted (not an error).
  void RecordShed();
  /// Records one cold-path retry attempt.
  void RecordRetry();
  /// Records one request served stale in degraded mode (counts as a
  /// resolved request; its latency goes into the stale histogram).
  void RecordStaleServed(double latency_us,
                         const std::string& trace_id = std::string());
  /// Records the resolved worker-thread count (set once at service start).
  void SetWorkers(int workers);

  Snapshot TakeSnapshot() const;

  /// Multi-line human-readable rendering of a snapshot.
  static std::string Format(const Snapshot& snapshot);

  /// One-JSON-object rendering of a snapshot (the `/statusz` admin
  /// endpoint embeds it; see src/net/scoring_app.cc).
  static std::string ToJson(const Snapshot& snapshot);

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  std::atomic<int> workers_{0};
  obs::Histogram cold_latency_;
  obs::Histogram hit_latency_;
  obs::Histogram stale_latency_;

  // Process-wide mirrors (owned by the registry; pointers are stable).
  obs::Counter* mirror_requests_cold_;
  obs::Counter* mirror_requests_hit_;
  obs::Counter* mirror_requests_stale_;
  obs::Counter* mirror_errors_;
  obs::Counter* mirror_deadline_exceeded_;
  obs::Counter* mirror_shed_;
  obs::Counter* mirror_retries_;
  obs::Counter* mirror_batches_;
  obs::Histogram* mirror_latency_cold_;
  obs::Histogram* mirror_latency_hit_;
  obs::Histogram* mirror_latency_stale_;
  obs::Histogram* mirror_batch_size_;
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_SERVER_STATS_H_
