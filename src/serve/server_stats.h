#ifndef DBG4ETH_SERVE_SERVER_STATS_H_
#define DBG4ETH_SERVE_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dbg4eth {
namespace serve {

/// \brief Fixed-size uniform reservoir (Vitter's Algorithm R) of latency
/// samples. Thread-safe; Record is one short critical section.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 4096, uint64_t seed = 0x5eed);

  void Record(double latency_us);

  /// Number of Record calls (not the number retained).
  uint64_t count() const { return count_.load(); }

  /// q in [0, 1]; nearest-rank percentile over the retained sample.
  /// Returns 0 when nothing was recorded.
  double Percentile(double q) const;
  double MeanUs() const;
  double MaxUs() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  uint64_t rng_state_;
  double max_us_ = 0.0;
  double sum_us_ = 0.0;
  std::atomic<uint64_t> count_{0};
};

/// \brief Operational counters and latency distributions of the serving
/// layer. All mutators are thread-safe; Snapshot gives a consistent-enough
/// point-in-time view for reporting.
class ServerStats {
 public:
  struct LatencySummary {
    uint64_t count = 0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double mean_us = 0.0;
    double max_us = 0.0;
  };

  struct Snapshot {
    /// Successfully resolved requests (cold, cache-hit, or stale-served).
    uint64_t requests = 0;
    uint64_t cache_hits = 0;
    /// Per-request failures other than deadline expiry and load shedding
    /// (unknown address, degenerate subgraph, cold path down past the
    /// retry budget, shutdown rejections).
    uint64_t errors = 0;
    /// Requests resolved kDeadlineExceeded without a forward pass.
    uint64_t deadline_exceeded = 0;
    /// Requests shed with kResourceExhausted at admission.
    uint64_t shed = 0;
    /// Cold-path retry attempts after transient failures.
    uint64_t retried = 0;
    /// Requests answered from a stale cache entry in degraded mode.
    uint64_t stale_served = 0;
    uint64_t batches = 0;
    double avg_batch_size = 0.0;
    double cache_hit_rate = 0.0;
    LatencySummary cold;   ///< Full path: materialize + forward pass.
    LatencySummary hit;    ///< Served from the result cache.
    LatencySummary stale;  ///< Degraded mode: stale entry at an old height.
  };

  ServerStats();

  ServerStats(const ServerStats&) = delete;
  ServerStats& operator=(const ServerStats&) = delete;

  /// Records one finished request: its end-to-end latency goes into the
  /// cold or cache-hit reservoir.
  void RecordRequest(double latency_us, bool cache_hit);
  void RecordError();
  void RecordBatch(size_t batch_size);
  /// Records one request resolved kDeadlineExceeded (not an error).
  void RecordDeadlineExceeded();
  /// Records one request shed with kResourceExhausted (not an error).
  void RecordShed();
  /// Records one cold-path retry attempt.
  void RecordRetry();
  /// Records one request served stale in degraded mode (counts as a
  /// resolved request; its latency goes into the stale reservoir).
  void RecordStaleServed(double latency_us);

  Snapshot TakeSnapshot() const;

  /// Multi-line human-readable rendering of a snapshot.
  static std::string Format(const Snapshot& snapshot);

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> stale_served_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_requests_{0};
  LatencyReservoir cold_latency_;
  LatencyReservoir hit_latency_;
  LatencyReservoir stale_latency_;
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_SERVER_STATS_H_
