#include "serve/result_cache.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dbg4eth {
namespace serve {

namespace {

/// Process-wide result-cache mirrors, aggregated across every cache
/// instance (each cache keeps exact per-instance counters too).
obs::Counter* CacheCounter(const char* outcome) {
  return obs::MetricsRegistry::Global()->CounterAt(
      "serve_cache_events_total",
      "Result-cache lookups and evictions by outcome",
      {{"outcome", outcome}});
}

}  // namespace

ResultCache::ResultCache(const ResultCacheConfig& config) {
  DBG4ETH_CHECK_GE(config.capacity, 1u);
  const int num_shards = std::max(1, config.num_shards);
  capacity_ = config.capacity;
  shard_capacity_ =
      std::max<size_t>(1, (config.capacity + num_shards - 1) / num_shards);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

std::optional<double> ResultCache::Get(const Key& key) {
  Shard& shard = ShardFor(key);
  bool hit = false;
  double probability = 0.0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Move to the front (most recently used) and read the value while
      // still holding the lock; everything else happens outside it.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      probability = it->second->probability;
      hit = true;
    }
  }
  // Counter updates run unlocked: the mirror lookup's magic-static guard
  // and the atomic increments otherwise serialize concurrent lookups on
  // the shard mutex and show up as hit-path p99 outliers.
  static obs::Counter* hit_mirror = CacheCounter("hit");
  static obs::Counter* miss_mirror = CacheCounter("miss");
  if (hit) {
    hits_.fetch_add(1);
    hit_mirror->Inc();
    return probability;
  }
  misses_.fetch_add(1);
  miss_mirror->Inc();
  return std::nullopt;
}

void ResultCache::Put(const Key& key, double probability) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->probability = probability;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1);
    static obs::Counter* eviction_mirror = CacheCounter("eviction");
    eviction_mirror->Inc();
  }
  shard.lru.push_front(Entry{key, probability});
  shard.index.emplace(key, shard.lru.begin());
}

std::optional<ResultCache::StaleEntry> ResultCache::GetNewestBelow(
    eth::AccountId address, uint64_t height) {
  std::optional<StaleEntry> best;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& entry : shard->lru) {
      if (entry.key.address != address || entry.key.height >= height) {
        continue;
      }
      if (!best || entry.key.height > best->height) {
        best = StaleEntry{entry.key.height, entry.probability};
      }
    }
  }
  return best;
}

void ResultCache::InvalidateOlderThan(uint64_t height) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.height < height) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace serve
}  // namespace dbg4eth
