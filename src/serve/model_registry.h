#ifndef DBG4ETH_SERVE_MODEL_REGISTRY_H_
#define DBG4ETH_SERVE_MODEL_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/checkpoint_store.h"
#include "common/result.h"
#include "common/status.h"
#include "core/dbg4eth.h"

namespace dbg4eth {
namespace serve {

/// \brief Knobs of the serving-side model hot-reload watcher.
struct ModelRegistryConfig {
  /// On-disk checkpoint sequence to watch. Payloads are Dbg4Eth::Save
  /// frames committed through a CheckpointStore (the trainer publishes,
  /// the registry only reads).
  CheckpointStoreConfig store;
  /// Background watcher poll interval. The poll itself is one directory
  /// scan; loading and validating a candidate happens off the request
  /// path on the watcher thread.
  int64_t poll_interval_us = 20'000;
  /// Start the background watcher thread on Create. Tests that want
  /// deterministic reload timing leave this off and call Poll directly.
  bool start_watcher = true;
  /// Validation gate: largest |probe score difference| tolerated between
  /// the candidate and the currently served model over the probe set.
  /// Negative disables the drift check (non-finite scores still reject).
  double max_probe_drift = 0.25;
};

/// \brief Zero-downtime model hot-reload for the serving layer.
///
/// A background watcher polls the checkpoint directory; when a new
/// generation appears it is loaded, CRC-validated and gated off the
/// request path: the candidate scores a fixed probe set, and non-finite
/// probe scores or probe drift beyond `max_probe_drift` versus the live
/// model reject the reload (the live model keeps serving — rollback is
/// automatic because the swap simply never happens). An accepted
/// candidate is RCU-swapped in as a `shared_ptr<const Dbg4Eth>`: readers
/// take a snapshot per batch, so in-flight scores finish on the model
/// they started with and the old model is freed when its last batch
/// completes. A rejected or corrupt generation is remembered and not
/// re-tried until an even newer generation appears.
///
/// Metrics: `serve_model_reloads_total{outcome=ok|rejected|corrupt}` and
/// the `serve_model_generation` gauge.
///
/// Thread safety: all public methods are safe to call concurrently with
/// the watcher; `current()` is wait-free for readers up to one mutex-
/// guarded shared_ptr copy.
class ModelRegistry {
 public:
  /// Scores the registry's fixed probe set with `model`, returning one
  /// score per probe. The same function is applied to the candidate and
  /// (at swap time, cached) to the live model, so drift is comparable.
  /// Serving wires this to materialize-and-PredictProba over a fixed
  /// address set; tests may stub it.
  using ProbeFn =
      std::function<Result<std::vector<double>>(const core::Dbg4Eth&)>;

  /// Invoked after a successful swap with the new model and generation —
  /// outside the registry lock, on the thread that drove the reload. The
  /// serving layer uses it to re-point its model reference and drop its
  /// result cache (old-model scores are keyed only by address/height).
  using SwapCallback = std::function<void(
      std::shared_ptr<const core::Dbg4Eth>, uint64_t generation)>;

  /// Opens the store and attempts one initial load (an empty or fully
  /// corrupt directory is not an error — `current()` stays null and the
  /// watcher keeps looking). `probe` may be null to disable the gate.
  static Result<std::unique_ptr<ModelRegistry>> Create(
      const ModelRegistryConfig& config, ProbeFn probe);

  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The model currently serving (null when nothing was ever accepted).
  std::shared_ptr<const core::Dbg4Eth> current() const;

  /// Checkpoint generation of the current model (0 when none).
  uint64_t current_generation() const;

  /// Installs the post-swap hook; fires immediately when a model is
  /// already installed so late wiring cannot miss the initial load.
  void SetSwapCallback(SwapCallback callback);

  /// One reload check: scans the directory and, when a generation newer
  /// than both the current and the last rejected one exists, runs the
  /// load + validate + swap pipeline. Returns true when a swap happened.
  /// Called by the watcher; tests call it directly for determinism.
  Result<bool> Poll();

  /// Stops the background watcher (idempotent; also run by the dtor).
  void StopWatcher();

  const ModelRegistryConfig& config() const { return config_; }
  const CheckpointStore& store() const { return *store_; }

 private:
  ModelRegistry(const ModelRegistryConfig& config,
                std::unique_ptr<CheckpointStore> store, ProbeFn probe);

  /// Loads, gates and (on success) swaps in the newest valid generation.
  /// `latest_on_disk` is the newest directory sequence at poll time; it
  /// becomes the skip watermark on rejection.
  Result<bool> TryReload(uint64_t latest_on_disk);

  /// The validation gate: probe the candidate, reject non-finite scores
  /// and drift beyond the threshold. Returns the candidate's probe
  /// scores for caching on acceptance.
  Result<std::vector<double>> ValidateCandidate(const core::Dbg4Eth& candidate);

  void WatchLoop();

  ModelRegistryConfig config_;
  std::unique_ptr<CheckpointStore> store_;
  ProbeFn probe_;

  mutable std::mutex mu_;
  std::shared_ptr<const core::Dbg4Eth> current_;
  uint64_t current_generation_ = 0;
  /// Probe scores of the current model (drift baseline for candidates).
  std::vector<double> current_probe_scores_;
  /// Newest generation already evaluated and rejected (corrupt or gated
  /// out); re-attempted only when an even newer generation appears.
  uint64_t skip_generation_ = 0;
  SwapCallback swap_callback_;
  /// Serializes Poll callers so two concurrent polls cannot interleave
  /// their load/validate/swap pipelines.
  std::mutex poll_mu_;

  std::mutex watcher_mu_;
  std::condition_variable watcher_cv_;
  bool stop_ = false;
  std::thread watcher_;
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_MODEL_REGISTRY_H_
