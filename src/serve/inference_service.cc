#include "serve/inference_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/inference.h"

namespace dbg4eth {
namespace serve {

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// Time a request spends between ScoreAsync admission and a worker
/// picking it out of its batch (queueing + dispatch + pool hand-off).
obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global()->HistogramAt(
      "serve_queue_wait_us",
      "Admission-to-worker wait of batched requests, microseconds");
  return hist;
}

/// Requests still queued after the dispatcher popped the current batch.
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global()->GaugeAt(
      "serve_queue_depth", "Requests waiting in the admission queue");
  return gauge;
}

obs::Counter* FastpathBatchesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global()->CounterAt(
      "serve_fastpath_batches_total",
      "Cold-request groups scored through one packed block-diagonal "
      "forward");
  return counter;
}

obs::Histogram* FastpathBatchSizeHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global()->HistogramAt(
      "serve_fastpath_batch_size",
      "Distinct cold requests per packed forward");
  return hist;
}

obs::Histogram* FastpathForwardHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global()->HistogramAt(
      "serve_fastpath_forward_us",
      "Wall time of one packed block-diagonal forward, microseconds");
  return hist;
}

/// Activation-buffer bytes owned by the reporting worker's thread-local
/// inference arena (steady state: the high-water footprint of one batch).
obs::Gauge* FastpathArenaGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global()->GaugeAt(
      "serve_fastpath_arena_bytes",
      "Buffer bytes pooled in the worker's inference arena");
  return gauge;
}

/// Oversubscribing CPU-bound forward passes only adds context switching;
/// cap the worker count at the hardware concurrency (0 = use all of it).
int ClampWorkers(int requested) {
  const int hardware = ResolveNumThreads(0);
  if (requested <= 0) return hardware;
  return std::min(requested, hardware);
}

}  // namespace

Result<std::unique_ptr<InferenceService>> InferenceService::Create(
    const InferenceServiceConfig& config, std::istream* checkpoint,
    const eth::Ledger* ledger) {
  if (ledger == nullptr) {
    return Status::InvalidArgument("ledger must not be null");
  }
  DBG4ETH_ASSIGN_OR_RETURN(std::unique_ptr<core::Dbg4Eth> model,
                           core::Dbg4Eth::Load(checkpoint));
  return std::make_unique<InferenceService>(config, std::move(model), ledger);
}

InferenceService::InferenceService(const InferenceServiceConfig& config,
                                   std::unique_ptr<core::Dbg4Eth> model,
                                   const eth::Ledger* ledger)
    : config_(config),
      model_(std::move(model)),
      ledger_(ledger),
      cache_(config.cache),
      queue_(config.queue),
      workers_(ClampWorkers(config.num_workers)),
      pool_(workers_, config.pool_queue_capacity) {
  DBG4ETH_CHECK(model_ != nullptr);
  DBG4ETH_CHECK(ledger_ != nullptr);
  stats_.SetWorkers(workers_);
  ledger_height_.store(ledger_->transactions().size());
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

InferenceService::~InferenceService() { Shutdown(); }

InferenceService::ModelRef InferenceService::SnapshotModel() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return {model_, model_generation_.load()};
}

void InferenceService::SwapModel(std::shared_ptr<const core::Dbg4Eth> model,
                                 uint64_t generation) {
  DBG4ETH_CHECK(model != nullptr);
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_ = std::move(model);
    model_generation_.store(generation);
  }
  // Cached scores are keyed only by (address, height); every entry was
  // produced by the replaced model. Dropping them also empties the stale
  // corpus, so degraded-mode answers never cross a model boundary.
  cache_.Clear();
}

void InferenceService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (shutdown_.exchange(true)) return;
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.Shutdown();
}

void InferenceService::RefreshLedgerHeight() {
  const uint64_t height = ledger_->transactions().size();
  const uint64_t previous = ledger_height_.exchange(height);
  if (height > previous && !config_.serve_stale) {
    // Without degraded mode, superseded entries are dead weight — drop
    // them eagerly. With it, they are the stale corpus that keeps
    // answers flowing while the cold path is failing; LRU pressure
    // retires them naturally.
    cache_.InvalidateOlderThan(height);
  }
}

std::future<ScoreResult> InferenceService::ScoreAsync(
    eth::AccountId address) {
  return ScoreAsync(address, config_.default_deadline_us, std::string());
}

std::future<ScoreResult> InferenceService::ScoreAsync(eth::AccountId address,
                                                      int64_t deadline_us) {
  return ScoreAsync(address, deadline_us, std::string());
}

std::future<ScoreResult> InferenceService::ScoreAsync(eth::AccountId address,
                                                      int64_t deadline_us,
                                                      std::string trace_id) {
  if (shutdown_.load()) {
    // A shut-down service rejects uniformly — even addresses that would
    // hit the cache — so clients observe one consistent terminal state.
    ScoreResult result;
    result.address = address;
    result.ledger_height = ledger_height_.load();
    result.trace_id = std::move(trace_id);
    result.status = Status::FailedPrecondition("service is shut down");
    stats_.RecordError();
    auto promise = std::make_shared<std::promise<ScoreResult>>();
    std::future<ScoreResult> rejected = promise->get_future();
    promise->set_value(std::move(result));
    return rejected;
  }
  ScoreRequest request;
  request.address = address;
  request.ledger_height = ledger_height_.load();
  request.enqueue_time = std::chrono::steady_clock::now();
  if (deadline_us > 0) {
    request.deadline =
        request.enqueue_time + std::chrono::microseconds(deadline_us);
    request.has_deadline = true;
  }
  request.trace_id = std::move(trace_id);
  request.promise = std::make_shared<std::promise<ScoreResult>>();
  std::future<ScoreResult> future = request.promise->get_future();

  // Fast path: a cached score resolves without touching the queue, the
  // pool, the sampler, or the model.
  if (auto cached =
          cache_.Get({address, request.ledger_height})) {
    ScoreResult result;
    result.address = address;
    result.ledger_height = request.ledger_height;
    result.probability = *cached;
    result.cache_hit = true;
    result.model_generation = model_generation_.load();
    result.latency_us = ElapsedUs(request.enqueue_time);
    result.trace_id = request.trace_id;
    stats_.RecordRequest(result.latency_us, /*cache_hit=*/true,
                         request.trace_id);
    request.promise->set_value(std::move(result));
    return future;
  }

  if (config_.shed_when_saturated) {
    // Admission control: never block the producer. TryPush copies the
    // request, so on kFull the original is still resolvable here.
    switch (queue_.TryPush(request)) {
      case RequestQueue::PushResult::kAccepted:
        return future;
      case RequestQueue::PushResult::kClosed:
        ResolveError(request, Status::FailedPrecondition(
                                  "service is shut down"));
        return future;
      case RequestQueue::PushResult::kFull:
        // Overloaded: a stale answer beats an outright rejection when
        // degraded mode has one.
        if (TryServeStale(request)) return future;
        stats_.RecordShed();
        ScoreResult result;
        result.address = address;
        result.ledger_height = request.ledger_height;
        result.trace_id = request.trace_id;
        result.status = Status::ResourceExhausted(
            "request queue is saturated; load shed");
        result.latency_us = ElapsedUs(request.enqueue_time);
        request.promise->set_value(std::move(result));
        return future;
    }
  }

  if (!queue_.Push(std::move(request))) {
    // Rejected: the service is shutting down. The moved-in request (and
    // its promise) died inside Push, so resolve via a fresh promise.
    ScoreResult result;
    result.address = address;
    result.ledger_height = ledger_height_.load();
    result.status = Status::FailedPrecondition("service is shut down");
    stats_.RecordError();
    auto promise = std::make_shared<std::promise<ScoreResult>>();
    std::future<ScoreResult> rejected = promise->get_future();
    promise->set_value(std::move(result));
    return rejected;
  }
  return future;
}

ScoreResult InferenceService::Score(eth::AccountId address) {
  return ScoreAsync(address).get();
}

void InferenceService::DispatchLoop() {
  std::vector<ScoreRequest> batch;
  while (queue_.PopBatch(&batch)) {
    stats_.RecordBatch(batch.size());
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    auto shared =
        std::make_shared<std::vector<ScoreRequest>>(std::move(batch));
    // Submit blocks when all workers are busy and the pool queue is full —
    // that backpressure propagates to producers through the request queue.
    if (!pool_.Submit([this, shared] { ProcessBatch(shared.get()); })) {
      // Pool already shut down (service teardown); fail the batch.
      for (const ScoreRequest& request : *shared) {
        ResolveError(request,
                     Status::FailedPrecondition("service is shut down"));
      }
    }
    batch.clear();
  }
}

void InferenceService::ProcessBatch(std::vector<ScoreRequest>* batch) {
  // One model snapshot for the whole batch (RCU read side): a hot-swap
  // landing mid-batch does not mix models within the batch, and the
  // snapshot's shared_ptr keeps the old model alive until this batch is
  // done with it.
  const ModelRef ref = SnapshotModel();
  // Pass 1 — classify without materializing anything. Requests that can
  // resolve immediately (expired while queued, cache filled by a
  // concurrent batch) do so here; the rest are deduplicated into cold
  // groups keyed by (address, height), one forward pass per group no
  // matter how many requesters share it.
  std::unordered_map<uint64_t, double> scored;  // packed key -> probability
  std::vector<uint64_t> cold_order;
  std::unordered_map<uint64_t, std::vector<ScoreRequest*>> cold;
  for (ScoreRequest& request : *batch) {
    QueueWaitHistogram()->Record(ElapsedUs(request.enqueue_time));
    const ResultCache::Key key{request.address, request.ledger_height};
    const uint64_t packed =
        (static_cast<uint64_t>(static_cast<uint32_t>(request.address))
         << 32) ^
        (request.ledger_height & 0xffffffffULL);

    // Dispatch-time deadline check: a request that expired while queued
    // is resolved without paying for the forward pass.
    if (request.expired(std::chrono::steady_clock::now())) {
      ScoreResult result;
      result.address = request.address;
      result.ledger_height = request.ledger_height;
      result.trace_id = request.trace_id;
      result.status =
          Status::DeadlineExceeded("deadline expired while queued");
      result.latency_us = ElapsedUs(request.enqueue_time);
      stats_.RecordDeadlineExceeded();
      request.promise->set_value(std::move(result));
      continue;
    }

    if (auto group = cold.find(packed); group != cold.end()) {
      group->second.push_back(&request);
      continue;
    }

    ScoreResult result;
    result.address = request.address;
    result.ledger_height = request.ledger_height;
    if (auto it = scored.find(packed); it != scored.end()) {
      result.probability = it->second;
      result.cache_hit = true;  // Shared with an in-batch duplicate.
    } else if (auto cached = cache_.Get(key)) {
      // A concurrent batch may have filled the cache since ScoreAsync
      // missed; still counts as skipping the expensive path.
      result.probability = *cached;
      result.cache_hit = true;
      scored.emplace(packed, *cached);
    } else {
      cold_order.push_back(packed);
      cold.emplace(packed, std::vector<ScoreRequest*>{&request});
      continue;
    }
    result.model_generation = ref.generation;
    result.latency_us = ElapsedUs(request.enqueue_time);
    result.trace_id = request.trace_id;
    stats_.RecordRequest(result.latency_us, result.cache_hit,
                         request.trace_id);
    request.promise->set_value(std::move(result));
  }
  if (cold_order.empty()) return;

  // Pass 2 — score the cold groups. A single group (or a disabled fast
  // path) takes the sequential route: one score_cold span covering
  // prepare + forward, exactly as before batching. The representative's
  // trace context is active for the whole group score, so the span tree
  // lands in the tracer stamped with that request's trace id.
  if (cold_order.size() == 1 || !config_.batch_forward) {
    for (uint64_t packed : cold_order) {
      const std::vector<ScoreRequest*>& group = cold[packed];
      obs::ScopedTraceContext trace_ctx(group.front()->trace_id);
      int retries = 0;
      Result<double> proba =
          ScoreColdWithRetry(*ref.model, *group.front(), &retries);
      if (!proba.ok()) {
        ResolveColdFailure(group, proba.status());
        continue;
      }
      FinishColdGroup(group, proba.ValueOrDie(), retries, ref.generation);
    }
    return;
  }

  // Fast path: prepare each group's instance (same per-request score_cold
  // span, fail point, and retry budget as the sequential route), then
  // score every prepared instance in one fused block-diagonal forward per
  // branch. A group whose preparation fails drops out; the others still
  // share the packed pass.
  std::vector<uint64_t> ready;
  std::vector<eth::GraphInstance> instances;
  std::vector<int> retries;
  ready.reserve(cold_order.size());
  instances.reserve(cold_order.size());
  retries.reserve(cold_order.size());
  for (uint64_t packed : cold_order) {
    const std::vector<ScoreRequest*>& group = cold[packed];
    obs::ScopedTraceContext trace_ctx(group.front()->trace_id);
    obs::TraceSpan span("score_cold");
    int group_retries = 0;
    Result<eth::GraphInstance> instance =
        PrepareColdWithRetry(*ref.model, *group.front(), &group_retries);
    if (!instance.ok()) {
      span.SetError();
      span.End();
      ResolveColdFailure(group, instance.status());
      continue;
    }
    span.End();
    ready.push_back(packed);
    instances.push_back(std::move(instance).ValueOrDie());
    retries.push_back(group_retries);
  }
  if (ready.empty()) return;

  std::vector<const eth::GraphInstance*> instance_ptrs;
  instance_ptrs.reserve(instances.size());
  for (const eth::GraphInstance& instance : instances) {
    instance_ptrs.push_back(&instance);
  }
  std::vector<double> probs;
  {
    obs::TraceSpan packed_span("packed_forward");
    obs::ScopedTimer forward_timer(FastpathForwardHistogram());
    probs = ref.model->PredictProbaBatch(instance_ptrs);
  }
  FastpathBatchesCounter()->Inc();
  FastpathBatchSizeHistogram()->Record(static_cast<double>(ready.size()));
  FastpathArenaGauge()->Set(static_cast<double>(
      ag::InferenceArena::ThreadLocal()->owned_bytes()));
  for (size_t i = 0; i < ready.size(); ++i) {
    FinishColdGroup(cold[ready[i]], probs[i], retries[i], ref.generation);
  }
}

void InferenceService::FinishColdGroup(
    const std::vector<ScoreRequest*>& group, double probability, int retries,
    uint64_t model_generation) {
  const ScoreRequest* rep = group.front();
  cache_.Put({rep->address, rep->ledger_height}, probability);
  bool first = true;
  for (ScoreRequest* request : group) {
    // Duplicates may have expired while the group's representative was
    // being scored — same check the sequential loop applied when it
    // reached them.
    if (!first && request->expired(std::chrono::steady_clock::now())) {
      ScoreResult result;
      result.address = request->address;
      result.ledger_height = request->ledger_height;
      result.trace_id = request->trace_id;
      result.status =
          Status::DeadlineExceeded("deadline expired while queued");
      result.latency_us = ElapsedUs(request->enqueue_time);
      stats_.RecordDeadlineExceeded();
      request->promise->set_value(std::move(result));
      continue;
    }
    ScoreResult result;
    result.address = request->address;
    result.ledger_height = request->ledger_height;
    result.probability = probability;
    result.cache_hit = !first;  // Duplicates share the group's one pass.
    result.retries = first ? retries : 0;
    result.model_generation = model_generation;
    result.latency_us = ElapsedUs(request->enqueue_time);
    result.trace_id = request->trace_id;
    stats_.RecordRequest(result.latency_us, result.cache_hit,
                         request->trace_id);
    request->promise->set_value(std::move(result));
    first = false;
  }
}

void InferenceService::ResolveColdFailure(
    const std::vector<ScoreRequest*>& group, const Status& status) {
  for (ScoreRequest* request : group) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ScoreResult result;
      result.address = request->address;
      result.ledger_height = request->ledger_height;
      result.trace_id = request->trace_id;
      result.status = status;
      result.latency_us = ElapsedUs(request->enqueue_time);
      stats_.RecordDeadlineExceeded();
      request->promise->set_value(std::move(result));
      continue;
    }
    // Degraded mode: the cold path is down (transiently) and the retry
    // budget is spent — a stale score beats no score.
    if (status.IsTransient() && TryServeStale(*request)) continue;
    ResolveError(*request, status);
  }
}

Result<double> InferenceService::ScoreColdWithRetry(
    const core::Dbg4Eth& model, const ScoreRequest& request, int* retries) {
  *retries = 0;
  for (;;) {
    // Pre-score deadline check: each attempt (first or retry) is skipped
    // once the request has no time left.
    if (request.expired(std::chrono::steady_clock::now())) {
      return Status::DeadlineExceeded("deadline expired before scoring");
    }
    Result<double> proba = ScoreCold(model, request.address);
    if (proba.ok() || !proba.status().IsTransient() ||
        *retries >= config_.max_cold_retries) {
      return proba;
    }
    ++*retries;
    stats_.RecordRetry();
    // Linear backoff, truncated so a retry never sleeps past the
    // deadline it would then immediately fail.
    int64_t backoff_us = config_.retry_backoff_us * *retries;
    if (request.has_deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              request.deadline - std::chrono::steady_clock::now())
              .count();
      backoff_us = std::min(backoff_us, std::max<int64_t>(0, remaining));
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

bool InferenceService::TryServeStale(const ScoreRequest& request) {
  if (!config_.serve_stale) return false;
  const auto stale =
      cache_.GetNewestBelow(request.address, request.ledger_height);
  if (!stale) return false;
  ScoreResult result;
  result.address = request.address;
  result.ledger_height = stale->height;  // Height the score is valid at.
  result.probability = stale->probability;
  result.stale = true;
  // SwapModel clears the cache, so the stale corpus never outlives the
  // model that produced it — the current generation is the right label.
  result.model_generation = model_generation_.load();
  result.latency_us = ElapsedUs(request.enqueue_time);
  result.trace_id = request.trace_id;
  stats_.RecordStaleServed(result.latency_us, request.trace_id);
  request.promise->set_value(std::move(result));
  return true;
}

void InferenceService::ResolveError(const ScoreRequest& request,
                                    Status status) {
  ScoreResult result;
  result.address = request.address;
  result.ledger_height = request.ledger_height;
  result.trace_id = request.trace_id;
  result.status = std::move(status);
  result.latency_us = ElapsedUs(request.enqueue_time);
  stats_.RecordError();
  request.promise->set_value(std::move(result));
}

Result<double> InferenceService::ScoreCold(const core::Dbg4Eth& model,
                                           eth::AccountId address) const {
  // Root of the cold-request timing tree: materialize (sample_subgraph,
  // build_graphs, node_features), normalize, then the forward stages
  // emitted inside PredictProba (gsg_forward, calibrate, ldg_forward,
  // gbdt). See DESIGN.md "Observability".
  obs::TraceSpan span("score_cold");
  Result<eth::GraphInstance> instance = PrepareCold(model, address);
  if (!instance.ok()) {
    // Failed roots are tail-retained by the tracer regardless of sampling,
    // so the trace explaining an error response is always findable.
    span.SetError();
    return instance.status();
  }
  return model.PredictProba(instance.ValueOrDie());
}

Result<eth::GraphInstance> InferenceService::PrepareCold(
    const core::Dbg4Eth& model, eth::AccountId address) const {
  DBG4ETH_FAIL_POINT("serve.score_cold");
  DBG4ETH_ASSIGN_OR_RETURN(
      eth::GraphInstance instance,
      eth::MaterializeInstance(*ledger_, address, config_.sampling,
                               config_.num_time_slices));
  {
    obs::TraceSpan normalize_span("normalize");
    model.Normalize(&instance);
  }
  return instance;
}

Result<eth::GraphInstance> InferenceService::PrepareColdWithRetry(
    const core::Dbg4Eth& model, const ScoreRequest& request, int* retries) {
  // Same loop as ScoreColdWithRetry, retrying preparation (the fail point
  // and materialization live there) instead of the full score.
  *retries = 0;
  for (;;) {
    if (request.expired(std::chrono::steady_clock::now())) {
      return Status::DeadlineExceeded("deadline expired before scoring");
    }
    Result<eth::GraphInstance> instance = PrepareCold(model, request.address);
    if (instance.ok() || !instance.status().IsTransient() ||
        *retries >= config_.max_cold_retries) {
      return instance;
    }
    ++*retries;
    stats_.RecordRetry();
    int64_t backoff_us = config_.retry_backoff_us * *retries;
    if (request.has_deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(
              request.deadline - std::chrono::steady_clock::now())
              .count();
      backoff_us = std::min(backoff_us, std::max<int64_t>(0, remaining));
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

}  // namespace serve
}  // namespace dbg4eth
