#ifndef DBG4ETH_SERVE_INFERENCE_SERVICE_H_
#define DBG4ETH_SERVE_INFERENCE_SERVICE_H_

#include <atomic>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger_base.h"
#include "graph/sampling.h"
#include "serve/request_queue.h"
#include "serve/result_cache.h"
#include "serve/server_stats.h"
#include "serve/thread_pool.h"
#include "serve/types.h"

namespace dbg4eth {
namespace serve {

/// \brief Knobs of the serving layer.
struct InferenceServiceConfig {
  /// Worker threads; clamped at construction to the hardware concurrency
  /// (oversubscribed CPU-bound forwards only add context-switch overhead —
  /// see DESIGN.md "Inference fast path"). 0 = one per hardware thread.
  /// The resolved count is reported in ServerStats::Snapshot::workers.
  int num_workers = 4;
  /// When a dispatched batch holds two or more distinct cold requests,
  /// score them through one fused block-diagonal forward per branch
  /// (bit-identical to scoring them one by one) instead of sequential
  /// per-request passes. Disable to force the sequential cold path.
  bool batch_forward = true;
  /// Pending-batch bound of the worker pool (backpressure toward the
  /// dispatcher, which in turn backpressures producers via the queue).
  size_t pool_queue_capacity = 256;
  RequestQueueConfig queue;
  ResultCacheConfig cache;
  /// Subgraph materialization parameters; must match how the model's
  /// training data was sampled for the scores to be meaningful.
  graph::SamplingConfig sampling;
  int num_time_slices = 10;

  // --- resilience knobs (see DESIGN.md "Failure model") ---

  /// Default per-request deadline; 0 = no deadline. An expired request
  /// resolves kDeadlineExceeded without a forward pass. Per-request
  /// override: ScoreAsync(address, deadline_us).
  int64_t default_deadline_us = 0;
  /// Admission control: when true, a full request queue sheds new
  /// requests with kResourceExhausted instead of blocking the producer.
  bool shed_when_saturated = true;
  /// Cold-path attempts beyond the first for transient failures
  /// (kUnavailable / kResourceExhausted); 0 disables retry.
  int max_cold_retries = 2;
  /// Backoff before retry attempt r: retry_backoff_us * r (linear),
  /// truncated by the request deadline.
  int64_t retry_backoff_us = 500;
  /// Degraded mode: when the cold path fails transiently past the retry
  /// budget (or a request is about to be shed) answer from the newest
  /// cache entry at an older ledger height, flagged `stale = true`. When
  /// enabled, RefreshLedgerHeight keeps superseded entries around as the
  /// stale corpus instead of dropping them eagerly.
  bool serve_stale = true;
};

/// \brief Concurrent account-scoring service over a trained Dbg4Eth model.
///
/// Request path: `ScoreAsync(address)` first consults the sharded result
/// cache keyed by (address, ledger height) — a hit resolves immediately,
/// skipping both subgraph materialization and the forward pass. Misses are
/// enqueued into the micro-batching RequestQueue; a dispatcher thread pops
/// batches (full batch or max_wait_us, whichever first) and hands each
/// batch to the worker pool. Workers dedupe identical addresses inside the
/// batch, re-check the cache, materialize the account-centred subgraph
/// (eth::MaterializeInstance), normalize it with the model's train-split
/// statistics, run the double-graph forward pass, fill the cache and
/// resolve the promises. Every outcome is recorded in ServerStats.
///
/// Thread safety: the service holds the model as a
/// `shared_ptr<const Dbg4Eth>` behind a mutex; each worker batch takes one
/// snapshot of that pointer and scores through it — Dbg4Eth::PredictProba /
/// Normalize are const and race-free, so any number of workers score
/// concurrently. `SwapModel` (wired to ModelRegistry's swap callback)
/// RCU-swaps the pointer: batches already dispatched finish on the model
/// they snapshotted, new batches see the new model, and the old model is
/// freed when its last in-flight batch drops its reference. The ledger
/// must outlive the service and be immutable while it runs (bump via
/// RefreshLedgerHeight after appending transactions).
class InferenceService {
 public:
  /// Restores the model from a checkpoint stream (Dbg4Eth::Save format)
  /// and starts the dispatcher and worker threads.
  static Result<std::unique_ptr<InferenceService>> Create(
      const InferenceServiceConfig& config, std::istream* checkpoint,
      const eth::Ledger* ledger);

  /// Takes ownership of an already-loaded model (tests, in-process use).
  InferenceService(const InferenceServiceConfig& config,
                   std::unique_ptr<core::Dbg4Eth> model,
                   const eth::Ledger* ledger);

  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Submits one address for scoring with the config's default deadline.
  /// The future resolves with a ScoreResult whose status reflects
  /// per-request failures (unknown address, degenerate subgraph, deadline
  /// expiry, shed load) — the future itself never throws, and every
  /// accepted request resolves even when Shutdown races submission.
  std::future<ScoreResult> ScoreAsync(eth::AccountId address);

  /// Same, with an explicit deadline (microseconds from now; 0 = none)
  /// overriding `config.default_deadline_us`.
  std::future<ScoreResult> ScoreAsync(eth::AccountId address,
                                      int64_t deadline_us);

  /// Same, carrying a request trace id (W3C trace-context format) through
  /// the queue into the worker's trace context: the cold path's span tree
  /// is stamped with it, latency exemplars reference it, and it comes
  /// back on `ScoreResult::trace_id` for every outcome. An empty id means
  /// "untraced" (no context, no exemplars).
  std::future<ScoreResult> ScoreAsync(eth::AccountId address,
                                      int64_t deadline_us,
                                      std::string trace_id);

  /// Blocking convenience wrapper around ScoreAsync.
  ScoreResult Score(eth::AccountId address);

  /// \brief Zero-downtime model hot-swap (RCU style).
  ///
  /// Installs `model` as the serving model for every batch dispatched
  /// after the swap; batches already in flight keep the snapshot they
  /// took and finish on the old model, which is freed when the last such
  /// batch completes. The result cache is cleared — its entries are keyed
  /// only by (address, height) and belong to the replaced model. Safe to
  /// call concurrently with scoring; typically wired to
  /// ModelRegistry::SetSwapCallback.
  void SwapModel(std::shared_ptr<const core::Dbg4Eth> model,
                 uint64_t generation);

  /// Checkpoint generation currently serving (0 until the first swap).
  uint64_t model_generation() const { return model_generation_.load(); }

  /// Re-reads the ledger's transaction count. When it grew, subsequent
  /// requests key the cache at the new height (old entries can no longer
  /// be returned) and superseded entries are dropped eagerly.
  void RefreshLedgerHeight();

  uint64_t ledger_height() const { return ledger_height_.load(); }

  /// Stops accepting requests, drains in-flight work, joins all threads.
  /// Pending requests still resolve (scored or error). Idempotent.
  void Shutdown();

  ServerStats::Snapshot StatsSnapshot() const {
    return stats_.TakeSnapshot();
  }
  const ResultCache& cache() const { return cache_; }
  const InferenceServiceConfig& config() const { return config_; }
  /// Worker threads actually running (config.num_workers clamped to the
  /// hardware concurrency).
  int num_workers() const { return workers_; }

 private:
  /// One batch's immutable view of the serving model: the pointer pins
  /// the model alive for the batch's whole lifetime (RCU read side).
  struct ModelRef {
    std::shared_ptr<const core::Dbg4Eth> model;
    uint64_t generation = 0;
  };
  ModelRef SnapshotModel() const;

  void DispatchLoop();
  void ProcessBatch(std::vector<ScoreRequest>* batch);
  /// Cold path: materialize + normalize + forward pass through `model`.
  Result<double> ScoreCold(const core::Dbg4Eth& model,
                           eth::AccountId address) const;
  /// Cold path with the transient-failure retry loop around it; fills
  /// `retries` with the attempts beyond the first.
  Result<double> ScoreColdWithRetry(const core::Dbg4Eth& model,
                                    const ScoreRequest& request,
                                    int* retries);
  /// Cold-path preparation only (fail point, materialize, normalize) —
  /// the forward pass is deferred so several prepared instances can share
  /// one packed forward.
  Result<eth::GraphInstance> PrepareCold(const core::Dbg4Eth& model,
                                         eth::AccountId address) const;
  /// PrepareCold with the same transient-failure retry loop as
  /// ScoreColdWithRetry.
  Result<eth::GraphInstance> PrepareColdWithRetry(const core::Dbg4Eth& model,
                                                  const ScoreRequest& request,
                                                  int* retries);
  /// Resolves every request of one deduplicated cold group with the
  /// group's probability; `retries` belongs to the representative (first)
  /// request, duplicates count as in-batch cache hits.
  void FinishColdGroup(const std::vector<ScoreRequest*>& group,
                       double probability, int retries,
                       uint64_t model_generation);
  /// Resolves every request of a cold group whose scoring failed, with
  /// the per-status handling of the sequential path (deadline / stale
  /// fallback / error).
  void ResolveColdFailure(const std::vector<ScoreRequest*>& group,
                          const Status& status);
  /// Resolves `request` from the newest stale cache entry below its
  /// height, if degraded mode allows; true when it was resolved.
  bool TryServeStale(const ScoreRequest& request);
  /// Resolves `request` with an error status and records it.
  void ResolveError(const ScoreRequest& request, Status status);

  InferenceServiceConfig config_;
  /// Serving model (RCU write side): guarded by model_mu_; readers take a
  /// shared_ptr copy per batch via SnapshotModel, writers re-point it in
  /// SwapModel. Never null after construction.
  mutable std::mutex model_mu_;
  std::shared_ptr<const core::Dbg4Eth> model_;
  std::atomic<uint64_t> model_generation_{0};
  const eth::Ledger* ledger_;
  std::atomic<uint64_t> ledger_height_{0};
  ResultCache cache_;
  ServerStats stats_;
  RequestQueue queue_;
  /// Resolved worker count; declared before pool_ so the clamp happens
  /// before the pool spawns its threads.
  int workers_;
  ThreadPool pool_;
  std::thread dispatcher_;
  std::mutex shutdown_mu_;  ///< Serializes Shutdown callers.
  std::atomic<bool> shutdown_{false};
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_INFERENCE_SERVICE_H_
