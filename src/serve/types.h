#ifndef DBG4ETH_SERVE_TYPES_H_
#define DBG4ETH_SERVE_TYPES_H_

#include <chrono>
#include <future>
#include <memory>

#include "common/status.h"
#include "eth/types.h"

namespace dbg4eth {
namespace serve {

/// \brief Outcome of one account-scoring request.
struct ScoreResult {
  eth::AccountId address = -1;
  /// Ledger height (transaction count) the score was computed at.
  uint64_t ledger_height = 0;
  /// P(target class) from the loaded Dbg4Eth model.
  double probability = 0.0;
  /// True when the score was served from the result cache without
  /// materializing the subgraph or running the forward pass.
  bool cache_hit = false;
  /// End-to-end latency (submit -> resolved), microseconds.
  double latency_us = 0.0;
  /// Non-OK when the address cannot be scored (unknown account, degenerate
  /// subgraph, service shut down).
  Status status = Status::OK();

  bool ok() const { return status.ok(); }
};

/// \brief One in-flight scoring request as it moves through the
/// RequestQueue into a worker batch.
struct ScoreRequest {
  eth::AccountId address = -1;
  uint64_t ledger_height = 0;
  std::chrono::steady_clock::time_point enqueue_time;
  std::shared_ptr<std::promise<ScoreResult>> promise;
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_TYPES_H_
