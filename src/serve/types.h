#ifndef DBG4ETH_SERVE_TYPES_H_
#define DBG4ETH_SERVE_TYPES_H_

#include <chrono>
#include <future>
#include <memory>
#include <string>

#include "common/status.h"
#include "eth/types.h"

namespace dbg4eth {
namespace serve {

/// \brief Outcome of one account-scoring request.
struct ScoreResult {
  eth::AccountId address = -1;
  /// Ledger height (transaction count) the score was computed at.
  uint64_t ledger_height = 0;
  /// P(target class) from the loaded Dbg4Eth model.
  double probability = 0.0;
  /// True when the score was served from the result cache without
  /// materializing the subgraph or running the forward pass.
  bool cache_hit = false;
  /// True when the score was served in degraded mode from a cache entry
  /// computed at an older ledger height (reported in `ledger_height`)
  /// because the cold path was failing or overloaded.
  bool stale = false;
  /// Cold-path attempts beyond the first (transient failures retried).
  int retries = 0;
  /// Checkpoint generation of the model that produced the score (0 until
  /// the first hot-swap installs a generation — the construction-time
  /// model has no checkpoint lineage). In-flight batches finish on the
  /// model they started with, so after a swap a short tail of results may
  /// still carry the previous generation.
  uint64_t model_generation = 0;
  /// End-to-end latency (submit -> resolved), microseconds.
  double latency_us = 0.0;
  /// Correlation id of the request that produced this result (W3C trace
  /// id: 32 lowercase hex chars). Empty only when the caller used the
  /// trace-less ScoreAsync overload. Stamped on retained span trees and
  /// histogram exemplars, and echoed as `x-trace-id` on the wire.
  std::string trace_id;
  /// Non-OK when the address cannot be scored: unknown account or
  /// degenerate subgraph (kNotFound / kFailedPrecondition), deadline
  /// expiry (kDeadlineExceeded), load shed at admission
  /// (kResourceExhausted), cold path down past the retry budget
  /// (kUnavailable), or service shut down (kFailedPrecondition).
  Status status = Status::OK();

  bool ok() const { return status.ok(); }
};

/// \brief The serving layer's canonical Status -> HTTP status mapping,
/// used by the HTTP front end (src/net) so wire semantics stay defined
/// next to the Status semantics they mirror:
///   kDeadlineExceeded  -> 504 (the request's deadline passed)
///   kResourceExhausted -> 429 (shed at admission; retry with backoff)
///   kUnavailable       -> 503 (cold path down past the retry budget)
///   kNotFound          -> 404 (unknown address)
///   kInvalidArgument   -> 400
///   kFailedPrecondition-> 422 (degenerate subgraph / not servable)
/// Everything else is an internal failure (500).
inline int SuggestedHttpStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kFailedPrecondition:
      return 422;
    default:
      return 500;
  }
}

/// \brief One in-flight scoring request as it moves through the
/// RequestQueue into a worker batch.
struct ScoreRequest {
  eth::AccountId address = -1;
  uint64_t ledger_height = 0;
  std::chrono::steady_clock::time_point enqueue_time;
  /// Absolute deadline; only meaningful when `has_deadline` is set. An
  /// expired request resolves kDeadlineExceeded without a forward pass
  /// (checked at dispatch and again before each scoring attempt).
  std::chrono::steady_clock::time_point deadline;
  bool has_deadline = false;
  /// Correlation id carried from admission through batching into the
  /// worker's trace context (see obs::ScopedTraceContext).
  std::string trace_id;
  std::shared_ptr<std::promise<ScoreResult>> promise;

  bool expired(std::chrono::steady_clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_TYPES_H_
