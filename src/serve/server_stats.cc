#include "serve/server_stats.h"

#include <algorithm>
#include <cstdio>

namespace dbg4eth {
namespace serve {

namespace {

/// xorshift64*: tiny deterministic generator for reservoir replacement
/// slots; quality needs are minimal and it keeps the critical section
/// short.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

}  // namespace

LatencyReservoir::LatencyReservoir(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(1, capacity)),
      rng_state_(seed ? seed : 1) {
  samples_.reserve(capacity_);
}

void LatencyReservoir::Record(double latency_us) {
  const uint64_t n = count_.fetch_add(1);  // Index of this observation.
  std::lock_guard<std::mutex> lock(mu_);
  sum_us_ += latency_us;
  max_us_ = std::max(max_us_, latency_us);
  if (samples_.size() < capacity_) {
    samples_.push_back(latency_us);
    return;
  }
  // Algorithm R: keep observation n with probability capacity/(n+1).
  const uint64_t slot = NextRandom(&rng_state_) % (n + 1);
  if (slot < capacity_) samples_[slot] = latency_us;
}

double LatencyReservoir::Percentile(double q) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const size_t rank = std::min(
      sorted.size() - 1,
      static_cast<size_t>(clamped * static_cast<double>(sorted.size())));
  return sorted[rank];
}

double LatencyReservoir::MeanUs() const {
  const uint64_t n = count_.load();
  if (n == 0) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  return sum_us_ / static_cast<double>(n);
}

double LatencyReservoir::MaxUs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_us_;
}

ServerStats::ServerStats()
    : cold_latency_(4096, 0xc01d),
      hit_latency_(4096, 0xcac4e),
      stale_latency_(4096, 0x57a1e) {}

void ServerStats::RecordRequest(double latency_us, bool cache_hit) {
  requests_.fetch_add(1);
  if (cache_hit) {
    cache_hits_.fetch_add(1);
    hit_latency_.Record(latency_us);
  } else {
    cold_latency_.Record(latency_us);
  }
}

void ServerStats::RecordError() { errors_.fetch_add(1); }

void ServerStats::RecordDeadlineExceeded() { deadline_exceeded_.fetch_add(1); }

void ServerStats::RecordShed() { shed_.fetch_add(1); }

void ServerStats::RecordRetry() { retried_.fetch_add(1); }

void ServerStats::RecordStaleServed(double latency_us) {
  requests_.fetch_add(1);
  stale_served_.fetch_add(1);
  stale_latency_.Record(latency_us);
}

void ServerStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1);
  batched_requests_.fetch_add(batch_size);
}

namespace {

ServerStats::LatencySummary Summarize(const LatencyReservoir& reservoir) {
  ServerStats::LatencySummary summary;
  summary.count = reservoir.count();
  summary.p50_us = reservoir.Percentile(0.50);
  summary.p95_us = reservoir.Percentile(0.95);
  summary.p99_us = reservoir.Percentile(0.99);
  summary.mean_us = reservoir.MeanUs();
  summary.max_us = reservoir.MaxUs();
  return summary;
}

}  // namespace

ServerStats::Snapshot ServerStats::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.requests = requests_.load();
  snapshot.cache_hits = cache_hits_.load();
  snapshot.errors = errors_.load();
  snapshot.deadline_exceeded = deadline_exceeded_.load();
  snapshot.shed = shed_.load();
  snapshot.retried = retried_.load();
  snapshot.stale_served = stale_served_.load();
  snapshot.batches = batches_.load();
  const uint64_t batched = batched_requests_.load();
  snapshot.avg_batch_size =
      snapshot.batches == 0
          ? 0.0
          : static_cast<double>(batched) / static_cast<double>(snapshot.batches);
  snapshot.cache_hit_rate =
      snapshot.requests == 0
          ? 0.0
          : static_cast<double>(snapshot.cache_hits) /
                static_cast<double>(snapshot.requests);
  snapshot.cold = Summarize(cold_latency_);
  snapshot.hit = Summarize(hit_latency_);
  snapshot.stale = Summarize(stale_latency_);
  return snapshot;
}

std::string ServerStats::Format(const Snapshot& s) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "requests=%llu hits=%llu (%.1f%%) errors=%llu "
                "batches=%llu avg_batch=%.2f\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.cache_hits),
                100.0 * s.cache_hit_rate,
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.batches), s.avg_batch_size);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "cold latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f\n",
                static_cast<unsigned long long>(s.cold.count), s.cold.p50_us,
                s.cold.p95_us, s.cold.p99_us, s.cold.mean_us, s.cold.max_us);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "deadline_exceeded=%llu shed=%llu retried=%llu "
                "stale_served=%llu\n",
                static_cast<unsigned long long>(s.deadline_exceeded),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.retried),
                static_cast<unsigned long long>(s.stale_served));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "hit  latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f\n",
                static_cast<unsigned long long>(s.hit.count), s.hit.p50_us,
                s.hit.p95_us, s.hit.p99_us, s.hit.mean_us, s.hit.max_us);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "stale latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f",
                static_cast<unsigned long long>(s.stale.count), s.stale.p50_us,
                s.stale.p95_us, s.stale.p99_us, s.stale.mean_us,
                s.stale.max_us);
  out += buf;
  return out;
}

}  // namespace serve
}  // namespace dbg4eth
