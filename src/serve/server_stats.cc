#include "serve/server_stats.h"

#include <cstdio>

#include "common/json_util.h"

namespace dbg4eth {
namespace serve {

namespace {

/// Batch-size buckets: exact up to ~max_batch scales (growth 2, min 1).
obs::HistogramConfig BatchSizeBuckets() {
  obs::HistogramConfig config;
  config.min_value = 1.0;
  config.growth = 2.0;
  config.num_buckets = 16;
  return config;
}

ServerStats::LatencySummary Summarize(const obs::Histogram& histogram) {
  const obs::Histogram::Snapshot snap = histogram.TakeSnapshot();
  ServerStats::LatencySummary summary;
  summary.count = snap.count;
  summary.p50_us = snap.Percentile(0.50);
  summary.p95_us = snap.Percentile(0.95);
  summary.p99_us = snap.Percentile(0.99);
  summary.mean_us = snap.Mean();
  summary.max_us = snap.max;
  return summary;
}

}  // namespace

ServerStats::ServerStats(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry* reg =
      registry != nullptr ? registry : obs::MetricsRegistry::Global();
  const char* kRequestsHelp =
      "Resolved scoring requests by path (cold forward pass, cache hit, "
      "degraded stale serve)";
  mirror_requests_cold_ =
      reg->CounterAt("serve_requests_total", kRequestsHelp,
                     {{"path", "cold"}});
  mirror_requests_hit_ = reg->CounterAt("serve_requests_total", kRequestsHelp,
                                        {{"path", "hit"}});
  mirror_requests_stale_ = reg->CounterAt("serve_requests_total",
                                          kRequestsHelp, {{"path", "stale"}});
  mirror_errors_ = reg->CounterAt(
      "serve_errors_total", "Requests resolved with a non-retryable error");
  mirror_deadline_exceeded_ = reg->CounterAt(
      "serve_deadline_exceeded_total",
      "Requests resolved kDeadlineExceeded without a forward pass");
  mirror_shed_ = reg->CounterAt(
      "serve_shed_total",
      "Requests shed with kResourceExhausted at admission control");
  mirror_retries_ = reg->CounterAt(
      "serve_retries_total", "Cold-path retry attempts beyond the first");
  mirror_batches_ = reg->CounterAt("serve_batches_total",
                                   "Micro-batches dispatched to the pool");
  const char* kLatencyHelp =
      "End-to-end request latency in microseconds by path";
  mirror_latency_cold_ = reg->HistogramAt("serve_latency_us", kLatencyHelp,
                                          {{"path", "cold"}});
  mirror_latency_hit_ = reg->HistogramAt("serve_latency_us", kLatencyHelp,
                                         {{"path", "hit"}});
  mirror_latency_stale_ = reg->HistogramAt("serve_latency_us", kLatencyHelp,
                                           {{"path", "stale"}});
  mirror_batch_size_ =
      reg->HistogramAt("serve_batch_size", "Requests per dispatched batch",
                       {}, BatchSizeBuckets());
}

void ServerStats::RecordRequest(double latency_us, bool cache_hit,
                                const std::string& trace_id) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    hit_latency_.Record(latency_us);
    mirror_requests_hit_->Inc();
    mirror_latency_hit_->Record(latency_us, trace_id);
  } else {
    cold_latency_.Record(latency_us);
    mirror_requests_cold_->Inc();
    mirror_latency_cold_->Record(latency_us, trace_id);
  }
}

void ServerStats::RecordError() {
  errors_.fetch_add(1, std::memory_order_relaxed);
  mirror_errors_->Inc();
}

void ServerStats::RecordDeadlineExceeded() {
  deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  mirror_deadline_exceeded_->Inc();
}

void ServerStats::RecordShed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  mirror_shed_->Inc();
}

void ServerStats::RecordRetry() {
  retried_.fetch_add(1, std::memory_order_relaxed);
  mirror_retries_->Inc();
}

void ServerStats::RecordStaleServed(double latency_us,
                                    const std::string& trace_id) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  stale_served_.fetch_add(1, std::memory_order_relaxed);
  stale_latency_.Record(latency_us);
  mirror_requests_stale_->Inc();
  mirror_latency_stale_->Record(latency_us, trace_id);
}

void ServerStats::SetWorkers(int workers) {
  workers_.store(workers, std::memory_order_relaxed);
}

void ServerStats::RecordBatch(size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(batch_size, std::memory_order_relaxed);
  mirror_batches_->Inc();
  mirror_batch_size_->Record(static_cast<double>(batch_size));
}

ServerStats::Snapshot ServerStats::TakeSnapshot() const {
  // All counters are independent relaxed atomics: one explicit-ordering
  // pass up front reads them as close together in time as possible, and
  // the derived ratios below are computed from these loads only (never
  // from a second, later read that could disagree).
  const uint64_t requests = requests_.load(std::memory_order_relaxed);
  const uint64_t cache_hits = cache_hits_.load(std::memory_order_relaxed);
  const uint64_t errors = errors_.load(std::memory_order_relaxed);
  const uint64_t deadline =
      deadline_exceeded_.load(std::memory_order_relaxed);
  const uint64_t shed = shed_.load(std::memory_order_relaxed);
  const uint64_t retried = retried_.load(std::memory_order_relaxed);
  const uint64_t stale_served = stale_served_.load(std::memory_order_relaxed);
  const uint64_t batches = batches_.load(std::memory_order_relaxed);
  const uint64_t batched = batched_requests_.load(std::memory_order_relaxed);

  Snapshot snapshot;
  snapshot.requests = requests;
  snapshot.cache_hits = cache_hits;
  snapshot.errors = errors;
  snapshot.deadline_exceeded = deadline;
  snapshot.shed = shed;
  snapshot.retried = retried;
  snapshot.stale_served = stale_served;
  snapshot.batches = batches;
  snapshot.avg_batch_size =
      batches == 0 ? 0.0
                   : static_cast<double>(batched) / static_cast<double>(batches);
  snapshot.cache_hit_rate =
      requests == 0
          ? 0.0
          : static_cast<double>(cache_hits) / static_cast<double>(requests);
  snapshot.workers = workers_.load(std::memory_order_relaxed);
  snapshot.cold = Summarize(cold_latency_);
  snapshot.hit = Summarize(hit_latency_);
  snapshot.stale = Summarize(stale_latency_);
  return snapshot;
}

std::string ServerStats::Format(const Snapshot& s) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "requests=%llu hits=%llu (%.1f%%) errors=%llu "
                "batches=%llu avg_batch=%.2f workers=%d\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.cache_hits),
                100.0 * s.cache_hit_rate,
                static_cast<unsigned long long>(s.errors),
                static_cast<unsigned long long>(s.batches), s.avg_batch_size,
                s.workers);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "cold latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f\n",
                static_cast<unsigned long long>(s.cold.count), s.cold.p50_us,
                s.cold.p95_us, s.cold.p99_us, s.cold.mean_us, s.cold.max_us);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "deadline_exceeded=%llu shed=%llu retried=%llu "
                "stale_served=%llu\n",
                static_cast<unsigned long long>(s.deadline_exceeded),
                static_cast<unsigned long long>(s.shed),
                static_cast<unsigned long long>(s.retried),
                static_cast<unsigned long long>(s.stale_served));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "hit  latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f\n",
                static_cast<unsigned long long>(s.hit.count), s.hit.p50_us,
                s.hit.p95_us, s.hit.p99_us, s.hit.mean_us, s.hit.max_us);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "stale latency (us): n=%llu p50=%.1f p95=%.1f p99=%.1f "
                "mean=%.1f max=%.1f",
                static_cast<unsigned long long>(s.stale.count), s.stale.p50_us,
                s.stale.p95_us, s.stale.p99_us, s.stale.mean_us,
                s.stale.max_us);
  out += buf;
  return out;
}

namespace {

void LatencyJson(json::JsonWriter* writer, const char* key,
                 const ServerStats::LatencySummary& summary) {
  writer->Key(key);
  writer->BeginObject();
  writer->Key("count");
  writer->UInt(summary.count);
  writer->Key("p50_us");
  writer->Number(summary.p50_us);
  writer->Key("p95_us");
  writer->Number(summary.p95_us);
  writer->Key("p99_us");
  writer->Number(summary.p99_us);
  writer->Key("mean_us");
  writer->Number(summary.mean_us);
  writer->Key("max_us");
  writer->Number(summary.max_us);
  writer->EndObject();
}

}  // namespace

std::string ServerStats::ToJson(const Snapshot& s) {
  std::string out;
  json::JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("requests");
  writer.UInt(s.requests);
  writer.Key("cache_hits");
  writer.UInt(s.cache_hits);
  writer.Key("cache_hit_rate");
  writer.Number(s.cache_hit_rate);
  writer.Key("errors");
  writer.UInt(s.errors);
  writer.Key("deadline_exceeded");
  writer.UInt(s.deadline_exceeded);
  writer.Key("shed");
  writer.UInt(s.shed);
  writer.Key("retried");
  writer.UInt(s.retried);
  writer.Key("stale_served");
  writer.UInt(s.stale_served);
  writer.Key("batches");
  writer.UInt(s.batches);
  writer.Key("avg_batch_size");
  writer.Number(s.avg_batch_size);
  writer.Key("workers");
  writer.Int(s.workers);
  LatencyJson(&writer, "cold", s.cold);
  LatencyJson(&writer, "hit", s.hit);
  LatencyJson(&writer, "stale", s.stale);
  writer.EndObject();
  return out;
}

}  // namespace serve
}  // namespace dbg4eth
