#include "serve/request_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"

namespace dbg4eth {
namespace serve {

RequestQueue::RequestQueue(const RequestQueueConfig& config)
    : config_(config) {
  DBG4ETH_CHECK_GE(config.max_batch, 1);
  DBG4ETH_CHECK_GE(config.max_wait_us, 0);
  DBG4ETH_CHECK_GE(config.capacity, 1u);
}

bool RequestQueue::Push(ScoreRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return closed_ || queue_.size() < config_.capacity;
  });
  if (closed_) return false;
  queue_.push_back(std::move(request));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

RequestQueue::PushResult RequestQueue::TryPush(ScoreRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= config_.capacity) return PushResult::kFull;
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

bool RequestQueue::PopBatch(std::vector<ScoreRequest>* out) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // Closed and drained.

  // The batch starts forming now; gather more requests until it is full,
  // the wait bound expires, or the queue closes (then ship what we have).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.max_wait_us);
  not_empty_.wait_until(lock, deadline, [this] {
    return closed_ || static_cast<int>(queue_.size()) >= config_.max_batch;
  });

  const size_t take =
      std::min(queue_.size(), static_cast<size_t>(config_.max_batch));
  out->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  lock.unlock();
  not_full_.notify_all();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace serve
}  // namespace dbg4eth
