#ifndef DBG4ETH_SERVE_THREAD_POOL_H_
#define DBG4ETH_SERVE_THREAD_POOL_H_

#include "common/thread_pool.h"

namespace dbg4eth {
namespace serve {

/// The pool was promoted to the shared compute substrate in
/// common/thread_pool.h (the trainers and dataset assembly fan work out over
/// the same implementation). This alias keeps the serve-layer spelling —
/// `serve::ThreadPool` — and its include path working unchanged.
using dbg4eth::ThreadPool;

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_THREAD_POOL_H_
