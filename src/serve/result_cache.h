#ifndef DBG4ETH_SERVE_RESULT_CACHE_H_
#define DBG4ETH_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "eth/types.h"

namespace dbg4eth {
namespace serve {

/// \brief Sizing of the result cache.
struct ResultCacheConfig {
  /// Total entries across all shards; each shard holds capacity/num_shards
  /// (rounded up, minimum 1).
  size_t capacity = 4096;
  /// Independent LRU shards; lookups lock only their shard, so shards
  /// bound lock contention between workers.
  int num_shards = 8;
};

/// \brief Sharded LRU cache of scored probabilities keyed by
/// (address, ledger height).
///
/// The ledger height is part of the key: as soon as the service observes a
/// taller ledger, lookups for the new height miss and fresh scores are
/// computed, so stale entries are never returned. `InvalidateOlderThan`
/// additionally drops entries from superseded heights eagerly to free
/// capacity.
class ResultCache {
 public:
  struct Key {
    eth::AccountId address = -1;
    uint64_t height = 0;
    bool operator==(const Key& other) const {
      return address == other.address && height == other.height;
    }
  };

  explicit ResultCache(const ResultCacheConfig& config);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached probability and refreshes the entry's recency, or
  /// nullopt on miss. Counts a hit or miss either way.
  std::optional<double> Get(const Key& key);

  /// Inserts or refreshes an entry, evicting its shard's LRU tail when the
  /// shard is at capacity.
  void Put(const Key& key, double probability);

  /// A cached score with this key's height and probability.
  struct StaleEntry {
    uint64_t height = 0;
    double probability = 0.0;
  };

  /// Degraded-mode lookup: the newest cached entry for `address` strictly
  /// below `height`, or nullopt. Scans every shard (entries for one
  /// address at different heights hash to different shards), so this is
  /// O(cache size) — it runs only when the cold path is failing or
  /// overloaded, never on the hit path. Recency is not refreshed and
  /// hit/miss counters are untouched.
  std::optional<StaleEntry> GetNewestBelow(eth::AccountId address,
                                           uint64_t height);

  /// Drops every entry whose height is strictly below `height`.
  void InvalidateOlderThan(uint64_t height);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  /// Entries evicted by capacity pressure (not invalidation / Clear).
  uint64_t evictions() const { return evictions_.load(); }

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Splitmix-style scramble of the two key halves.
      uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(key.address))
                    << 32) ^
                   key.height;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };

  struct Entry {
    Key key;
    double probability = 0.0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recent.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  };

  Shard& ShardFor(const Key& key);

  size_t capacity_ = 0;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace dbg4eth

#endif  // DBG4ETH_SERVE_RESULT_CACHE_H_
