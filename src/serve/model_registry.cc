#include "serve/model_registry.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dbg4eth {
namespace serve {

namespace {

obs::Counter* ReloadCounter(const char* outcome) {
  return obs::MetricsRegistry::Global()->CounterAt(
      "serve_model_reloads_total",
      "Model hot-reload attempts by outcome (ok, rejected, corrupt)",
      {{"outcome", outcome}});
}

obs::Counter* ReloadOkCounter() {
  static obs::Counter* counter = ReloadCounter("ok");
  return counter;
}

obs::Counter* ReloadRejectedCounter() {
  static obs::Counter* counter = ReloadCounter("rejected");
  return counter;
}

obs::Counter* ReloadCorruptCounter() {
  static obs::Counter* counter = ReloadCounter("corrupt");
  return counter;
}

obs::Gauge* GenerationGauge() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Global()->GaugeAt(
      "serve_model_generation",
      "Checkpoint generation of the model currently serving");
  return gauge;
}

obs::Histogram* ReloadWallHistogram() {
  static obs::Histogram* hist = obs::MetricsRegistry::Global()->HistogramAt(
      "serve_model_reload_us",
      "Wall time of one load + validate + swap pipeline, microseconds");
  return hist;
}

}  // namespace

Result<std::unique_ptr<ModelRegistry>> ModelRegistry::Create(
    const ModelRegistryConfig& config, ProbeFn probe) {
  DBG4ETH_ASSIGN_OR_RETURN(std::unique_ptr<CheckpointStore> store,
                           CheckpointStore::Open(config.store));
  std::unique_ptr<ModelRegistry> registry(
      new ModelRegistry(config, std::move(store), std::move(probe)));
  // Initial load: best effort. An empty directory or a rejected first
  // candidate leaves current() null; the watcher keeps looking.
  (void)registry->Poll();
  if (config.start_watcher) {
    registry->watcher_ = std::thread([raw = registry.get()] {
      raw->WatchLoop();
    });
  }
  return registry;
}

ModelRegistry::ModelRegistry(const ModelRegistryConfig& config,
                             std::unique_ptr<CheckpointStore> store,
                             ProbeFn probe)
    : config_(config), store_(std::move(store)), probe_(std::move(probe)) {}

ModelRegistry::~ModelRegistry() { StopWatcher(); }

void ModelRegistry::StopWatcher() {
  {
    std::lock_guard<std::mutex> lock(watcher_mu_);
    stop_ = true;
  }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

void ModelRegistry::WatchLoop() {
  std::unique_lock<std::mutex> lock(watcher_mu_);
  while (!stop_) {
    watcher_cv_.wait_for(
        lock, std::chrono::microseconds(config_.poll_interval_us),
        [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    const Result<bool> swapped = Poll();
    if (!swapped.ok()) {
      DBG4ETH_LOG(Warning) << "model reload attempt failed: "
                           << swapped.status().ToString();
    }
    lock.lock();
  }
}

std::shared_ptr<const core::Dbg4Eth> ModelRegistry::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::current_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_generation_;
}

void ModelRegistry::SetSwapCallback(SwapCallback callback) {
  std::shared_ptr<const core::Dbg4Eth> installed;
  uint64_t generation = 0;
  SwapCallback to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    swap_callback_ = std::move(callback);
    installed = current_;
    generation = current_generation_;
    to_fire = swap_callback_;
  }
  if (installed != nullptr && to_fire != nullptr) {
    to_fire(std::move(installed), generation);
  }
}

Result<bool> ModelRegistry::Poll() {
  std::lock_guard<std::mutex> poll_lock(poll_mu_);
  const uint64_t latest = store_->LatestGeneration();
  uint64_t floor = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    floor = std::max(current_generation_, skip_generation_);
  }
  if (latest <= floor) return false;  // Nothing new since the last look.
  return TryReload(latest);
}

Result<bool> ModelRegistry::TryReload(uint64_t latest_on_disk) {
  obs::ScopedTimer reload_timer(ReloadWallHistogram());
  Result<CheckpointStore::LoadedCheckpoint> loaded =
      store_->LoadLatestValidGeneration();
  if (!loaded.ok()) {
    // Every generation on disk is unreadable or fails its CRC.
    ReloadCorruptCounter()->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    skip_generation_ = latest_on_disk;
    return false;
  }
  const uint64_t candidate_generation = loaded.ValueOrDie().sequence;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (candidate_generation <= current_generation_) {
      // The newest generation is corrupt and the recovery walk fell back
      // to one we already serve (or older) — count it, remember the bad
      // sequence, keep serving.
      ReloadCorruptCounter()->Inc();
      skip_generation_ = latest_on_disk;
      return false;
    }
  }

  std::istringstream body(loaded.ValueOrDie().payload);
  Result<std::unique_ptr<core::Dbg4Eth>> candidate =
      core::Dbg4Eth::Load(&body);
  if (!candidate.ok()) {
    // The frame validated but the model body did not parse.
    ReloadCorruptCounter()->Inc();
    DBG4ETH_LOG(Warning) << "checkpoint generation " << candidate_generation
                         << " rejected: " << candidate.status().ToString();
    std::lock_guard<std::mutex> lock(mu_);
    skip_generation_ = latest_on_disk;
    return false;
  }
  std::shared_ptr<const core::Dbg4Eth> model(
      std::move(candidate).ValueOrDie().release());

  Result<std::vector<double>> probe_scores = ValidateCandidate(*model);
  if (!probe_scores.ok()) {
    ReloadRejectedCounter()->Inc();
    DBG4ETH_LOG(Warning) << "checkpoint generation " << candidate_generation
                         << " failed the validation gate: "
                         << probe_scores.status().ToString()
                         << "; continuing to serve generation "
                         << current_generation();
    std::lock_guard<std::mutex> lock(mu_);
    skip_generation_ = latest_on_disk;
    return false;
  }

  SwapCallback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = model;
    current_generation_ = candidate_generation;
    current_probe_scores_ = std::move(probe_scores).ValueOrDie();
    callback = swap_callback_;
  }
  ReloadOkCounter()->Inc();
  GenerationGauge()->Set(static_cast<double>(candidate_generation));
  if (callback != nullptr) {
    callback(std::move(model), candidate_generation);
  }
  return true;
}

Result<std::vector<double>> ModelRegistry::ValidateCandidate(
    const core::Dbg4Eth& candidate) {
  DBG4ETH_FAIL_POINT("reload.validate");
  if (probe_ == nullptr) return std::vector<double>{};
  DBG4ETH_ASSIGN_OR_RETURN(std::vector<double> scores, probe_(candidate));
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!std::isfinite(scores[i])) {
      return Status::DataLoss(
          "candidate produced a non-finite probe score at probe " +
          std::to_string(i));
    }
  }
  if (config_.max_probe_drift >= 0.0) {
    std::vector<double> baseline;
    {
      std::lock_guard<std::mutex> lock(mu_);
      baseline = current_probe_scores_;
    }
    // No baseline (first install, or the previous model ran a different
    // probe set size) means no drift to measure.
    if (baseline.size() == scores.size()) {
      for (size_t i = 0; i < scores.size(); ++i) {
        const double drift = std::fabs(scores[i] - baseline[i]);
        if (drift > config_.max_probe_drift) {
          return Status::FailedPrecondition(
              "probe " + std::to_string(i) + " drifted " +
              std::to_string(drift) + " (max " +
              std::to_string(config_.max_probe_drift) + ")");
        }
      }
    }
  }
  return scores;
}

}  // namespace serve
}  // namespace dbg4eth
