#ifndef DBG4ETH_COMMON_THREAD_POOL_H_
#define DBG4ETH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbg4eth {

/// \brief Fixed-size worker pool over a bounded MPMC task queue.
///
/// The shared compute substrate of the library: the serving layer drains
/// request batches through it, the trainers fan instances of a batch out
/// over it (see ParallelFor in common/parallel_for.h), and dataset
/// assembly materializes subgraph instances on it.
///
/// `Submit` blocks while the queue is at capacity (backpressure toward the
/// producer), `TrySubmit` fails fast instead. Tasks that throw are caught
/// in the worker loop — an exception never kills a worker thread; it is
/// counted in `exceptions_caught()` and the worker moves on. `Shutdown`
/// drains every task already accepted, then joins the workers; it is
/// idempotent and also runs from the destructor.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1) over a queue holding at most
  /// `queue_capacity` pending tasks (minimum 1).
  explicit ThreadPool(int num_threads, size_t queue_capacity = 1024);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false (and
  /// drops the task) once Shutdown has begun.
  bool Submit(std::function<void()> task);

  /// Non-blocking Submit: false when the queue is full or shut down.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins workers.
  void Shutdown();

  int num_threads() const { return num_threads_; }
  size_t queue_capacity() const { return queue_capacity_; }
  /// Tasks that finished (normally or by throwing).
  uint64_t tasks_executed() const { return tasks_executed_.load(); }
  /// Tasks whose body threw; the exception was swallowed by the worker.
  uint64_t exceptions_caught() const { return exceptions_caught_.load(); }

 private:
  void WorkerLoop();

  const size_t queue_capacity_;
  int num_threads_ = 0;
  std::mutex shutdown_mu_;  ///< Serializes Shutdown callers.
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> exceptions_caught_{0};
};

/// Resolves a thread-count knob: values >= 1 pass through, 0 (or negative)
/// means "one per hardware thread".
int ResolveNumThreads(int requested);

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_THREAD_POOL_H_
