#ifndef DBG4ETH_COMMON_RNG_H_
#define DBG4ETH_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace dbg4eth {

class BinaryReader;
class BinaryWriter;
class Status;

/// \brief Complete generator state of an Rng: the four xoshiro256** words
/// plus the Box-Muller normal cache. Restoring an exported state resumes
/// the stream bit-identically — including a pending cached normal, so a
/// snapshot taken between the two halves of a Box-Muller draw still
/// replays exactly.
struct RngState {
  std::array<uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// \brief Deterministic pseudo-random number generator.
///
/// Wraps the SplitMix64 / xoshiro256** generators. Every stochastic
/// component of the library takes an Rng by reference (or a seed) so that
/// all experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int Poisson(double mean);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Non-positive weights are treated as zero; if all are zero, samples
  /// uniformly.
  int Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator (for parallel streams).
  Rng Fork();

  /// Exports the full generator state (see RngState).
  RngState State() const;

  /// Restores a state exported with State(); the subsequent draw sequence
  /// is bit-identical to the generator the state was taken from.
  void SetState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Serializes the generator state (for training-resume checkpoints).
void WriteRngState(BinaryWriter* writer, const Rng& rng);

/// Restores a state written by WriteRngState into `rng`.
Status ReadRngState(BinaryReader* reader, Rng* rng);

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_RNG_H_
