#ifndef DBG4ETH_COMMON_TABLE_PRINTER_H_
#define DBG4ETH_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dbg4eth {

/// \brief Aligned text-table builder used by the benchmark harness to print
/// rows in the same layout as the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, the rest are fixed-precision
  /// numbers.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Renders the table with column alignment.
  std::string ToString() const;

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_TABLE_PRINTER_H_
