#ifndef DBG4ETH_COMMON_MATH_UTIL_H_
#define DBG4ETH_COMMON_MATH_UTIL_H_

#include <cmath>
#include <vector>

namespace dbg4eth {

/// Numerically stable sigmoid.
inline double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Clamps to [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than two elements.
double StdDev(const std::vector<double>& v);

/// Pearson correlation coefficient; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Min/max of a non-empty vector.
double MinOf(const std::vector<double>& v);
double MaxOf(const std::vector<double>& v);

/// Percentile in [0,100] via linear interpolation on a copy.
double Percentile(std::vector<double> v, double pct);

/// Stable log-sum-exp.
double LogSumExp(const std::vector<double>& v);

/// In-place softmax.
void SoftmaxInPlace(std::vector<double>* v);

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_MATH_UTIL_H_
