#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dbg4eth {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

/// Serializes line emission so messages from concurrent worker threads
/// (serving pool, bench client threads) never shear mid-line. The full
/// line, newline included, goes out in a single fputs under this lock.
std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

void EmitLine(std::string line) {
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fputs(line.c_str(), stderr);
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_log_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    EmitLine(stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  EmitLine(stream_.str());
  std::abort();
}

}  // namespace internal

}  // namespace dbg4eth
