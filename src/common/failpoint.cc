#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"

namespace dbg4eth {
namespace failpoint {

namespace {

/// xorshift64*, the same tiny generator the stats reservoir uses; quality
/// needs are minimal and it keeps Evaluate's critical section short.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

struct PointState {
  Spec spec;
  uint64_t rng_state = 1;
  uint64_t evals = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, PointState> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives threads.
  return *registry;
}

/// Fast-path gate: Evaluate returns immediately while nothing is enabled,
/// so marked sites in failpoint-enabled builds stay cheap outside tests.
std::atomic<int> g_num_enabled{0};

bool TriggerFires(PointState* state) {
  switch (state->spec.trigger) {
    case Spec::Trigger::kAlways:
      return true;
    case Spec::Trigger::kEveryNth:
      return state->spec.n >= 1 && state->evals % state->spec.n == 0;
    case Spec::Trigger::kAfterN:
      return state->evals > state->spec.n;
    case Spec::Trigger::kProbability: {
      const double u =
          static_cast<double>(NextRandom(&state->rng_state) >> 11) *
          (1.0 / 9007199254740992.0);  // 2^-53: uniform in [0, 1).
      return u < state->spec.probability;
    }
  }
  return false;
}

}  // namespace

Spec Always(StatusCode code) {
  Spec spec;
  spec.code = code;
  return spec;
}

Spec EveryNth(uint64_t n, StatusCode code) {
  Spec spec;
  spec.trigger = Spec::Trigger::kEveryNth;
  spec.n = n;
  spec.code = code;
  return spec;
}

Spec AfterN(uint64_t n, StatusCode code) {
  Spec spec;
  spec.trigger = Spec::Trigger::kAfterN;
  spec.n = n;
  spec.code = code;
  return spec;
}

Spec WithProbability(double p, uint64_t seed, StatusCode code) {
  Spec spec;
  spec.trigger = Spec::Trigger::kProbability;
  spec.probability = p;
  spec.seed = seed;
  spec.code = code;
  return spec;
}

Spec SleepFor(int64_t sleep_us) {
  Spec spec;
  spec.sleep_us = sleep_us;
  spec.inject_error = false;
  return spec;
}

Status Enable(const std::string& name, const Spec& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name must not be empty");
  }
  if (spec.trigger == Spec::Trigger::kEveryNth && spec.n < 1) {
    return Status::InvalidArgument("every-Nth failpoint needs n >= 1");
  }
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return Status::InvalidArgument("failpoint probability must be in [0,1]");
  }
  if (spec.inject_error && spec.code == StatusCode::kOk) {
    return Status::InvalidArgument(
        "failpoint cannot inject kOk; use SleepFor for side-effect-only "
        "points");
  }
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  PointState state;
  state.spec = spec;
  state.rng_state = spec.seed ? spec.seed : 1;
  auto [it, inserted] = registry.points.insert_or_assign(name, state);
  (void)it;
  if (inserted) g_num_enabled.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Disable(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) > 0) {
    g_num_enabled.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_num_enabled.fetch_sub(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

bool IsEnabled(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.points.count(name) > 0;
}

uint64_t EvalCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.evals;
}

uint64_t FireCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.fires;
}

Status Evaluate(const char* name) {
  if (g_num_enabled.load(std::memory_order_relaxed) == 0) {
    return Status::OK();
  }
  int64_t sleep_us = 0;
  Status injected = Status::OK();
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.points.find(name);
    if (it == registry.points.end()) return Status::OK();
    PointState& state = it->second;
    ++state.evals;
    if (!TriggerFires(&state)) return Status::OK();
    ++state.fires;
    sleep_us = state.spec.sleep_us;
    if (state.spec.inject_error) {
      injected = Status(state.spec.code,
                        state.spec.message.empty()
                            ? std::string(name) + " failpoint fired"
                            : state.spec.message);
    }
  }
  // The metric lookup takes the registry mutex of MetricsRegistry, so it
  // stays outside the failpoint registry lock (no nested locking).
  obs::MetricsRegistry::Global()
      ->CounterAt("failpoint_fires_total", "Failpoint trigger fires by point",
                  {{"point", name}})
      ->Inc();
  // Sleep outside the lock so a slow point never stalls other points.
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  return injected;
}

}  // namespace failpoint
}  // namespace dbg4eth
