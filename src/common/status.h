#ifndef DBG4ETH_COMMON_STATUS_H_
#define DBG4ETH_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dbg4eth {

/// \brief Error categories used across the library.
///
/// Follows the Arrow/RocksDB convention of returning a Status from
/// operations that can fail instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  /// The request's deadline passed before (or while) it was served.
  kDeadlineExceeded,
  /// A bounded resource (queue, pool, budget) is saturated; retrying
  /// later may succeed.
  kResourceExhausted,
  /// A dependency is transiently unavailable; retrying may succeed.
  kUnavailable,
  /// Stored data is corrupt or truncated (checksum mismatch, bad frame).
  kDataLoss,
};

/// \brief Outcome of an operation: either OK or an error code with a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// True for errors worth retrying after a backoff (the dependency may
  /// recover): kUnavailable and kResourceExhausted. Deadline expiry,
  /// corruption and caller mistakes are not transient.
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates an error Status from the evaluated expression, if any.
#define DBG4ETH_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::dbg4eth::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_STATUS_H_
