#include "common/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace dbg4eth {

namespace {

// Shared state of one fork-join region. Heap-allocated and shared with the
// worker tasks so a worker that outlives the region's stack frame (e.g. one
// scheduled after the caller already finished the loop) still touches valid
// memory.
struct LoopState {
  explicit LoopState(int n) : total(n) {}

  const int total;
  std::atomic<int> next{0};  ///< Work-stealing index counter.
  std::atomic<int> done{0};  ///< Completed indices (for the join).
  std::mutex mu;
  std::condition_variable all_done;
};

// Drains indices from the counter until the range is exhausted; called from
// both the pool workers and the caller thread.
void DrainLoop(const std::shared_ptr<LoopState>& state,
               const std::function<void(int)>& body) {
  int completed = 0;
  for (;;) {
    const int i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->total) break;
    body(i);
    ++completed;
  }
  if (completed == 0) return;
  const int done_now =
      state->done.fetch_add(completed, std::memory_order_acq_rel) + completed;
  if (done_now == state->total) {
    // Taking the lock orders this notify after the caller's wait, closing
    // the missed-wakeup window.
    std::lock_guard<std::mutex> lock(state->mu);
    state->all_done.notify_all();
  }
}

}  // namespace

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 0 || n == 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  auto state = std::make_shared<LoopState>(n);
  // No point queueing more helpers than there are indices beyond the
  // caller's own share.
  const int helpers = std::min(pool->num_threads(), n - 1);
  for (int t = 0; t < helpers; ++t) {
    // TrySubmit: if the queue is full (pool busy with other work), the
    // caller simply keeps more of the range for itself. `body` is copied
    // into each task: a helper dequeued after the range is already drained
    // (and the caller's frame gone) must not touch caller stack.
    pool->TrySubmit([state, body] { DrainLoop(state, body); });
  }

  // The caller participates instead of idling, then waits for helpers that
  // claimed indices to finish them.
  DrainLoop(state, body);
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= state->total;
  });
}

}  // namespace dbg4eth
