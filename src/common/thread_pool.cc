#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"

namespace dbg4eth {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_capacity_(std::max<size_t>(1, queue_capacity)) {
  const int n = std::max(1, num_threads);
  num_threads_ = n;
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] {
    return shutdown_ || queue_.size() < queue_capacity_;
  });
  if (shutdown_) return false;
  queue_.push_back(std::move(task));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  // Serializes concurrent Shutdown callers; `workers_` is only touched by
  // the constructor and under this lock.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // Sleep-only injection point: simulates a hung/slow worker so chaos
    // tests can race shutdown and deadlines against stuck tasks.
    DBG4ETH_FAIL_POINT_APPLY("pool.task");
    try {
      task();
    } catch (...) {
      exceptions_caught_.fetch_add(1);
    }
    tasks_executed_.fetch_add(1);
  }
}

int ResolveNumThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace dbg4eth
