#include "common/status.h"

namespace dbg4eth {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dbg4eth
