#ifndef DBG4ETH_COMMON_FAILPOINT_H_
#define DBG4ETH_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dbg4eth {
namespace failpoint {

/// \brief Deterministic fault-injection registry (RocksDB fail_point
/// style).
///
/// Production code marks fallible sites with
/// `DBG4ETH_FAIL_POINT("serve.score_cold")`; tests enable a named point
/// with a trigger (always / every-Nth / after-N / seeded probability) and
/// an action (inject a Status error, sleep, or both) to drive error paths
/// that are otherwise unreachable without real hardware faults.
///
/// Unless the build defines DBG4ETH_FAILPOINTS_ENABLED (CMake option
/// `DBG4ETH_FAILPOINTS=ON`; the tsan/asan presets set it) the macros
/// compile to nothing, so shipping binaries pay zero cost at the marked
/// sites. The registry functions themselves are always compiled so tests
/// can introspect configuration regardless of the build flavor.
///
/// Thread safety: all functions are safe to call concurrently; Evaluate
/// takes one short lock per enabled-registry hit and sleeps (if
/// configured) outside the lock.
///
/// Failpoint catalog (sites wired in this repo):
///   ckpt.write        WriteFramedCheckpoint, before the frame is emitted
///   ckpt.read         ReadFramedCheckpoint, before the frame is parsed
///   eth.from_csv      CsvLedger::FromCsv, before parsing begins
///   eth.materialize   eth::MaterializeInstance, before sampling
///   serve.score_cold  InferenceService cold path, before materialization
///   train.epoch_end   Dbg4Eth training loop, after each epoch's snapshot
///                     decision (simulates a crash at an epoch boundary)
///   reload.validate   ModelRegistry, before the validation gate scores
///                     the probe set (simulates a poisoned/failed reload)
///   pool.task         ThreadPool worker, before running a task
///                     (sleep-only site: injected errors are ignored)
///   net.accept        HttpServer acceptor, after accept4 succeeds (the
///                     new socket is dropped, simulating accept storms)
///   net.conn_read     HttpServer event loop, before reading a connection
///                     (fires tear the connection down as a read error)
///   net.conn_write    HttpServer event loop, before writing a response
///                     (fires tear the connection down mid-response)
struct Spec {
  enum class Trigger {
    kAlways,       ///< Fire on every evaluation.
    kEveryNth,     ///< Fire on evaluations n, 2n, 3n, ...
    kAfterN,       ///< Pass the first n evaluations, then always fire.
    kProbability,  ///< Fire with probability `probability` (seeded RNG).
  };

  Trigger trigger = Trigger::kAlways;
  /// Parameter of kEveryNth / kAfterN (>= 1 for kEveryNth).
  uint64_t n = 1;
  /// Parameter of kProbability, in [0, 1].
  double probability = 1.0;
  /// Seed of the per-point RNG driving kProbability (deterministic runs).
  uint64_t seed = 0x5eedf;

  /// Status injected when the point fires (returned by the macro site).
  StatusCode code = StatusCode::kUnavailable;
  /// Message of the injected Status; empty = "<name> failpoint fired".
  std::string message;
  /// Sleep this long when the point fires, before returning (simulates a
  /// hung dependency / slow worker). 0 = no sleep.
  int64_t sleep_us = 0;
  /// When false the point only sleeps; Evaluate returns OK even when it
  /// fires (for void sites like thread-pool task execution).
  bool inject_error = true;
};

/// Shorthand spec constructors.
Spec Always(StatusCode code = StatusCode::kUnavailable);
Spec EveryNth(uint64_t n, StatusCode code = StatusCode::kUnavailable);
Spec AfterN(uint64_t n, StatusCode code = StatusCode::kUnavailable);
Spec WithProbability(double p, uint64_t seed = 0x5eedf,
                     StatusCode code = StatusCode::kUnavailable);
Spec SleepFor(int64_t sleep_us);

/// Registers (or reconfigures) a failpoint. Counters reset on re-Enable.
Status Enable(const std::string& name, const Spec& spec);
void Disable(const std::string& name);
void DisableAll();
bool IsEnabled(const std::string& name);

/// Evaluations of a point since it was enabled (0 if unknown).
uint64_t EvalCount(const std::string& name);
/// Evaluations on which the point fired.
uint64_t FireCount(const std::string& name);

/// Called by the macros: returns the injected error when `name` is
/// enabled and its trigger fires (after any configured sleep), OK
/// otherwise. Cheap when no failpoint is enabled anywhere (one relaxed
/// atomic load).
Status Evaluate(const char* name);

/// True when this build compiled the DBG4ETH_FAIL_POINT sites in.
inline constexpr bool kCompiledIn =
#ifdef DBG4ETH_FAILPOINTS_ENABLED
    true;
#else
    false;
#endif

}  // namespace failpoint
}  // namespace dbg4eth

#ifdef DBG4ETH_FAILPOINTS_ENABLED
/// Returns the injected Status out of the enclosing function (which must
/// return Status or Result<T>) when the named point fires.
#define DBG4ETH_FAIL_POINT(name)                                  \
  do {                                                            \
    ::dbg4eth::Status _fp_st = ::dbg4eth::failpoint::Evaluate(name); \
    if (!_fp_st.ok()) return _fp_st;                              \
  } while (false)
/// Side-effect-only site (sleeps apply, injected errors are discarded);
/// usable in void contexts.
#define DBG4ETH_FAIL_POINT_APPLY(name) \
  (void)::dbg4eth::failpoint::Evaluate(name)
#else
#define DBG4ETH_FAIL_POINT(name) \
  do {                           \
  } while (false)
#define DBG4ETH_FAIL_POINT_APPLY(name) \
  do {                                 \
  } while (false)
#endif

#endif  // DBG4ETH_COMMON_FAILPOINT_H_
