#ifndef DBG4ETH_COMMON_RESULT_H_
#define DBG4ETH_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbg4eth {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result: `ValueOrDie()` aborts on error (used in tests and
/// examples where failure is a programming bug), `status()`/`ok()` support
/// explicit handling on fallible paths.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from an error Status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!value_.has_value()) {
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

#define DBG4ETH_INTERNAL_CONCAT_IMPL(a, b) a##b
#define DBG4ETH_INTERNAL_CONCAT(a, b) DBG4ETH_INTERNAL_CONCAT_IMPL(a, b)

/// Assigns the value of a Result expression or propagates its error.
#define DBG4ETH_ASSIGN_OR_RETURN(lhs, expr)                       \
  DBG4ETH_ASSIGN_OR_RETURN_IMPL(                                  \
      DBG4ETH_INTERNAL_CONCAT(_result_, __LINE__), lhs, expr)

#define DBG4ETH_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                  \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).ValueOrDie()

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_RESULT_H_
