#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/serialize.h"
#include "common/status.h"

namespace dbg4eth {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  return static_cast<int>(NextU64() % static_cast<uint64_t>(n));
}

int Rng::UniformInt(int lo, int hi) { return lo + UniformInt(hi - lo + 1); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const int v = static_cast<int>(std::lround(Normal(mean, std::sqrt(mean))));
    return std::max(0, v);
  }
  const double limit = std::exp(-mean);
  double prod = Uniform();
  int n = 0;
  while (prod > limit) {
    prod *= Uniform();
    ++n;
  }
  return n;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return UniformInt(static_cast<int>(weights.size()));
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  k = std::min(k, n);
  std::vector<int> indices(n);
  for (int i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions are needed.
  for (int i = 0; i < k; ++i) {
    const int j = i + UniformInt(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextU64()); }

RngState Rng::State() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

void WriteRngState(BinaryWriter* writer, const Rng& rng) {
  const RngState state = rng.State();
  writer->WriteString("rng_state");
  for (uint64_t word : state.s) writer->WriteU64(word);
  writer->WriteBool(state.has_cached_normal);
  writer->WriteDouble(state.cached_normal);
}

Status ReadRngState(BinaryReader* reader, Rng* rng) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("rng_state"));
  RngState state;
  for (uint64_t& word : state.s) {
    DBG4ETH_RETURN_NOT_OK(reader->ReadU64(&word));
  }
  DBG4ETH_RETURN_NOT_OK(reader->ReadBool(&state.has_cached_normal));
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&state.cached_normal));
  rng->SetState(state);
  return Status::OK();
}

}  // namespace dbg4eth
