#ifndef DBG4ETH_COMMON_CHECKPOINT_STORE_H_
#define DBG4ETH_COMMON_CHECKPOINT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbg4eth {

/// CRC-32 (IEEE 802.3 reflected polynomial, the zlib convention) of
/// `data[0..n)`. Chainable: pass a previous return value as `seed` to
/// extend the checksum over multiple buffers.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// \brief Self-describing checkpoint frame layered over the raw
/// BinaryWriter/BinaryReader streams.
///
/// Layout (all integers little-endian via BinaryWriter):
///   u32 magic   = kCheckpointMagic
///   u32 version = kCheckpointFrameVersion
///   u64 payload length
///   payload bytes
///   u32 CRC-32 of the payload
///
/// A frame makes corruption detectable *before* payload parsing: a
/// truncated file fails the length check, a flipped byte fails the CRC,
/// and both surface as kDataLoss instead of a parser crash or a silently
/// wrong model. Streams that do not start with the magic are legacy
/// unframed checkpoints; callers detect that with LooksFramed and fall
/// back to parsing the stream directly.
inline constexpr uint32_t kCheckpointMagic = 0xd5b64e7f;
inline constexpr uint32_t kCheckpointFrameVersion = 1;

/// Upper bound on a sane payload (1 GiB); larger declared lengths are
/// treated as corruption rather than honored as allocations.
inline constexpr uint64_t kMaxCheckpointPayload = 1ull << 30;

/// Wraps `payload` in a frame and writes it to `os`.
Status WriteFramedCheckpoint(std::ostream* os, const std::string& payload);

/// Reads and validates one frame, returning its payload. Corruption
/// (bad length, truncation, CRC mismatch) returns kDataLoss; a stream
/// that is not framed at all returns kInvalidArgument.
Result<std::string> ReadFramedCheckpoint(std::istream* is);

/// Peeks the first four bytes of `is` (restoring the read position):
/// true when they are the frame magic.
bool LooksFramed(std::istream* is);

/// \brief Sizing and placement of a CheckpointStore.
struct CheckpointStoreConfig {
  /// Directory holding the checkpoint files (created on Open).
  std::string directory;
  /// Newest checkpoints kept on disk; older ones are pruned after each
  /// successful Save. Minimum 1.
  int retain = 3;
  /// fsync the file before rename and the directory after (crash
  /// durability). Tests may disable to spare IO.
  bool sync = true;
};

/// \brief Durable, versioned on-disk checkpoint sequence.
///
/// Each Save serializes through the caller's writer into a framed file
/// `ckpt-<seq>.bin`, written as `.tmp` first and atomically renamed into
/// place (with fsync on the file and directory when `sync` is set), so a
/// crash mid-write never leaves a half-visible checkpoint. LoadLatestValid
/// walks the sequence newest-first and returns the first payload whose
/// frame validates, logging the reason each corrupt or truncated file is
/// skipped — one bad byte in the newest checkpoint costs one generation,
/// not the model.
class CheckpointStore {
 public:
  /// Creates the directory if needed and scans existing checkpoints.
  static Result<std::unique_ptr<CheckpointStore>> Open(
      const CheckpointStoreConfig& config);

  /// Serializes a payload via `writer`, commits it as the next checkpoint
  /// and prunes generations beyond `retain`. Returns the committed path.
  Result<std::string> Save(
      const std::function<Status(std::ostream*)>& writer);

  /// Payload of the newest checkpoint whose frame validates. Corrupt
  /// files are skipped with a logged reason; NotFound when none is valid.
  Result<std::string> LoadLatestValid() const;

  /// \brief One on-disk checkpoint generation (no payload read).
  struct Generation {
    uint64_t sequence = 0;
    std::string path;
  };

  /// \brief A validated payload together with the generation it came from.
  struct LoadedCheckpoint {
    uint64_t sequence = 0;
    std::string path;
    std::string payload;
  };

  /// On-disk generations, newest first. A directory scan only — payloads
  /// are not opened, so pollers (e.g. the serving-side reload watcher) can
  /// call this every tick cheaply.
  std::vector<Generation> ListGenerations() const;

  /// Sequence number of the newest on-disk generation, 0 when the store is
  /// empty. Same cost as ListGenerations (one directory scan, no reads).
  uint64_t LatestGeneration() const;

  /// LoadLatestValid plus the generation metadata of the checkpoint that
  /// validated — the reload watcher needs the sequence to tell "newest is
  /// corrupt, fell back to one I already serve" from a genuine upgrade.
  Result<LoadedCheckpoint> LoadLatestValidGeneration() const;

  /// Absolute paths of the on-disk checkpoints, newest first.
  std::vector<std::string> ListCheckpoints() const;

  /// Sequence number the next Save will commit as.
  uint64_t next_sequence() const { return next_sequence_; }

  const CheckpointStoreConfig& config() const { return config_; }

 private:
  explicit CheckpointStore(const CheckpointStoreConfig& config)
      : config_(config) {}

  CheckpointStoreConfig config_;
  uint64_t next_sequence_ = 1;
};

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_CHECKPOINT_STORE_H_
