#ifndef DBG4ETH_COMMON_LOGGING_H_
#define DBG4ETH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbg4eth {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line emitter; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Fatal variant: aborts the process after flushing.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define DBG4ETH_LOG(level)                                            \
  ::dbg4eth::internal::LogMessage(::dbg4eth::LogLevel::k##level,      \
                                  __FILE__, __LINE__)

/// Always-on invariant check; aborts with a message when violated.
/// Used for programming errors (out-of-bounds indices, shape mismatches)
/// where continuing would corrupt results silently.
#define DBG4ETH_CHECK(condition)                                       \
  if (!(condition))                                                    \
  ::dbg4eth::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define DBG4ETH_CHECK_EQ(a, b) DBG4ETH_CHECK((a) == (b))
#define DBG4ETH_CHECK_NE(a, b) DBG4ETH_CHECK((a) != (b))
#define DBG4ETH_CHECK_LT(a, b) DBG4ETH_CHECK((a) < (b))
#define DBG4ETH_CHECK_LE(a, b) DBG4ETH_CHECK((a) <= (b))
#define DBG4ETH_CHECK_GT(a, b) DBG4ETH_CHECK((a) > (b))
#define DBG4ETH_CHECK_GE(a, b) DBG4ETH_CHECK((a) >= (b))

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_LOGGING_H_
