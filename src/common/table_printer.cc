#include "common/table_printer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DBG4ETH_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatFixed(v, precision));
  AddRow(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + PadRight(cell, widths[i]) + " |";
    }
    return line + "\n";
  };
  auto separator = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = separator();
  out += render_row(header_);
  out += separator();
  for (const auto& row : rows_) {
    out += row.empty() ? separator() : render_row(row);
  }
  out += separator();
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace dbg4eth
