#include "common/math_util.h"

#include <algorithm>

#include "common/logging.h"

namespace dbg4eth {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  DBG4ETH_CHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double MinOf(const std::vector<double>& v) {
  DBG4ETH_CHECK(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

double MaxOf(const std::vector<double>& v) {
  DBG4ETH_CHECK(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

double Percentile(std::vector<double> v, double pct) {
  DBG4ETH_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const double rank = Clamp(pct, 0.0, 100.0) / 100.0 *
                      static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double LogSumExp(const std::vector<double>& v) {
  DBG4ETH_CHECK(!v.empty());
  const double m = MaxOf(v);
  double sum = 0.0;
  for (double x : v) sum += std::exp(x - m);
  return m + std::log(sum);
}

void SoftmaxInPlace(std::vector<double>* v) {
  if (v->empty()) return;
  const double lse = LogSumExp(*v);
  for (double& x : *v) x = std::exp(x - lse);
}

}  // namespace dbg4eth
