#ifndef DBG4ETH_COMMON_JSON_UTIL_H_
#define DBG4ETH_COMMON_JSON_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dbg4eth {
namespace json {

/// \brief Shared JSON plumbing (see DESIGN.md "Network layer").
///
/// One escape routine, one incremental writer and one minimal parser,
/// used by both the obs exporters (src/obs/export.cc) and the HTTP layer
/// (src/net) so the two never drift on escaping or number formatting.
/// The parser covers exactly the subset the request bodies need: objects,
/// arrays, strings, numbers, booleans and null, with a recursion-depth
/// bound — it is not a streaming or validating-everything parser.

/// Appends `s` to `out` with JSON string escaping: `"` `\` the common
/// control escapes (\n \r \t \b \f) and \u00XX for other control bytes.
void AppendJsonEscaped(const std::string& s, std::string* out);

/// Convenience wrapper: the escaped rendering of `s` (no quotes).
std::string JsonEscape(const std::string& s);

/// Renders `v` with enough digits to parse back to the identical double
/// (shortest of %.15g/%.16g/%.17g that round-trips through strtod);
/// non-finite values render as JSON null, which has no number syntax for
/// them.
std::string JsonNumberRoundTrip(double v);

/// \brief Comma-and-quote bookkeeping for hand-assembled JSON.
///
/// Appends compact JSON (one space after each key's colon, no newlines)
/// to a caller-owned string. The writer tracks
/// nesting and whether a separator is due, so call sites read like the
/// document they produce:
///
///   JsonWriter w(&out);
///   w.BeginObject();
///   w.Key("address"); w.Int(42);
///   w.Key("scores"); w.BeginArray(); w.Number(0.5); w.EndArray();
///   w.EndObject();
///
/// The writer never validates that the result is a complete document;
/// mismatched Begin/End pairs are the caller's bug.
class JsonWriter {
 public:
  explicit JsonWriter(std::string* out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Object member key; must be followed by exactly one value call.
  void Key(const std::string& name);

  void String(const std::string& value);
  /// %g rendering — compact, for human-facing numbers.
  void Number(double value);
  /// Bit-exact rendering (JsonNumberRoundTrip) — for values a client
  /// must read back identically, e.g. model scores.
  void NumberRoundTrip(double value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();
  /// Splices `value` verbatim as one JSON value (must already be valid
  /// JSON, e.g. a pre-rendered sub-document).
  void Raw(const std::string& value);

 private:
  /// Emits a pending comma and marks a value as written at this depth.
  void BeforeValue();

  std::string* out_;
  /// One flag per open scope: true once the scope holds an element.
  std::vector<bool> has_element_;
  /// A Key was just written; the next value is its member value.
  bool after_key_ = false;
};

/// \brief One parsed JSON value (tree-shaped, order-preserving objects).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  ///< kArray elements.
  /// kObject members in document order (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; null when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// The number as an integer; error when not a number or not exactly
  /// representable as int64 (rejects 1.5 and 1e300, accepts 42 and 4.0e1).
  Result<int64_t> AsInt64() const;
};

/// \brief Parses one JSON document (trailing content is an error).
///
/// `max_depth` bounds object/array nesting so hostile bodies cannot
/// overflow the stack.
Result<JsonValue> ParseJson(const std::string& text, int max_depth = 64);

}  // namespace json
}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_JSON_UTIL_H_
