#ifndef DBG4ETH_COMMON_STRING_UTIL_H_
#define DBG4ETH_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace dbg4eth {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Lower-cases ASCII characters.
std::string ToLower(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with the given precision, trimming to a fixed width
/// suitable for table output (e.g., "97.56").
std::string FormatFixed(double value, int precision = 2);

/// Pads/truncates to an exact width (left-aligned).
std::string PadRight(const std::string& s, size_t width);

/// Pads to an exact width (right-aligned).
std::string PadLeft(const std::string& s, size_t width);

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_STRING_UTIL_H_
