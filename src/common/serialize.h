#ifndef DBG4ETH_COMMON_SERIALIZE_H_
#define DBG4ETH_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbg4eth {

/// \brief Little binary writer for model checkpoints. All writes go
/// through explicit fixed-width encodings so checkpoints are portable
/// across builds.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* os) : os_(os) {}

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteDouble(double v);
  void WriteBool(bool v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteIntVector(const std::vector<int>& v);

  bool ok() const { return os_->good(); }

 private:
  std::ostream* os_;
};

/// \brief Matching reader; every accessor returns a Status so corrupt or
/// truncated checkpoints fail loudly instead of yielding garbage.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* is) : is_(is) {}

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI32(int32_t* v);
  Status ReadDouble(double* v);
  Status ReadBool(bool* v);
  Status ReadString(std::string* s);
  Status ReadDoubleVector(std::vector<double>* v);
  Status ReadIntVector(std::vector<int>* v);

  /// Reads and verifies a tag string (section marker).
  Status ExpectTag(const std::string& tag);

 private:
  Status ReadBytes(void* out, size_t n);

  std::istream* is_;
};

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_SERIALIZE_H_
