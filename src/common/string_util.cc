#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cctype>

namespace dbg4eth {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFixed(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace dbg4eth
