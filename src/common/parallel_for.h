#ifndef DBG4ETH_COMMON_PARALLEL_FOR_H_
#define DBG4ETH_COMMON_PARALLEL_FOR_H_

#include <functional>

#include "common/thread_pool.h"

namespace dbg4eth {

/// \brief Fork-join index loop over a shared ThreadPool.
///
/// Runs `body(i)` for every i in [0, n), distributing indices dynamically
/// (atomic work-stealing counter) across the pool's workers while the
/// calling thread participates too, and returns only after every index has
/// completed. With a null pool (or n <= 1) the loop runs inline on the
/// caller — the num_threads=1 configuration of the trainers takes exactly
/// this path, so serial and parallel runs share one code path.
///
/// Determinism contract: `body` must write only to per-index state (and
/// thread-safe shared structures); under that contract the result is
/// independent of the thread count and of the scheduling order. `body`
/// must not throw (worker-side exceptions are swallowed by the pool and
/// would silently drop indices) and must not submit nested ParallelFor
/// work to the same pool (the caller-participation protocol does not
/// re-enter the queue, so nesting can deadlock a saturated pool).
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& body);

}  // namespace dbg4eth

#endif  // DBG4ETH_COMMON_PARALLEL_FOR_H_
