#include "common/serialize.h"

#include <cstring>

namespace dbg4eth {

namespace {

constexpr size_t kMaxVectorSize = 1u << 28;  // Corruption guard.

}  // namespace

void BinaryWriter::WriteU32(uint32_t v) {
  os_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteU64(uint64_t v) {
  os_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteI32(int32_t v) {
  os_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteDouble(double v) {
  os_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteBool(bool v) {
  const uint8_t byte = v ? 1 : 0;
  os_->write(reinterpret_cast<const char*>(&byte), 1);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  os_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  os_->write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void BinaryWriter::WriteIntVector(const std::vector<int>& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  for (int x : v) WriteI32(x);
}

Status BinaryReader::ReadBytes(void* out, size_t n) {
  is_->read(reinterpret_cast<char*>(out),
            static_cast<std::streamsize>(n));
  if (!is_->good() &&
      !(is_->eof() && static_cast<size_t>(is_->gcount()) == n)) {
    return Status::Internal("truncated or unreadable checkpoint");
  }
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* v) { return ReadBytes(v, sizeof(*v)); }
Status BinaryReader::ReadU64(uint64_t* v) { return ReadBytes(v, sizeof(*v)); }
Status BinaryReader::ReadI32(int32_t* v) { return ReadBytes(v, sizeof(*v)); }
Status BinaryReader::ReadDouble(double* v) { return ReadBytes(v, sizeof(*v)); }

Status BinaryReader::ReadBool(bool* v) {
  uint8_t byte = 0;
  DBG4ETH_RETURN_NOT_OK(ReadBytes(&byte, 1));
  *v = byte != 0;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s) {
  uint32_t size = 0;
  DBG4ETH_RETURN_NOT_OK(ReadU32(&size));
  if (size > kMaxVectorSize) {
    return Status::Internal("corrupt checkpoint: oversized string");
  }
  s->resize(size);
  return ReadBytes(s->data(), size);
}

Status BinaryReader::ReadDoubleVector(std::vector<double>* v) {
  uint32_t size = 0;
  DBG4ETH_RETURN_NOT_OK(ReadU32(&size));
  if (size > kMaxVectorSize) {
    return Status::Internal("corrupt checkpoint: oversized vector");
  }
  v->resize(size);
  return ReadBytes(v->data(), size * sizeof(double));
}

Status BinaryReader::ReadIntVector(std::vector<int>* v) {
  uint32_t size = 0;
  DBG4ETH_RETURN_NOT_OK(ReadU32(&size));
  if (size > kMaxVectorSize) {
    return Status::Internal("corrupt checkpoint: oversized vector");
  }
  v->resize(size);
  for (uint32_t i = 0; i < size; ++i) {
    int32_t x = 0;
    DBG4ETH_RETURN_NOT_OK(ReadI32(&x));
    (*v)[i] = x;
  }
  return Status::OK();
}

Status BinaryReader::ExpectTag(const std::string& tag) {
  std::string found;
  DBG4ETH_RETURN_NOT_OK(ReadString(&found));
  if (found != tag) {
    return Status::Internal("checkpoint section mismatch: expected '" + tag +
                            "', found '" + found + "'");
  }
  return Status::OK();
}

}  // namespace dbg4eth
