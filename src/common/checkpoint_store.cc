#include "common/checkpoint_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace dbg4eth {

namespace fs = std::filesystem;

namespace {

constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".bin";

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Sequence number encoded in a checkpoint file name, or 0 when the name
/// is not of the `ckpt-<seq>.bin` form.
uint64_t SequenceOf(const std::string& filename) {
  const size_t prefix_len = sizeof(kCheckpointPrefix) - 1;
  const size_t suffix_len = sizeof(kCheckpointSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return 0;
  if (filename.compare(0, prefix_len, kCheckpointPrefix) != 0) return 0;
  if (filename.compare(filename.size() - suffix_len, suffix_len,
                       kCheckpointSuffix) != 0) {
    return 0;
  }
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

/// fsync an already-open descriptor path; best-effort on directories
/// (some filesystems reject directory fsync — not fatal).
Status SyncPath(const std::string& path, bool is_directory) {
  const int fd = ::open(path.c_str(), is_directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) {
    if (is_directory) return Status::OK();
    return Status::Internal("open for fsync failed: " + path + ": " +
                            std::strerror(errno));
  }
  static obs::Histogram* fsync_hist =
      obs::MetricsRegistry::Global()->HistogramAt(
          "ckpt_fsync_us", "fsync wall time per checkpoint file/directory");
  obs::ScopedTimer fsync_timer(fsync_hist);
  const int rc = ::fsync(fd);
  fsync_timer.Stop();
  ::close(fd);
  if (rc != 0 && !is_directory) {
    return Status::Internal("fsync failed: " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Status WriteFramedCheckpoint(std::ostream* os, const std::string& payload) {
  DBG4ETH_FAIL_POINT("ckpt.write");
  if (payload.size() > kMaxCheckpointPayload) {
    return Status::InvalidArgument("checkpoint payload exceeds 1 GiB");
  }
  BinaryWriter writer(os);
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointFrameVersion);
  writer.WriteU64(payload.size());
  os->write(payload.data(), static_cast<std::streamsize>(payload.size()));
  writer.WriteU32(Crc32(payload.data(), payload.size()));
  if (!os->good()) return Status::Internal("checkpoint frame write failed");
  return Status::OK();
}

Result<std::string> ReadFramedCheckpoint(std::istream* is) {
  DBG4ETH_FAIL_POINT("ckpt.read");
  BinaryReader reader(is);
  uint32_t magic = 0;
  if (!reader.ReadU32(&magic).ok()) {
    return Status::DataLoss("checkpoint shorter than the frame magic");
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument(
        "stream is not a framed checkpoint (bad magic)");
  }
  uint32_t version = 0;
  uint64_t length = 0;
  if (!reader.ReadU32(&version).ok() || !reader.ReadU64(&length).ok()) {
    return Status::DataLoss("truncated checkpoint frame header");
  }
  if (version != kCheckpointFrameVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint frame version %u", version));
  }
  if (length > kMaxCheckpointPayload) {
    return Status::DataLoss(
        "corrupt checkpoint frame: implausible payload length");
  }
  std::string payload(length, '\0');
  is->read(payload.data(), static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(is->gcount()) != length) {
    return Status::DataLoss(StrFormat(
        "truncated checkpoint payload: expected %llu bytes, got %llu",
        static_cast<unsigned long long>(length),
        static_cast<unsigned long long>(is->gcount())));
  }
  uint32_t stored_crc = 0;
  if (!reader.ReadU32(&stored_crc).ok()) {
    return Status::DataLoss("checkpoint frame is missing its CRC trailer");
  }
  const uint32_t computed = Crc32(payload.data(), payload.size());
  if (computed != stored_crc) {
    return Status::DataLoss(StrFormat(
        "checkpoint CRC mismatch: stored %08x, computed %08x", stored_crc,
        computed));
  }
  return payload;
}

bool LooksFramed(std::istream* is) {
  const std::istream::pos_type start = is->tellg();
  uint32_t magic = 0;
  is->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  const bool got4 = is->gcount() == sizeof(magic);
  is->clear();
  is->seekg(start);
  return got4 && magic == kCheckpointMagic;
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const CheckpointStoreConfig& config) {
  if (config.directory.empty()) {
    return Status::InvalidArgument("checkpoint directory must not be empty");
  }
  if (config.retain < 1) {
    return Status::InvalidArgument("checkpoint retention must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(config.directory, ec);
  if (ec) {
    return Status::Internal("cannot create checkpoint directory " +
                            config.directory + ": " + ec.message());
  }
  std::unique_ptr<CheckpointStore> store(new CheckpointStore(config));
  uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(config.directory, ec)) {
    max_seq = std::max(max_seq, SequenceOf(entry.path().filename().string()));
  }
  store->next_sequence_ = max_seq + 1;
  return store;
}

std::vector<CheckpointStore::Generation> CheckpointStore::ListGenerations()
    const {
  std::vector<Generation> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    const uint64_t seq = SequenceOf(entry.path().filename().string());
    if (seq > 0) found.push_back({seq, entry.path().string()});
  }
  std::sort(found.begin(), found.end(), [](const auto& a, const auto& b) {
    return a.sequence > b.sequence;
  });
  return found;
}

uint64_t CheckpointStore::LatestGeneration() const {
  uint64_t latest = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(config_.directory, ec)) {
    latest = std::max(latest, SequenceOf(entry.path().filename().string()));
  }
  return latest;
}

std::vector<std::string> CheckpointStore::ListCheckpoints() const {
  std::vector<Generation> found = ListGenerations();
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (Generation& gen : found) paths.push_back(std::move(gen.path));
  return paths;
}

Result<std::string> CheckpointStore::Save(
    const std::function<Status(std::ostream*)>& writer) {
  static obs::Histogram* write_hist =
      obs::MetricsRegistry::Global()->HistogramAt(
          "ckpt_write_us",
          "End-to-end checkpoint save wall time (serialize, write, fsync, "
          "rename, prune)");
  static obs::Counter* saves_total = obs::MetricsRegistry::Global()->CounterAt(
      "ckpt_saves_total", "Checkpoint generations written durably");
  obs::ScopedTimer write_timer(write_hist);
  std::ostringstream payload_stream;
  DBG4ETH_RETURN_NOT_OK(writer(&payload_stream));
  const std::string payload = payload_stream.str();

  const uint64_t seq = next_sequence_;
  const std::string name =
      StrFormat("%s%08llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(seq), kCheckpointSuffix);
  const fs::path final_path = fs::path(config_.directory) / name;
  const fs::path tmp_path = final_path.string() + ".tmp";

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + tmp_path.string());
    }
    DBG4ETH_RETURN_NOT_OK(WriteFramedCheckpoint(&out, payload));
    out.flush();
    if (!out.good()) {
      return Status::Internal("write to " + tmp_path.string() + " failed");
    }
  }
  if (config_.sync) {
    DBG4ETH_RETURN_NOT_OK(SyncPath(tmp_path.string(), /*is_directory=*/false));
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return Status::Internal("rename to " + final_path.string() +
                            " failed: " + ec.message());
  }
  if (config_.sync) {
    (void)SyncPath(config_.directory, /*is_directory=*/true);
  }
  next_sequence_ = seq + 1;

  // Prune generations beyond the retention window (newest first).
  const std::vector<std::string> all = ListCheckpoints();
  for (size_t i = static_cast<size_t>(config_.retain); i < all.size(); ++i) {
    fs::remove(all[i], ec);
  }
  saves_total->Inc();
  return final_path.string();
}

Result<std::string> CheckpointStore::LoadLatestValid() const {
  DBG4ETH_ASSIGN_OR_RETURN(LoadedCheckpoint loaded,
                           LoadLatestValidGeneration());
  return std::move(loaded.payload);
}

Result<CheckpointStore::LoadedCheckpoint>
CheckpointStore::LoadLatestValidGeneration() const {
  static obs::Histogram* walk_hist =
      obs::MetricsRegistry::Global()->HistogramAt(
          "ckpt_recovery_walk_us",
          "Wall time of the newest-first recovery walk in LoadLatestValid");
  static obs::Counter* corrupt_total =
      obs::MetricsRegistry::Global()->CounterAt(
          "ckpt_corrupt_generations_total",
          "Checkpoint generations skipped during recovery as unreadable or "
          "corrupt");
  obs::ScopedTimer walk_timer(walk_hist);
  for (const Generation& gen : ListGenerations()) {
    std::ifstream in(gen.path, std::ios::binary);
    if (!in) {
      corrupt_total->Inc();
      DBG4ETH_LOG(Warning) << "checkpoint " << gen.path
                           << " unreadable; trying an older one";
      continue;
    }
    Result<std::string> payload = ReadFramedCheckpoint(&in);
    if (payload.ok()) {
      return LoadedCheckpoint{gen.sequence, gen.path,
                              std::move(payload).ValueOrDie()};
    }
    corrupt_total->Inc();
    DBG4ETH_LOG(Warning) << "checkpoint " << gen.path << " skipped: "
                         << payload.status().ToString();
  }
  return Status::NotFound("no valid checkpoint in " + config_.directory);
}

}  // namespace dbg4eth
