#include "common/json_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace dbg4eth {
namespace json {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(s, &out);
  return out;
}

std::string JsonNumberRoundTrip(double v) {
  if (!std::isfinite(v)) return "null";
  for (int precision = 15; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  // Unreachable for IEEE-754 doubles (%.17g always round-trips), but keep
  // a deterministic fallback.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // The Key already placed the comma and the colon.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) *out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  *out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  *out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  *out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  *out_ += ']';
}

void JsonWriter::Key(const std::string& name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) *out_ += ',';
    has_element_.back() = true;
  }
  *out_ += '"';
  AppendJsonEscaped(name, out_);
  *out_ += "\": ";
  after_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  *out_ += '"';
  AppendJsonEscaped(value, out_);
  *out_ += '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    *out_ += "null";
    return;
  }
  *out_ += StrFormat("%g", value);
}

void JsonWriter::NumberRoundTrip(double value) {
  BeforeValue();
  *out_ += JsonNumberRoundTrip(value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  *out_ += StrFormat("%lld", static_cast<long long>(value));
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  *out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  *out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  *out_ += "null";
}

void JsonWriter::Raw(const std::string& value) {
  BeforeValue();
  *out_ += value;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : members) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (kind != Kind::kNumber) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  const double v = number_value;
  // int64 bounds that are exactly representable as doubles.
  if (!(v >= -9223372036854775808.0 && v < 9223372036854775808.0) ||
      v != std::floor(v)) {
    return Status::InvalidArgument(
        StrFormat("JSON number %g is not an exact int64", v));
  }
  return static_cast<int64_t>(v);
}

namespace {

/// Recursive-descent parser over a raw byte range.
class Parser {
 public:
  Parser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    DBG4ETH_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, why.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      DBG4ETH_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      DBG4ETH_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      if (out->Find(key) == nullptr) {
        out->members.emplace_back(std::move(key), std::move(value));
      }
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      JsonValue value;
      DBG4ETH_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control byte in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by any request body this repo produces; a lone
          // surrogate encodes as its raw 3-byte sequence).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const size_t digits_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return Fail("expected a value");
    }
    // JSON forbids leading zeros: 0, 0.5 and 0e1 are fine, 01 is not.
    if (text_[digits_start] == '0' && pos_ - digits_start > 1) {
      return Fail("leading zeros are not allowed");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return Fail("digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return Fail("digits required in exponent");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = std::strtod(text_.c_str() + start, nullptr);
    return Status::OK();
  }

  const std::string& text_;
  const int max_depth_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text, int max_depth) {
  return Parser(text, max_depth).ParseDocument();
}

}  // namespace json
}  // namespace dbg4eth
