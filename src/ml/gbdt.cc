#include "ml/gbdt.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace ml {

GbdtClassifier::GbdtClassifier(const GbdtConfig& config,
                               std::string display_name)
    : config_(config), name_(std::move(display_name)) {}

GbdtClassifier GbdtClassifier::XgboostStyle(GbdtConfig config) {
  config.tree.leaf_wise = false;
  return GbdtClassifier(config, "xgboost");
}

Status GbdtClassifier::Train(const Matrix& x, const std::vector<int>& y) {
  if (static_cast<size_t>(x.rows()) != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  trees_.clear();

  // Prior log-odds.
  double positives = 0.0;
  for (int label : y) positives += label;
  const double p0 =
      Clamp(positives / y.size(), 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(p0 / (1.0 - p0));

  const int n = x.rows();
  std::vector<double> score(n, base_score_);
  std::vector<double> grad(n), hess(n);
  std::vector<int> all_samples(n);
  for (int i = 0; i < n; ++i) all_samples[i] = i;

  double prev_loss = 1e300;
  for (int t = 0; t < config_.num_trees; ++t) {
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
      const double p = Sigmoid(score[i]);
      grad[i] = p - y[i];
      hess[i] = std::max(p * (1.0 - p), 1e-6);
      loss += -(y[i] * std::log(std::max(p, 1e-12)) +
                (1 - y[i]) * std::log(std::max(1.0 - p, 1e-12)));
    }
    loss /= n;
    if (prev_loss - loss < config_.early_stop_tol && t > 0) break;
    prev_loss = loss;

    RegressionTree tree;
    tree.Train(x, grad, hess, all_samples, config_.tree);
    for (int i = 0; i < n; ++i) {
      score[i] += config_.learning_rate * tree.Predict(x.RowPtr(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GbdtClassifier::PredictScore(const double* row) const {
  double score = base_score_;
  for (const RegressionTree& tree : trees_) {
    score += config_.learning_rate * tree.Predict(row);
  }
  return score;
}

double GbdtClassifier::PredictProba(const double* row) const {
  return Sigmoid(PredictScore(row));
}

void GbdtClassifier::Save(BinaryWriter* writer) const {
  writer->WriteString("gbdt");
  writer->WriteString(name_);
  writer->WriteDouble(config_.learning_rate);
  writer->WriteDouble(base_score_);
  writer->WriteU32(static_cast<uint32_t>(trees_.size()));
  for (const RegressionTree& tree : trees_) tree.Save(writer);
}

Status GbdtClassifier::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("gbdt"));
  DBG4ETH_RETURN_NOT_OK(reader->ReadString(&name_));
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&config_.learning_rate));
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&base_score_));
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  trees_.assign(count, RegressionTree{});
  for (RegressionTree& tree : trees_) {
    DBG4ETH_RETURN_NOT_OK(tree.Load(reader));
  }
  return Status::OK();
}

}  // namespace ml
}  // namespace dbg4eth
