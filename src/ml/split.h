#ifndef DBG4ETH_ML_SPLIT_H_
#define DBG4ETH_ML_SPLIT_H_

#include <vector>

#include "common/rng.h"

namespace dbg4eth {
namespace ml {

/// Index sets of a train/validation/test partition.
struct SplitIndices {
  std::vector<int> train;
  std::vector<int> val;
  std::vector<int> test;
};

/// Stratified split: each class is shuffled and divided with the given
/// fractions (test receives the remainder). Fractions must be in (0, 1)
/// and sum to less than 1.
SplitIndices StratifiedSplit(const std::vector<int>& labels,
                             double train_fraction, double val_fraction,
                             Rng* rng);

/// Stratified k-fold assignment: fold id per sample in [0, k).
std::vector<int> StratifiedFolds(const std::vector<int>& labels, int k,
                                 Rng* rng);

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_SPLIT_H_
