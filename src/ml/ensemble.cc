#include "ml/ensemble.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace ml {

RandomForestClassifier::RandomForestClassifier(
    const RandomForestConfig& config)
    : config_(config) {}

Status RandomForestClassifier::Train(const Matrix& x,
                                     const std::vector<int>& y) {
  if (static_cast<size_t>(x.rows()) != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training data");
  }
  trees_.clear();
  Rng rng(config_.seed);
  const int n = x.rows();
  int mtry = config_.features_per_split;
  if (mtry <= 0) {
    mtry = std::max(1, static_cast<int>(std::sqrt(
                           static_cast<double>(x.cols()))));
  }
  for (int t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<int> samples(n);
    for (int i = 0; i < n; ++i) samples[i] = rng.UniformInt(n);
    ClassificationTree tree;
    tree.Train(x, y, samples, config_.tree, mtry, &rng);
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForestClassifier::PredictProba(const double* row) const {
  DBG4ETH_CHECK(!trees_.empty());
  double sum = 0.0;
  for (const ClassificationTree& tree : trees_) {
    sum += tree.PredictProba(row);
  }
  return sum / trees_.size();
}

AdaBoostClassifier::AdaBoostClassifier(const AdaBoostConfig& config)
    : config_(config) {}

Status AdaBoostClassifier::Train(const Matrix& x, const std::vector<int>& y) {
  if (static_cast<size_t>(x.rows()) != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training data");
  }
  stumps_.clear();
  const int n = x.rows();
  const int d = x.cols();
  std::vector<double> w(n, 1.0 / n);

  for (int round = 0; round < config_.num_stumps; ++round) {
    // Exhaustive weighted stump search over midpoints of sorted values.
    Stump best;
    double best_err = 1e300;
    for (int f = 0; f < d; ++f) {
      std::vector<std::pair<double, int>> vals(n);
      for (int i = 0; i < n; ++i) vals[i] = {x.At(i, f), i};
      std::sort(vals.begin(), vals.end());
      // err(threshold, polarity +1) = sum_{x<=thr, y=1} w + sum_{x>thr,y=0} w
      double w_pos_left = 0.0, w_neg_left = 0.0;
      double w_pos_total = 0.0, w_neg_total = 0.0;
      for (int i = 0; i < n; ++i) {
        (y[i] == 1 ? w_pos_total : w_neg_total) += w[i];
      }
      for (int i = 0; i + 1 < n; ++i) {
        const int idx = vals[i].second;
        (y[idx] == 1 ? w_pos_left : w_neg_left) += w[idx];
        if (vals[i].first == vals[i + 1].first) continue;
        const double thr = (vals[i].first + vals[i + 1].first) / 2.0;
        const double err_plus = w_pos_left + (w_neg_total - w_neg_left);
        const double err_minus = 1.0 - err_plus;
        if (err_plus < best_err) {
          best_err = err_plus;
          best = {f, thr, +1, 0.0};
        }
        if (err_minus < best_err) {
          best_err = err_minus;
          best = {f, thr, -1, 0.0};
        }
      }
    }
    best_err = Clamp(best_err, 1e-10, 1.0 - 1e-10);
    if (best_err >= 0.5) break;  // No weak learner better than chance.
    best.alpha = 0.5 * std::log((1.0 - best_err) / best_err);
    // Reweight.
    double w_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const int raw = x.At(i, best.feature) > best.threshold ? 1 : 0;
      const int pred = best.polarity > 0 ? raw : 1 - raw;
      const int yi = y[i];
      w[i] *= std::exp(pred == yi ? -best.alpha : best.alpha);
      w_sum += w[i];
    }
    for (double& wi : w) wi /= w_sum;
    stumps_.push_back(best);
    if (best_err < 1e-9) break;  // Perfect stump.
  }
  if (stumps_.empty()) {
    // Degenerate data: fall back to a constant majority stump.
    double positives = 0.0;
    for (int label : y) positives += label;
    Stump constant;
    constant.feature = 0;
    constant.threshold = -1e300;  // Always "value > threshold".
    constant.polarity = positives * 2 >= n ? 1 : -1;
    constant.alpha = 1.0;
    stumps_.push_back(constant);
  }
  return Status::OK();
}

void RandomForestClassifier::Save(BinaryWriter* writer) const {
  writer->WriteString("random_forest");
  writer->WriteU32(static_cast<uint32_t>(trees_.size()));
  for (const ClassificationTree& tree : trees_) tree.Save(writer);
}

Status RandomForestClassifier::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("random_forest"));
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  trees_.assign(count, ClassificationTree{});
  for (ClassificationTree& tree : trees_) {
    DBG4ETH_RETURN_NOT_OK(tree.Load(reader));
  }
  return Status::OK();
}

void AdaBoostClassifier::Save(BinaryWriter* writer) const {
  writer->WriteString("adaboost");
  writer->WriteU32(static_cast<uint32_t>(stumps_.size()));
  for (const Stump& s : stumps_) {
    writer->WriteI32(s.feature);
    writer->WriteDouble(s.threshold);
    writer->WriteI32(s.polarity);
    writer->WriteDouble(s.alpha);
  }
}

Status AdaBoostClassifier::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("adaboost"));
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  stumps_.assign(count, Stump{});
  for (Stump& s : stumps_) {
    int32_t v = 0;
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    s.feature = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&s.threshold));
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    s.polarity = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&s.alpha));
  }
  return Status::OK();
}

double AdaBoostClassifier::PredictProba(const double* row) const {
  DBG4ETH_CHECK(!stumps_.empty());
  double margin = 0.0;
  double alpha_total = 0.0;
  for (const Stump& s : stumps_) {
    const int raw = row[s.feature] > s.threshold ? 1 : 0;
    const int pred = s.polarity > 0 ? raw : 1 - raw;
    margin += s.alpha * (pred == 1 ? 1.0 : -1.0);
    alpha_total += s.alpha;
  }
  // Squash the normalized margin into a probability.
  return Sigmoid(2.0 * margin / std::max(alpha_total, 1e-12));
}

}  // namespace ml
}  // namespace dbg4eth
