#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace dbg4eth {
namespace ml {

namespace {

/// Candidate split of one leaf, found via feature histograms.
struct SplitCandidate {
  double gain = -1.0;
  int feature = -1;
  double threshold = 0.0;
};

/// Equal-width histogram split search on (grad, hess) sums. Returns the
/// best candidate for the given sample set.
SplitCandidate FindBestSplit(const Matrix& x, const std::vector<double>& grad,
                             const std::vector<double>& hess,
                             const std::vector<int>& samples,
                             const TreeConfig& config,
                             const std::vector<int>* feature_subset) {
  SplitCandidate best;
  double g_total = 0.0, h_total = 0.0;
  for (int s : samples) {
    g_total += grad[s];
    h_total += hess[s];
  }
  const double parent_score = g_total * g_total / (h_total + config.lambda);

  const int num_features =
      feature_subset ? static_cast<int>(feature_subset->size()) : x.cols();
  std::vector<double> g_bins(config.max_bins);
  std::vector<double> h_bins(config.max_bins);
  std::vector<int> n_bins(config.max_bins);
  for (int fi = 0; fi < num_features; ++fi) {
    const int f = feature_subset ? (*feature_subset)[fi] : fi;
    double lo = 1e300, hi = -1e300;
    for (int s : samples) {
      lo = std::min(lo, x.At(s, f));
      hi = std::max(hi, x.At(s, f));
    }
    if (hi - lo < 1e-12) continue;  // Constant feature in this leaf.
    const double width = (hi - lo) / config.max_bins;
    std::fill(g_bins.begin(), g_bins.end(), 0.0);
    std::fill(h_bins.begin(), h_bins.end(), 0.0);
    std::fill(n_bins.begin(), n_bins.end(), 0);
    for (int s : samples) {
      int bin = static_cast<int>((x.At(s, f) - lo) / width);
      bin = std::min(bin, config.max_bins - 1);
      g_bins[bin] += grad[s];
      h_bins[bin] += hess[s];
      ++n_bins[bin];
    }
    double g_left = 0.0, h_left = 0.0;
    int n_left = 0;
    for (int b = 0; b + 1 < config.max_bins; ++b) {
      g_left += g_bins[b];
      h_left += h_bins[b];
      n_left += n_bins[b];
      const int n_right = static_cast<int>(samples.size()) - n_left;
      if (n_left < config.min_samples_leaf ||
          n_right < config.min_samples_leaf) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      const double gain =
          g_left * g_left / (h_left + config.lambda) +
          g_right * g_right / (h_right + config.lambda) - parent_score;
      if (gain > best.gain) {
        best.gain = gain;
        best.feature = f;
        best.threshold = lo + width * (b + 1);
      }
    }
  }
  return best;
}

double LeafValue(const std::vector<double>& grad,
                 const std::vector<double>& hess,
                 const std::vector<int>& samples, double lambda) {
  double g = 0.0, h = 0.0;
  for (int s : samples) {
    g += grad[s];
    h += hess[s];
  }
  return -g / (h + lambda);
}

}  // namespace

void RegressionTree::Train(const Matrix& x, const std::vector<double>& grad,
                           const std::vector<double>& hess,
                           const std::vector<int>& samples,
                           const TreeConfig& config) {
  nodes_.clear();
  DBG4ETH_CHECK(!samples.empty());

  struct LeafState {
    int node_id;
    std::vector<int> samples;
    int depth;
    SplitCandidate split;
  };
  nodes_.push_back(Node{});
  nodes_[0].value = LeafValue(grad, hess, samples, config.lambda);

  auto evaluate = [&](LeafState* leaf) {
    leaf->split = (leaf->depth < config.max_depth &&
                   static_cast<int>(leaf->samples.size()) >=
                       2 * config.min_samples_leaf)
                      ? FindBestSplit(x, grad, hess, leaf->samples, config,
                                      nullptr)
                      : SplitCandidate{};
  };

  std::vector<LeafState> leaves;
  leaves.push_back({0, samples, 0, {}});
  evaluate(&leaves[0]);

  int num_leaves = 1;
  while (num_leaves < config.max_leaves) {
    // Leaf-wise (LightGBM) growth splits the highest-gain leaf next;
    // level-wise (XGBoost-style) growth expands the shallowest splittable
    // leaf first, i.e. breadth-first.
    int best_leaf = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (leaves[i].split.gain <= config.min_gain) continue;
      if (best_leaf < 0) {
        best_leaf = static_cast<int>(i);
        continue;
      }
      const bool better =
          config.leaf_wise
              ? leaves[i].split.gain > leaves[best_leaf].split.gain
              : leaves[i].depth < leaves[best_leaf].depth;
      if (better) best_leaf = static_cast<int>(i);
    }
    if (best_leaf < 0) break;

    LeafState leaf = std::move(leaves[best_leaf]);
    leaves.erase(leaves.begin() + best_leaf);

    std::vector<int> left_samples, right_samples;
    for (int s : leaf.samples) {
      (x.At(s, leaf.split.feature) <= leaf.split.threshold ? left_samples
                                                           : right_samples)
          .push_back(s);
    }
    const int left_id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    const int right_id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[leaf.node_id].feature = leaf.split.feature;
    nodes_[leaf.node_id].threshold = leaf.split.threshold;
    nodes_[leaf.node_id].left = left_id;
    nodes_[leaf.node_id].right = right_id;
    nodes_[left_id].value = LeafValue(grad, hess, left_samples, config.lambda);
    nodes_[right_id].value =
        LeafValue(grad, hess, right_samples, config.lambda);

    LeafState left{left_id, std::move(left_samples), leaf.depth + 1, {}};
    LeafState right{right_id, std::move(right_samples), leaf.depth + 1, {}};
    evaluate(&left);
    evaluate(&right);
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
    ++num_leaves;
  }
}

double RegressionTree::Predict(const double* row) const {
  DBG4ETH_CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

int RegressionTree::num_leaves() const {
  int count = 0;
  for (const Node& n : nodes_) count += n.feature < 0 ? 1 : 0;
  return count;
}

int ClassificationTree::Build(const Matrix& x, const std::vector<int>& y,
                              std::vector<int> samples, int depth,
                              const TreeConfig& config,
                              int features_per_split, Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  double positives = 0.0;
  for (int s : samples) positives += y[s];
  const double n = static_cast<double>(samples.size());
  nodes_[node_id].prob = (positives + 1.0) / (n + 2.0);

  if (depth >= config.max_depth ||
      static_cast<int>(samples.size()) < 2 * config.min_samples_leaf ||
      positives == 0.0 || positives == n) {
    return node_id;
  }

  // Random feature subset (random forest) or all features.
  std::vector<int> subset;
  const std::vector<int>* subset_ptr = nullptr;
  if (features_per_split > 0 && features_per_split < x.cols()) {
    DBG4ETH_CHECK(rng != nullptr);
    subset = rng->SampleWithoutReplacement(x.cols(), features_per_split);
    subset_ptr = &subset;
  }

  // Gini-gain split via the gradient-split machinery: for binary labels,
  // using grad = y - p_parent and hess = 1 reduces to variance splitting,
  // which is equivalent to Gini impurity reduction up to scale.
  std::vector<double> grad(y.size(), 0.0);
  std::vector<double> hess(y.size(), 1.0);
  const double p_parent = positives / n;
  for (int s : samples) grad[s] = y[s] - p_parent;
  TreeConfig split_config = config;
  split_config.lambda = 1e-9;
  const SplitCandidate split =
      FindBestSplit(x, grad, hess, samples, split_config, subset_ptr);
  if (split.gain <= config.min_gain) return node_id;

  std::vector<int> left_samples, right_samples;
  for (int s : samples) {
    (x.At(s, split.feature) <= split.threshold ? left_samples : right_samples)
        .push_back(s);
  }
  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  const int left = Build(x, y, std::move(left_samples), depth + 1, config,
                         features_per_split, rng);
  const int right = Build(x, y, std::move(right_samples), depth + 1, config,
                          features_per_split, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void ClassificationTree::Train(const Matrix& x, const std::vector<int>& y,
                               const std::vector<int>& samples,
                               const TreeConfig& config,
                               int features_per_split, Rng* rng) {
  nodes_.clear();
  DBG4ETH_CHECK(!samples.empty());
  Build(x, y, samples, 0, config, features_per_split, rng);
}

double ClassificationTree::PredictProba(const double* row) const {
  DBG4ETH_CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = row[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].prob;
}

void RegressionTree::Save(BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    writer->WriteI32(n.feature);
    writer->WriteDouble(n.threshold);
    writer->WriteI32(n.left);
    writer->WriteI32(n.right);
    writer->WriteDouble(n.value);
  }
}

Status RegressionTree::Load(BinaryReader* reader) {
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    int32_t v = 0;
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.feature = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&n.threshold));
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.left = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.right = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&n.value));
  }
  return Status::OK();
}

void ClassificationTree::Save(BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    writer->WriteI32(n.feature);
    writer->WriteDouble(n.threshold);
    writer->WriteI32(n.left);
    writer->WriteI32(n.right);
    writer->WriteDouble(n.prob);
  }
}

Status ClassificationTree::Load(BinaryReader* reader) {
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  nodes_.assign(count, Node{});
  for (Node& n : nodes_) {
    int32_t v = 0;
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.feature = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&n.threshold));
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.left = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&v));
    n.right = v;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&n.prob));
  }
  return Status::OK();
}

}  // namespace ml
}  // namespace dbg4eth
