#ifndef DBG4ETH_ML_CLASSIFIER_H_
#define DBG4ETH_ML_CLASSIFIER_H_

#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace ml {

/// \brief Common interface of the classifier heads compared in the paper's
/// Fig. 7 (LightGBM, MLP, random forest, AdaBoost, XGBoost).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// X: n x d feature rows, y: binary labels.
  virtual Status Train(const Matrix& x, const std::vector<int>& y) = 0;

  /// P(y = 1) for one feature row of the training dimensionality.
  virtual double PredictProba(const double* row) const = 0;

  std::vector<double> PredictProbaAll(const Matrix& x) const {
    std::vector<double> out;
    out.reserve(x.rows());
    for (int r = 0; r < x.rows(); ++r) out.push_back(PredictProba(x.RowPtr(r)));
    return out;
  }

  std::vector<int> PredictAll(const Matrix& x) const {
    std::vector<int> out;
    out.reserve(x.rows());
    for (int r = 0; r < x.rows(); ++r) {
      out.push_back(PredictProba(x.RowPtr(r)) > 0.5 ? 1 : 0);
    }
    return out;
  }

  virtual std::string name() const = 0;

  /// Checkpointing of the trained state.
  virtual void Save(BinaryWriter* writer) const = 0;
  virtual Status Load(BinaryReader* reader) = 0;
};

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_CLASSIFIER_H_
