#ifndef DBG4ETH_ML_METRICS_H_
#define DBG4ETH_ML_METRICS_H_

#include <vector>

namespace dbg4eth {
namespace ml {

/// \brief Macro-averaged binary classification metrics (the paper reports
/// macro precision/recall/F1 plus plain accuracy; e.g. a constant predictor
/// scores P=25, R=50, F1=33.33 on a balanced set, matching Table III's
/// degenerate rows).
struct BinaryMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;
};

BinaryMetrics ComputeBinaryMetrics(const std::vector<int>& y_true,
                                   const std::vector<int>& y_pred);

/// 2x2 confusion counts.
struct ConfusionMatrix {
  int tp = 0;
  int fp = 0;
  int tn = 0;
  int fn = 0;
};

ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred);

/// One operating point of a ROC curve.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// ROC curve over all score thresholds (sorted by ascending FPR).
std::vector<RocPoint> RocCurve(const std::vector<int>& y_true,
                               const std::vector<double>& scores);

/// Area under the ROC curve (rank statistic; ties handled).
double RocAuc(const std::vector<int>& y_true,
              const std::vector<double>& scores);

/// Thresholds probabilities at 0.5.
std::vector<int> ThresholdPredictions(const std::vector<double>& probs,
                                      double threshold = 0.5);

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_METRICS_H_
