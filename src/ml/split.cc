#include "ml/split.h"

#include <algorithm>

#include "common/logging.h"

namespace dbg4eth {
namespace ml {

SplitIndices StratifiedSplit(const std::vector<int>& labels,
                             double train_fraction, double val_fraction,
                             Rng* rng) {
  DBG4ETH_CHECK_GT(train_fraction, 0.0);
  DBG4ETH_CHECK_GE(val_fraction, 0.0);
  DBG4ETH_CHECK_LT(train_fraction + val_fraction, 1.0 + 1e-12);

  // Group indices by class label.
  std::vector<int> classes;
  for (int y : labels) {
    if (std::find(classes.begin(), classes.end(), y) == classes.end()) {
      classes.push_back(y);
    }
  }
  std::sort(classes.begin(), classes.end());

  SplitIndices out;
  for (int cls : classes) {
    std::vector<int> members;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) members.push_back(static_cast<int>(i));
    }
    rng->Shuffle(&members);
    const int n = static_cast<int>(members.size());
    const int n_train = std::max(1, static_cast<int>(n * train_fraction));
    const int n_val = static_cast<int>(n * val_fraction);
    for (int i = 0; i < n; ++i) {
      if (i < n_train) {
        out.train.push_back(members[i]);
      } else if (i < n_train + n_val) {
        out.val.push_back(members[i]);
      } else {
        out.test.push_back(members[i]);
      }
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.val.begin(), out.val.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

std::vector<int> StratifiedFolds(const std::vector<int>& labels, int k,
                                 Rng* rng) {
  DBG4ETH_CHECK_GT(k, 1);
  std::vector<int> folds(labels.size(), 0);
  std::vector<int> classes;
  for (int y : labels) {
    if (std::find(classes.begin(), classes.end(), y) == classes.end()) {
      classes.push_back(y);
    }
  }
  for (int cls : classes) {
    std::vector<int> members;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) members.push_back(static_cast<int>(i));
    }
    rng->Shuffle(&members);
    for (size_t i = 0; i < members.size(); ++i) {
      folds[members[i]] = static_cast<int>(i % k);
    }
  }
  return folds;
}

}  // namespace ml
}  // namespace dbg4eth
