#ifndef DBG4ETH_ML_MLP_H_
#define DBG4ETH_ML_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "gnn/linear.h"
#include "ml/classifier.h"

namespace dbg4eth {
namespace ml {

/// \brief Multi-layer perceptron classifier head (full-batch Adam on the
/// softmax cross-entropy). With empty `hidden_dims` this is logistic
/// regression.
struct MlpConfig {
  std::vector<int> hidden_dims = {32};
  int epochs = 300;
  double learning_rate = 0.01;
  double weight_decay = 1e-4;
  uint64_t seed = 23;
};

class MlpClassifier : public BinaryClassifier {
 public:
  explicit MlpClassifier(const MlpConfig& config = MlpConfig());

  Status Train(const Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const double* row) const override;
  std::string name() const override { return "mlp"; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  ag::Tensor ForwardLogits(const ag::Tensor& x) const;

  MlpConfig config_;
  int input_dim_ = 0;
  std::vector<std::unique_ptr<gnn::Linear>> layers_;
};

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_MLP_H_
