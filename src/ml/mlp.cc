#include "ml/mlp.h"

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/serialize.h"

namespace dbg4eth {
namespace ml {

MlpClassifier::MlpClassifier(const MlpConfig& config) : config_(config) {}

ag::Tensor MlpClassifier::ForwardLogits(const ag::Tensor& x) const {
  ag::Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

Status MlpClassifier::Train(const Matrix& x, const std::vector<int>& y) {
  if (static_cast<size_t>(x.rows()) != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("bad training data");
  }
  input_dim_ = x.cols();
  Rng rng(config_.seed);
  layers_.clear();
  int prev = input_dim_;
  for (int h : config_.hidden_dims) {
    layers_.push_back(std::make_unique<gnn::Linear>(prev, h, &rng));
    prev = h;
  }
  layers_.push_back(std::make_unique<gnn::Linear>(prev, 2, &rng));

  std::vector<ag::Tensor> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->Parameters()) params.push_back(p);
  }
  ag::Adam opt(params, config_.learning_rate, 0.9, 0.999, 1e-8,
               config_.weight_decay);
  ag::Tensor input = ag::Tensor::Constant(x);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    opt.ZeroGrad();
    ag::Tensor loss = ag::SoftmaxCrossEntropy(ForwardLogits(input), y);
    loss.Backward();
    opt.Step();
  }
  return Status::OK();
}

void MlpClassifier::Save(BinaryWriter* writer) const {
  writer->WriteString("mlp");
  writer->WriteI32(input_dim_);
  writer->WriteIntVector(config_.hidden_dims);
  std::vector<ag::Tensor> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->Parameters()) params.push_back(p);
  }
  ag::WriteParameters(writer, params);
}

Status MlpClassifier::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("mlp"));
  int32_t input_dim = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&input_dim));
  DBG4ETH_RETURN_NOT_OK(reader->ReadIntVector(&config_.hidden_dims));
  input_dim_ = input_dim;
  // Rebuild the architecture, then overwrite the weights.
  Rng rng(config_.seed);
  layers_.clear();
  int prev = input_dim_;
  for (int h : config_.hidden_dims) {
    layers_.push_back(std::make_unique<gnn::Linear>(prev, h, &rng));
    prev = h;
  }
  layers_.push_back(std::make_unique<gnn::Linear>(prev, 2, &rng));
  std::vector<ag::Tensor> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->Parameters()) params.push_back(p);
  }
  return ag::ReadParameters(reader, &params);
}

double MlpClassifier::PredictProba(const double* row) const {
  Matrix m(1, input_dim_);
  for (int c = 0; c < input_dim_; ++c) m.At(0, c) = row[c];
  const Matrix logits = ForwardLogits(ag::Tensor::Constant(m)).value();
  const Matrix probs = ag::SoftmaxRowsValue(logits);
  return probs.At(0, 1);
}

}  // namespace ml
}  // namespace dbg4eth
