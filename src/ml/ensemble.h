#ifndef DBG4ETH_ML_ENSEMBLE_H_
#define DBG4ETH_ML_ENSEMBLE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/tree.h"

namespace dbg4eth {
namespace ml {

/// \brief Random forest (Breiman 2001): bagged Gini trees with per-split
/// random feature subsets; probability is the tree average.
struct RandomForestConfig {
  int num_trees = 50;
  TreeConfig tree;
  /// <= 0 uses sqrt(d).
  int features_per_split = 0;
  uint64_t seed = 17;
};

class RandomForestClassifier : public BinaryClassifier {
 public:
  explicit RandomForestClassifier(
      const RandomForestConfig& config = RandomForestConfig());

  Status Train(const Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const double* row) const override;
  std::string name() const override { return "random_forest"; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  RandomForestConfig config_;
  std::vector<ClassificationTree> trees_;
};

/// \brief AdaBoost (Freund & Schapire 1996) over depth-1 decision stumps.
struct AdaBoostConfig {
  int num_stumps = 60;
  uint64_t seed = 19;
};

class AdaBoostClassifier : public BinaryClassifier {
 public:
  explicit AdaBoostClassifier(const AdaBoostConfig& config = AdaBoostConfig());

  Status Train(const Matrix& x, const std::vector<int>& y) override;
  double PredictProba(const double* row) const override;
  std::string name() const override { return "adaboost"; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  struct Stump {
    int feature = 0;
    double threshold = 0.0;
    /// +1: predict 1 when value > threshold; -1: inverted.
    int polarity = 1;
    double alpha = 0.0;
  };
  AdaBoostConfig config_;
  std::vector<Stump> stumps_;
};

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_ENSEMBLE_H_
