#ifndef DBG4ETH_ML_TREE_H_
#define DBG4ETH_ML_TREE_H_

#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace ml {

/// \brief Shared tree-growth parameters.
struct TreeConfig {
  int max_leaves = 8;
  int max_depth = 6;
  int min_samples_leaf = 5;
  /// L2 regularization on leaf values (gradient trees).
  double lambda = 1.0;
  double min_gain = 1e-7;
  /// Histogram bins for split finding (the LightGBM trick).
  int max_bins = 32;
  /// true = best-first/leaf-wise growth (LightGBM); false = level-wise
  /// growth bounded by max_depth (XGBoost-style).
  bool leaf_wise = true;
};

/// \brief Histogram-based regression tree fitted to gradients/hessians
/// (one boosting round of a gradient-boosted decision tree).
class RegressionTree {
 public:
  /// Trains on the rows listed in `samples`. grad/hess are full-length,
  /// indexed by row id.
  void Train(const Matrix& x, const std::vector<double>& grad,
             const std::vector<double>& hess, const std::vector<int>& samples,
             const TreeConfig& config);

  double Predict(const double* row) const;

  int num_leaves() const;
  bool trained() const { return !nodes_.empty(); }

  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  struct Node {
    int feature = -1;  ///< -1 marks a leaf.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  std::vector<Node> nodes_;
};

/// \brief Classification tree with Gini splits and optional per-split
/// random feature subsampling (for random forests).
class ClassificationTree {
 public:
  /// `features_per_split` <= 0 uses all features.
  void Train(const Matrix& x, const std::vector<int>& y,
             const std::vector<int>& samples, const TreeConfig& config,
             int features_per_split, Rng* rng);

  /// P(y = 1).
  double PredictProba(const double* row) const;

  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double prob = 0.5;
  };
  int Build(const Matrix& x, const std::vector<int>& y,
            std::vector<int> samples, int depth, const TreeConfig& config,
            int features_per_split, Rng* rng);
  std::vector<Node> nodes_;
};

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_TREE_H_
