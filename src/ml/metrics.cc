#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace dbg4eth {
namespace ml {

ConfusionMatrix ComputeConfusion(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred) {
  DBG4ETH_CHECK_EQ(y_true.size(), y_pred.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      y_pred[i] == 1 ? ++cm.tp : ++cm.fn;
    } else {
      y_pred[i] == 1 ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

BinaryMetrics ComputeBinaryMetrics(const std::vector<int>& y_true,
                                   const std::vector<int>& y_pred) {
  const ConfusionMatrix cm = ComputeConfusion(y_true, y_pred);
  auto safe_div = [](double a, double b) { return b > 0 ? a / b : 0.0; };
  // Per-class precision/recall (class 1 and class 0), macro-averaged.
  const double p1 = safe_div(cm.tp, cm.tp + cm.fp);
  const double r1 = safe_div(cm.tp, cm.tp + cm.fn);
  const double p0 = safe_div(cm.tn, cm.tn + cm.fn);
  const double r0 = safe_div(cm.tn, cm.tn + cm.fp);
  const double f1_1 = safe_div(2.0 * p1 * r1, p1 + r1);
  const double f1_0 = safe_div(2.0 * p0 * r0, p0 + r0);

  BinaryMetrics m;
  m.precision = (p1 + p0) / 2.0;
  m.recall = (r1 + r0) / 2.0;
  m.f1 = (f1_1 + f1_0) / 2.0;
  const double total = cm.tp + cm.fp + cm.tn + cm.fn;
  m.accuracy = safe_div(cm.tp + cm.tn, total);
  return m;
}

std::vector<RocPoint> RocCurve(const std::vector<int>& y_true,
                               const std::vector<double>& scores) {
  DBG4ETH_CHECK_EQ(y_true.size(), scores.size());
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  double positives = 0.0, negatives = 0.0;
  for (int y : y_true) (y == 1 ? positives : negatives) += 1.0;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, 1.0});
  double tp = 0.0, fp = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    // Consume all samples tied at this threshold together.
    while (i < order.size() && scores[order[i]] == threshold) {
      y_true[order[i]] == 1 ? ++tp : ++fp;
      ++i;
    }
    curve.push_back({negatives > 0 ? fp / negatives : 0.0,
                     positives > 0 ? tp / positives : 0.0, threshold});
  }
  return curve;
}

double RocAuc(const std::vector<int>& y_true,
              const std::vector<double>& scores) {
  const auto curve = RocCurve(y_true, scores);
  double auc = 0.0;
  for (size_t i = 1; i < curve.size(); ++i) {
    auc += (curve[i].fpr - curve[i - 1].fpr) *
           (curve[i].tpr + curve[i - 1].tpr) / 2.0;
  }
  return auc;
}

std::vector<int> ThresholdPredictions(const std::vector<double>& probs,
                                      double threshold) {
  std::vector<int> out;
  out.reserve(probs.size());
  for (double p : probs) out.push_back(p > threshold ? 1 : 0);
  return out;
}

}  // namespace ml
}  // namespace dbg4eth
