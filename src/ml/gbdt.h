#ifndef DBG4ETH_ML_GBDT_H_
#define DBG4ETH_ML_GBDT_H_

#include <string>
#include <vector>

#include "ml/classifier.h"
#include "ml/tree.h"

namespace dbg4eth {
namespace ml {

/// \brief Gradient-boosted decision tree binary classifier with logistic
/// loss. `tree.leaf_wise = true` gives the LightGBM strategy (the paper's
/// classifier head), false the XGBoost-style level-wise baseline.
struct GbdtConfig {
  int num_trees = 60;
  double learning_rate = 0.1;
  TreeConfig tree;
  /// Stop early when training loss stops improving by more than this.
  double early_stop_tol = 1e-7;
};

class GbdtClassifier : public BinaryClassifier {
 public:
  explicit GbdtClassifier(const GbdtConfig& config = GbdtConfig(),
                          std::string display_name = "lightgbm");

  Status Train(const Matrix& x, const std::vector<int>& y) override;

  double PredictProba(const double* row) const override;
  /// Raw additive score (log-odds).
  double PredictScore(const double* row) const;

  std::string name() const override { return name_; }
  int num_trees_used() const { return static_cast<int>(trees_.size()); }

  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

  /// Factory for the XGBoost-style variant (level-wise growth).
  static GbdtClassifier XgboostStyle(GbdtConfig config = GbdtConfig());

 private:
  GbdtConfig config_;
  std::string name_;
  double base_score_ = 0.0;  ///< Prior log-odds.
  std::vector<RegressionTree> trees_;
};

}  // namespace ml
}  // namespace dbg4eth

#endif  // DBG4ETH_ML_GBDT_H_
