#ifndef DBG4ETH_NET_HTTP_H_
#define DBG4ETH_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dbg4eth {
namespace net {

/// \brief HTTP/1.1 message types and the incremental request parser
/// behind the epoll server (see DESIGN.md "Network layer").
///
/// Scope: HTTP/1.0 and 1.1, identity bodies framed by Content-Length,
/// keep-alive and pipelining. Chunked transfer encoding is rejected with
/// 501 — no caller in this repo produces it, and rejecting beats a
/// half-correct decoder on a security-sensitive path.

/// Reason phrase of `code` ("OK", "Not Found", ...); "Unknown" for codes
/// the server never emits.
const char* HttpStatusText(int code);

/// \brief One parsed request. Header names are lower-cased at parse time
/// so lookups are case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;  ///< As sent ("GET", "POST", ...), case-sensitive.
  std::string target;  ///< Raw request target, e.g. "/v1/score?x=1".
  std::string path;    ///< Target up to the first '?'.
  std::string query;   ///< Target after the first '?' ("" when absent).
  int version_minor = 1;  ///< 1 for HTTP/1.1, 0 for HTTP/1.0.
  /// In arrival order; names lower-cased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the first header named `name_lower` (must be given in
  /// lower case); null when absent.
  const std::string* FindHeader(const std::string& name_lower) const;

  /// Connection persistence per RFC 9112: HTTP/1.1 defaults to
  /// keep-alive unless "connection: close"; HTTP/1.0 defaults to close
  /// unless "connection: keep-alive".
  bool keep_alive() const;
};

/// \brief One response to serialize. Content-Length, Date and Connection
/// are emitted by SerializeResponse; handlers only set payload headers.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void SetHeader(const std::string& name, const std::string& value);

  /// 200/`status` response with a JSON body.
  static HttpResponse Json(int status, std::string body);
  /// Plain-text response.
  static HttpResponse Text(int status, std::string body);
  /// Error response with a JSON body {"error": {"code": N, "message": m}}.
  static HttpResponse Error(int status, const std::string& message);
};

/// Renders the full wire form of `response`. `keep_alive` selects the
/// Connection header ("keep-alive" vs "close") so the peer and the
/// connection state machine agree on what happens after the body.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Parses a W3C `traceparent` header value
/// (`version-traceid-parentid-flags`, e.g.
/// `00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01`): returns
/// true and fills `trace_id` with the 32-hex trace id when the value is
/// well-formed and the trace id is not all-zero (all-zero is explicitly
/// invalid per the spec). Accepts any version byte except "ff".
bool ParseTraceparent(const std::string& value, std::string* trace_id);

/// Correlation id of `request`, in preference order: the `traceparent`
/// trace id; else an `x-request-id` value sanitized to [A-Za-z0-9._-]
/// and truncated to 64 chars (so client-supplied ids can never corrupt
/// logs, label values, or the exposition); else "".
std::string ExtractTraceId(const HttpRequest& request);

/// Value of `key` in a query string ("a=1&b=2" — the split-off
/// HttpRequest::query). No percent-decoding (debug-route parameters are
/// plain tokens); "" when absent.
std::string QueryParam(const std::string& query, const std::string& key);

/// \brief Limits of the request parser.
struct HttpParserConfig {
  /// Request line + headers, bytes. Exceeding rejects with 431.
  size_t max_header_bytes = 16 * 1024;
  /// Declared Content-Length bound. Exceeding rejects with 413 before
  /// any body byte is buffered.
  size_t max_body_bytes = 1 << 20;
};

/// \brief Incremental HTTP/1.1 request parser (one per connection).
///
/// Feed bytes as they arrive with Consume; the parser buffers internally
/// and advances a small state machine (request line -> headers -> body).
/// When state() is kComplete, request() holds the parsed request; call
/// Reset() to drop the consumed bytes and start on the next pipelined
/// request (any leftover bytes are re-parsed immediately). When state()
/// is kError, error_status()/error_message() describe the rejection
/// (400/413/431/501) and the connection must close after responding.
class HttpParser {
 public:
  enum class State { kHeaders, kBody, kComplete, kError };

  explicit HttpParser(const HttpParserConfig& config = HttpParserConfig());

  /// Appends `n` bytes and advances the state machine as far as the
  /// buffered input allows. n == 0 re-attempts parsing of buffered
  /// leftovers (used after Reset). Returns the new state.
  State Consume(const char* data, size_t n);

  State state() const { return state_; }
  /// Valid only when state() == kComplete.
  const HttpRequest& request() const { return request_; }
  /// Moves the parsed request out (the parser keeps only buffered
  /// leftovers); valid once per completed request.
  HttpRequest TakeRequest() { return std::move(request_); }

  /// HTTP status to respond with when state() == kError.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// True when bytes of a not-yet-complete request are buffered — the
  /// read-timeout sweep uses this to tell "slowloris mid-request" from
  /// "idle keep-alive between requests".
  bool HasPartialRequest() const {
    return state_ == State::kBody ||
           (state_ == State::kHeaders && !buffer_.empty());
  }

  /// Discards the completed request's bytes and re-parses any pipelined
  /// leftovers (state may be kComplete again immediately after).
  void Reset();

 private:
  void Fail(int status, const std::string& message);
  /// Parses the request line + header block in buffer_[0, header_end).
  void ParseHeaderBlock(size_t header_end);
  void TryParse();

  HttpParserConfig config_;
  State state_ = State::kHeaders;
  std::string buffer_;
  /// Bytes of buffer_ consumed by the current completed request.
  size_t consumed_ = 0;
  size_t content_length_ = 0;
  /// Offset of the body's first byte in buffer_ (valid in kBody).
  size_t body_start_ = 0;
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace net
}  // namespace dbg4eth

#endif  // DBG4ETH_NET_HTTP_H_
