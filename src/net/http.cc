#include "net/http.h"

#include <cctype>
#include <cstdlib>

#include "common/json_util.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace net {

const char* HttpStatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Content Too Large";
    case 422:
      return "Unprocessable Content";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

const std::string* HttpRequest::FindHeader(
    const std::string& name_lower) const {
  for (const auto& header : headers) {
    if (header.first == name_lower) return &header.second;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = FindHeader("connection");
  if (connection != nullptr) {
    const std::string value = ToLower(*connection);
    if (value == "close") return false;
    if (value == "keep-alive") return true;
  }
  return version_minor >= 1;
}

void HttpResponse::SetHeader(const std::string& name,
                             const std::string& value) {
  for (auto& header : headers) {
    if (header.first == name) {
      header.second = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  response.SetHeader("Content-Type", "application/json");
  return response;
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  response.SetHeader("Content-Type", "text/plain; charset=utf-8");
  return response;
}

HttpResponse HttpResponse::Error(int status, const std::string& message) {
  std::string body;
  json::JsonWriter writer(&body);
  writer.BeginObject();
  writer.Key("error");
  writer.BeginObject();
  writer.Key("code");
  writer.Int(status);
  writer.Key("message");
  writer.String(message);
  writer.EndObject();
  writer.EndObject();
  body += "\n";
  return Json(status, std::move(body));
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                   HttpStatusText(response.status));
  for (const auto& header : response.headers) {
    out += header.first + ": " + header.second + "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpParser::HttpParser(const HttpParserConfig& config) : config_(config) {}

void HttpParser::Fail(int status, const std::string& message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = message;
}

HttpParser::State HttpParser::Consume(const char* data, size_t n) {
  if (state_ == State::kError) return state_;
  if (n > 0) buffer_.append(data, n);
  TryParse();
  return state_;
}

void HttpParser::TryParse() {
  if (state_ == State::kHeaders) {
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > config_.max_header_bytes) {
        Fail(431, "request headers exceed " +
                      StrFormat("%zu", config_.max_header_bytes) + " bytes");
      }
      return;
    }
    if (header_end + 4 > config_.max_header_bytes) {
      Fail(431, "request headers exceed " +
                    StrFormat("%zu", config_.max_header_bytes) + " bytes");
      return;
    }
    ParseHeaderBlock(header_end);
    if (state_ == State::kError) return;
    body_start_ = header_end + 4;
    state_ = State::kBody;
  }
  if (state_ == State::kBody) {
    if (buffer_.size() - body_start_ < content_length_) return;
    request_.body = buffer_.substr(body_start_, content_length_);
    consumed_ = body_start_ + content_length_;
    state_ = State::kComplete;
  }
}

void HttpParser::ParseHeaderBlock(size_t header_end) {
  request_ = HttpRequest();
  content_length_ = 0;

  const size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos || line_end > header_end) {
    Fail(400, "malformed request line");
    return;
  }
  const std::string request_line = buffer_.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      request_line.find(' ', sp2 + 1) != std::string::npos) {
    Fail(400, "malformed request line");
    return;
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    Fail(400, "malformed request line");
    return;
  }
  for (char c : request_.method) {
    if (!std::isalpha(static_cast<unsigned char>(c))) {
      Fail(400, "malformed method");
      return;
    }
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    Fail(400, "unsupported HTTP version '" + version + "'");
    return;
  }
  const size_t question = request_.target.find('?');
  if (question == std::string::npos) {
    request_.path = request_.target;
  } else {
    request_.path = request_.target.substr(0, question);
    request_.query = request_.target.substr(question + 1);
  }

  // Header lines.
  size_t pos = line_end + 2;
  bool saw_content_length = false;
  while (pos < header_end) {
    size_t eol = buffer_.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buffer_.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, "malformed header line");
      return;
    }
    std::string name = ToLower(line.substr(0, colon));
    // Whitespace inside a field name is request smuggling bait — reject.
    for (char c : name) {
      if (c == ' ' || c == '\t') {
        Fail(400, "whitespace in header name");
        return;
      }
    }
    std::string value = Trim(line.substr(colon + 1));
    request_.headers.emplace_back(std::move(name), std::move(value));
  }

  const std::string* te = request_.FindHeader("transfer-encoding");
  if (te != nullptr && ToLower(*te) != "identity") {
    Fail(501, "transfer-encoding '" + *te + "' not supported");
    return;
  }
  const std::string* cl = request_.FindHeader("content-length");
  if (cl != nullptr) {
    if (cl->empty()) {
      Fail(400, "empty content-length");
      return;
    }
    for (char c : *cl) {
      if (c < '0' || c > '9') {
        Fail(400, "malformed content-length '" + *cl + "'");
        return;
      }
    }
    errno = 0;
    const unsigned long long parsed = std::strtoull(cl->c_str(), nullptr, 10);
    if (errno != 0 || parsed > config_.max_body_bytes) {
      Fail(413, "declared body of " + *cl + " bytes exceeds limit of " +
                    StrFormat("%zu", config_.max_body_bytes) + " bytes");
      return;
    }
    content_length_ = static_cast<size_t>(parsed);
    saw_content_length = true;
  }
  // A second Content-Length header that disagrees is smuggling bait.
  if (saw_content_length) {
    int count = 0;
    for (const auto& header : request_.headers) {
      if (header.first == "content-length") {
        ++count;
        if (header.second != *cl) {
          Fail(400, "conflicting content-length headers");
          return;
        }
      }
    }
    (void)count;
  }
}

namespace {

bool IsLowerHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

bool IsHexRun(const std::string& s, size_t pos, size_t n) {
  bool all_zero = true;
  for (size_t i = pos; i < pos + n; ++i) {
    const char c = s[i];
    if (!IsLowerHex(c) && !(c >= 'A' && c <= 'F')) return false;
    if (c != '0') all_zero = false;
  }
  return !all_zero;
}

}  // namespace

bool ParseTraceparent(const std::string& value, std::string* trace_id) {
  // version(2) - trace-id(32) - parent-id(16) - flags(2); later versions
  // may append fields after the flags, so >= 55 with dashed layout.
  if (value.size() < 55) return false;
  if (value[2] != '-' || value[35] != '-' || value[52] != '-') return false;
  if (!IsHexRun(value, 0, 2) && value.compare(0, 2, "00") != 0) return false;
  if (value.compare(0, 2, "ff") == 0) return false;  // Forbidden version.
  if (!IsHexRun(value, 3, 32)) return false;   // Rejects all-zero too.
  if (!IsHexRun(value, 36, 16)) return false;  // parent-id, also non-zero.
  std::string id = value.substr(3, 32);
  for (char& c : id) {
    if (c >= 'A' && c <= 'F') c = static_cast<char>(c - 'A' + 'a');
  }
  *trace_id = std::move(id);
  return true;
}

std::string ExtractTraceId(const HttpRequest& request) {
  if (const std::string* traceparent = request.FindHeader("traceparent")) {
    std::string trace_id;
    if (ParseTraceparent(*traceparent, &trace_id)) return trace_id;
  }
  if (const std::string* request_id = request.FindHeader("x-request-id")) {
    std::string sanitized;
    for (char c : *request_id) {
      const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                      (c >= 'A' && c <= 'Z') || c == '-' || c == '_' ||
                      c == '.';
      if (ok) sanitized += c;
      if (sanitized.size() >= 64) break;
    }
    return sanitized;
  }
  return "";
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    // A bare token ("?error") is a flag-style parameter with value "".
    if (eq == std::string::npos || eq >= amp) {
      if (query.compare(pos, amp - pos, key) == 0) return "";
    }
    pos = amp + 1;
  }
  return "";
}

void HttpParser::Reset() {
  if (state_ != State::kComplete) return;
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  body_start_ = 0;
  content_length_ = 0;
  request_ = HttpRequest();
  state_ = State::kHeaders;
  TryParse();
}

}  // namespace net
}  // namespace dbg4eth
