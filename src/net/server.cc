#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace dbg4eth {
namespace net {

namespace {

/// epoll user data 0 is the wake-eventfd sentinel; connection ids start
/// at 1.
constexpr uint64_t kWakeSentinel = 0;

/// Read chunk per EPOLLIN wakeup. Level-triggered epoll re-notifies when
/// more bytes remain, so one bounded read per event keeps any single
/// connection from monopolizing its loop.
constexpr size_t kReadChunk = 16 * 1024;

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Canned response for connections rejected at accept time (over the
/// connection cap); written best-effort with one nonblocking send.
const char kOverCapacityResponse[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 55\r\n"
    "Connection: close\r\n"
    "\r\n"
    "{\"error\": {\"code\": 503, \"message\": \"over capacity\"}}\n";

}  // namespace

std::string FormatAccessLogLine(const std::string& method,
                                const std::string& route, int code,
                                double duration_us,
                                const std::string& trace_id) {
  const bool shed = code == 429 || code == 503;
  const bool deadline = code == 408 || code == 504;
  return "http_access method=" + (method.empty() ? "-" : method) +
         " route=" + (route.empty() ? "-" : route) +
         StrFormat(" code=%d", code) +
         StrFormat(" duration_us=%.1f", duration_us) +
         " trace_id=" + (trace_id.empty() ? "-" : trace_id) +
         StrFormat(" shed=%d deadline=%d", shed ? 1 : 0, deadline ? 1 : 0);
}

HttpServer::HttpServer(const HttpServerConfig& config) : config_(config) {
  config_.num_loops = std::max(1, config_.num_loops);
  config_.num_handler_threads = std::max(1, config_.num_handler_threads);
  config_.max_connections = std::max(1, config_.max_connections);
  parser_config_.max_header_bytes = config_.max_header_bytes;
  parser_config_.max_body_bytes = config_.max_body_bytes;

  obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
  connections_gauge_ =
      registry->GaugeAt("net_connections", "Open HTTP connections");
  connections_total_ = registry->CounterAt("net_connections_total",
                                           "HTTP connections accepted");
  accept_errors_total_ = registry->CounterAt(
      "net_accept_errors_total", "Failed or fault-injected accepts");
  accept_rejected_total_ =
      registry->CounterAt("net_accept_rejected_total",
                          "Connections refused over the connection cap");
  parse_errors_total_ = registry->CounterAt(
      "net_parse_errors_total", "Requests rejected by the HTTP parser");
  client_aborts_total_ = registry->CounterAt(
      "net_client_aborts_total",
      "Connections dropped by the peer mid-request or mid-response");
  shed_total_ = registry->CounterAt(
      "net_shed_total", "Requests shed 503 (handler queue saturated)");
  timeouts_read_ =
      registry->CounterAt("net_timeouts_total", "Connection timeouts",
                          {{"kind", "read"}});
  timeouts_idle_ =
      registry->CounterAt("net_timeouts_total", "Connection timeouts",
                          {{"kind", "idle"}});
  timeouts_write_ =
      registry->CounterAt("net_timeouts_total", "Connection timeouts",
                          {{"kind", "write"}});
  request_us_unmatched_ =
      registry->HistogramAt("net_request_us", "HTTP request latency",
                            {{"route", "unmatched"}});
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  RouteEntry entry;
  entry.method = method;
  entry.path = path;
  entry.handler = std::move(handler);
  entry.request_us = obs::MetricsRegistry::Global()->HistogramAt(
      "net_request_us", "HTTP request latency", {{"route", path}});
  routes_.push_back(std::move(entry));
}

std::string HttpServer::address() const {
  return config_.bind_address + ":" + StrFormat("%u", unsigned{port_});
}

Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("HttpServer already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    // port_ is not resolved yet, so report the configured port.
    return ErrnoStatus("bind " + config_.bind_address + ":" +
                       StrFormat("%u", unsigned{config_.port}));
  }
  if (::listen(listen_fd_, 128) < 0) return ErrnoStatus("listen");
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    return ErrnoStatus("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  accept_epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  accept_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (accept_epoll_fd_ < 0 || accept_wake_fd_ < 0) {
    return ErrnoStatus("epoll_create1/eventfd");
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeSentinel;
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, accept_wake_fd_, &ev);
  ev.data.u64 = 1;  // Any nonzero tag: the acceptor has only two fds.
  ::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  for (int i = 0; i < config_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      return ErrnoStatus("epoll_create1/eventfd");
    }
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeSentinel;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loop->last_sweep = std::chrono::steady_clock::now();
    loops_.push_back(std::move(loop));
  }

  pool_ = std::make_unique<ThreadPool>(config_.num_handler_threads,
                                       config_.handler_queue_capacity);
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { EventLoop(raw); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  DBG4ETH_LOG(Info) << "HttpServer listening on " << address() << " ("
                    << config_.num_loops << " loops, "
                    << config_.num_handler_threads << " handler threads)";
  return Status::OK();
}

void HttpServer::Wake(Loop* loop) {
  const uint64_t one = 1;
  ssize_t rc = ::write(loop->wake_fd, &one, sizeof(one));
  (void)rc;  // A full eventfd counter already wakes the loop.
}

void HttpServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!started_.load() || shut_down_) return;
  shut_down_ = true;

  drain_deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(config_.drain_deadline_us);
  draining_.store(true, std::memory_order_release);

  // Stop accepting first: wake the acceptor, which closes the listener on
  // its way out, so the drain below cannot race new connections.
  const uint64_t one = 1;
  ssize_t rc = ::write(accept_wake_fd_, &one, sizeof(one));
  (void)rc;
  if (acceptor_.joinable()) acceptor_.join();

  // Let every loop finish its in-flight requests within the deadline.
  for (auto& loop : loops_) Wake(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }

  // Handlers still running belong to connections already force-closed;
  // drain them so their (dropped) completions stop referencing us.
  if (pool_ != nullptr) pool_->Shutdown();

  for (auto& loop : loops_) {
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
  if (accept_epoll_fd_ >= 0) ::close(accept_epoll_fd_);
  if (accept_wake_fd_ >= 0) ::close(accept_wake_fd_);
  accept_epoll_fd_ = accept_wake_fd_ = -1;
  DBG4ETH_LOG(Info) << "HttpServer on " << address() << " shut down ("
                    << requests_served_.load() << " requests served)";
}

// ---------------------------------------------------------------------------
// Acceptor.

void HttpServer::AcceptLoop() {
  epoll_event events[4];
  while (!draining()) {
    const int n = ::epoll_wait(accept_epoll_fd_, events, 4, 100);
    if (n < 0 && errno != EINTR) break;
    bool listener_ready = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kWakeSentinel) {
        uint64_t drained;
        while (::read(accept_wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        listener_ready = true;
      }
    }
    if (!listener_ready) continue;
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        // EMFILE/ENFILE/ECONNABORTED/...: count and keep serving; the
        // listener queue will re-trigger the (level-triggered) epoll.
        accept_errors_total_->Inc();
        break;
      }
      if (failpoint::kCompiledIn) {
        const Status injected = failpoint::Evaluate("net.accept");
        if (!injected.ok()) {
          accept_errors_total_->Inc();
          ::close(fd);
          continue;
        }
      }
      if (open_connections_.load(std::memory_order_relaxed) >=
          config_.max_connections) {
        accept_rejected_total_->Inc();
        ssize_t rc = ::send(fd, kOverCapacityResponse,
                            sizeof(kOverCapacityResponse) - 1, MSG_NOSIGNAL);
        (void)rc;
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connections_total_->Inc();
      connections_gauge_->Set(
          open_connections_.fetch_add(1, std::memory_order_relaxed) + 1);
      Loop* loop =
          loops_[next_loop_.fetch_add(1) % loops_.size()].get();
      {
        std::lock_guard<std::mutex> lock(loop->inbox_mu);
        loop->pending_fds.push_back(fd);
      }
      Wake(loop);
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// Event loop.

void HttpServer::EventLoop(Loop* loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  const int tick_ms =
      std::max(1, static_cast<int>(config_.sweep_interval_us / 1000));

  for (;;) {
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEvents, tick_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < std::max(n, 0); ++i) {
      if (events[i].data.u64 == kWakeSentinel) {
        uint64_t drained;
        while (::read(loop->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = loop->conns.find(events[i].data.u64);
      if (it == loop->conns.end()) continue;  // Closed earlier this batch.
      HandleConnEvent(loop, it->second.get(), events[i].events);
    }

    // Inbox: adopt new connections, apply handler completions.
    std::vector<int> fds;
    std::vector<Completion> completions;
    {
      std::lock_guard<std::mutex> lock(loop->inbox_mu);
      fds.swap(loop->pending_fds);
      completions.swap(loop->pending_completions);
    }
    for (int fd : fds) AdoptConnection(loop, fd);
    for (Completion& completion : completions) {
      auto it = loop->conns.find(completion.conn_id);
      if (it == loop->conns.end()) continue;  // Peer went away; drop it.
      Conn* conn = it->second.get();
      conn->handler_inflight = false;
      StageResponse(loop, conn, std::move(completion.response),
                    conn->request_keep_alive);
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - loop->last_sweep >=
        std::chrono::microseconds(config_.sweep_interval_us)) {
      loop->last_sweep = now;
      SweepTimeouts(loop);
    }

    if (draining()) {
      // Close everything with no in-flight request or pending write;
      // past the deadline, close the rest too.
      const bool past_deadline = now >= drain_deadline_;
      for (auto it = loop->conns.begin(); it != loop->conns.end();) {
        Conn* conn = (it++)->second.get();
        const bool in_flight =
            conn->handler_inflight ||
            (!conn->write_buffer.empty() &&
             conn->write_offset < conn->write_buffer.size());
        if (!in_flight || past_deadline) CloseConn(loop, conn);
      }
      if (loop->conns.empty()) return;
    }
  }
}

void HttpServer::AdoptConnection(Loop* loop, int fd) {
  auto conn = std::make_unique<Conn>(parser_config_);
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1);
  conn->last_activity = std::chrono::steady_clock::now();
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    connections_gauge_->Set(
        open_connections_.fetch_sub(1, std::memory_order_relaxed) - 1);
    return;
  }
  loop->conns.emplace(conn->id, std::move(conn));
}

void HttpServer::UpdateInterest(Loop* loop, Conn* conn, uint32_t events) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void HttpServer::CloseConn(Loop* loop, Conn* conn) {
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_gauge_->Set(
      open_connections_.fetch_sub(1, std::memory_order_relaxed) - 1);
  loop->conns.erase(conn->id);  // Frees `conn`.
}

void HttpServer::HandleConnEvent(Loop* loop, Conn* conn, uint32_t events) {
  const uint64_t id = conn->id;
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    if (conn->handler_inflight || conn->want_write ||
        conn->parser.HasPartialRequest()) {
      client_aborts_total_->Inc();
    }
    CloseConn(loop, conn);
    return;
  }
  if ((events & EPOLLOUT) != 0 && conn->want_write) {
    TryWrite(loop, conn);
    if (loop->conns.find(id) == loop->conns.end()) return;  // Closed.
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    OnReadable(loop, conn);
  }
}

void HttpServer::OnReadable(Loop* loop, Conn* conn) {
  if (conn->handler_inflight || conn->want_write) {
    // A response is pending, so EPOLLIN interest is off and this event is
    // EPOLLRDHUP (or a stale level-triggered wakeup). Peek — consuming
    // would eat the next pipelined request's bytes. A FIN with no queued
    // data means the peer is gone mid-request; queued data means it
    // half-closed after sending, which still deserves its response.
    char peek;
    const ssize_t p = ::recv(conn->fd, &peek, 1, MSG_PEEK | MSG_DONTWAIT);
    if (p == 0 ||
        (p < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
         errno != EINTR)) {
      client_aborts_total_->Inc();
      CloseConn(loop, conn);
    }
    return;
  }
  if (failpoint::kCompiledIn) {
    const Status injected = failpoint::Evaluate("net.conn_read");
    if (!injected.ok()) {
      client_aborts_total_->Inc();
      CloseConn(loop, conn);
      return;
    }
  }
  char buf[kReadChunk];
  const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    client_aborts_total_->Inc();
    CloseConn(loop, conn);
    return;
  }
  if (n == 0) {
    // Peer FIN. Mid-request that is an abort; between requests it is a
    // clean keep-alive close.
    if (conn->parser.HasPartialRequest()) client_aborts_total_->Inc();
    CloseConn(loop, conn);
    return;
  }
  conn->last_activity = std::chrono::steady_clock::now();
  conn->parser.Consume(buf, static_cast<size_t>(n));
  AdvanceParse(loop, conn);
}

void HttpServer::AdvanceParse(Loop* loop, Conn* conn) {
  switch (conn->parser.state()) {
    case HttpParser::State::kError: {
      parse_errors_total_->Inc();
      conn->route_label = "unmatched";
      conn->method = "";
      // The request never parsed, so any client-sent traceparent is
      // untrusted bytes; a fresh id still lets the client correlate the
      // rejection with the server's log line.
      conn->trace_id = obs::GenerateTraceId();
      conn->request_start = std::chrono::steady_clock::now();
      StageResponse(loop, conn,
                    HttpResponse::Error(conn->parser.error_status(),
                                        conn->parser.error_message()),
                    /*keep_alive=*/false);
      return;
    }
    case HttpParser::State::kComplete:
      DispatchRequest(loop, conn);
      return;
    default:
      return;  // Need more bytes.
  }
}

void HttpServer::DispatchRequest(Loop* loop, Conn* conn) {
  conn->request_start = std::chrono::steady_clock::now();
  HttpRequest request = conn->parser.TakeRequest();
  conn->request_keep_alive = request.keep_alive();
  conn->route_label = "unmatched";
  conn->method = request.method;

  // Resolve the request's correlation id once, here at the edge: the
  // client's traceparent (or x-request-id) wins, else a fresh id. The
  // canonical id is injected into the request as `x-trace-id` so every
  // handler — and the scoring path behind it — reads the same value the
  // response will carry.
  conn->trace_id = ExtractTraceId(request);
  if (conn->trace_id.empty()) conn->trace_id = obs::GenerateTraceId();
  // `x-trace-id` is the server's output channel, not a client input (the
  // inputs are traceparent / x-request-id, which ExtractTraceId
  // sanitizes). Drop any client-sent copies first: FindHeader returns
  // the first match, so a spoofed header would otherwise shadow the
  // canonical id in handlers while the response carried a different one.
  request.headers.erase(
      std::remove_if(request.headers.begin(), request.headers.end(),
                     [](const std::pair<std::string, std::string>& h) {
                       return h.first == "x-trace-id";
                     }),
      request.headers.end());
  request.headers.emplace_back("x-trace-id", conn->trace_id);

  const RouteEntry* match = nullptr;
  bool path_seen = false;
  for (const RouteEntry& route : routes_) {
    if (route.path != request.path) continue;
    path_seen = true;
    if (route.method == request.method) {
      match = &route;
      break;
    }
  }
  if (match == nullptr) {
    StageResponse(loop, conn,
                  path_seen
                      ? HttpResponse::Error(405, "method not allowed on " +
                                                     request.path)
                      : HttpResponse::Error(404, "no route for " +
                                                     request.path),
                  conn->request_keep_alive);
    return;
  }
  conn->route_label = match->path;
  conn->handler_inflight = true;
  // Poll for peer-close only while the handler runs; EPOLLIN stays off so
  // pipelined bytes wait in the kernel buffer.
  UpdateInterest(loop, conn, 0);

  // The handler owns a copy of the request: if the client disconnects and
  // the connection is torn down mid-handling, nothing dangles.
  auto shared_request = std::make_shared<HttpRequest>(std::move(request));
  const Handler& handler = match->handler;
  const uint64_t conn_id = conn->id;
  const bool submitted = pool_->TrySubmit([this, loop, conn_id, handler,
                                           shared_request] {
    Completion completion;
    completion.conn_id = conn_id;
    completion.response = handler(*shared_request);
    {
      std::lock_guard<std::mutex> lock(loop->inbox_mu);
      loop->pending_completions.push_back(std::move(completion));
    }
    Wake(loop);
  });
  if (!submitted) {
    shed_total_->Inc();
    conn->handler_inflight = false;
    StageResponse(loop, conn,
                  HttpResponse::Error(503, "handler queue saturated"),
                  conn->request_keep_alive);
  }
}

void HttpServer::RecordRequestMetrics(const Conn& conn, int code) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global()
      ->CounterAt("net_requests_total", "HTTP requests by route and status",
                  {{"route", conn.route_label},
                   {"code", StrFormat("%d", code)}})
      ->Inc();
  obs::Histogram* request_us = request_us_unmatched_;
  for (const RouteEntry& route : routes_) {
    if (route.path == conn.route_label) {
      request_us = route.request_us;
      break;
    }
  }
  request_us->Record(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() -
                         conn.request_start)
                         .count());
}

void HttpServer::StageResponse(Loop* loop, Conn* conn,
                               HttpResponse response, bool keep_alive) {
  // A draining server closes after the in-flight response.
  const bool persist = keep_alive && !draining();
  // Error paths (400/404/405/408/413/503/...) funnel through here just
  // like handler responses, so every response the server writes carries
  // the correlation id.
  if (!conn->trace_id.empty()) {
    response.SetHeader("x-trace-id", conn->trace_id);
  }
  RecordRequestMetrics(*conn, response.status);
  if (config_.access_log) {
    DBG4ETH_LOG(Info) << FormatAccessLogLine(
        conn->method, conn->route_label, response.status,
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - conn->request_start)
            .count(),
        conn->trace_id);
  }
  conn->write_buffer = SerializeResponse(response, persist);
  conn->write_offset = 0;
  conn->close_after_write = !persist;
  TryWrite(loop, conn);
}

void HttpServer::TryWrite(Loop* loop, Conn* conn) {
  if (failpoint::kCompiledIn) {
    const Status injected = failpoint::Evaluate("net.conn_write");
    if (!injected.ok()) {
      client_aborts_total_->Inc();
      CloseConn(loop, conn);
      return;
    }
  }
  while (conn->write_offset < conn->write_buffer.size()) {
    const ssize_t n = ::send(
        conn->fd, conn->write_buffer.data() + conn->write_offset,
        conn->write_buffer.size() - conn->write_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        conn->want_write = true;
        conn->last_activity = std::chrono::steady_clock::now();
        UpdateInterest(loop, conn, EPOLLOUT);
        return;
      }
      if (errno == EINTR) continue;
      // EPIPE / ECONNRESET: the peer is gone mid-response.
      client_aborts_total_->Inc();
      CloseConn(loop, conn);
      return;
    }
    conn->write_offset += static_cast<size_t>(n);
  }
  FinishWrite(loop, conn);
}

void HttpServer::FinishWrite(Loop* loop, Conn* conn) {
  conn->want_write = false;
  conn->write_buffer.clear();
  conn->write_offset = 0;
  ++conn->requests_served;
  conn->last_activity = std::chrono::steady_clock::now();
  if (conn->close_after_write) {
    CloseConn(loop, conn);
    return;
  }
  // Back to reading; a pipelined request may already be buffered.
  UpdateInterest(loop, conn, EPOLLIN);
  conn->parser.Reset();
  AdvanceParse(loop, conn);
}

void HttpServer::SweepTimeouts(Loop* loop) {
  const auto now = std::chrono::steady_clock::now();
  for (auto it = loop->conns.begin(); it != loop->conns.end();) {
    Conn* conn = (it++)->second.get();
    if (conn->handler_inflight) continue;  // Service deadlines govern.
    const auto age = now - conn->last_activity;
    if (conn->want_write) {
      if (age >= std::chrono::microseconds(config_.write_timeout_us)) {
        timeouts_write_->Inc();
        CloseConn(loop, conn);
      }
      continue;
    }
    if (conn->parser.HasPartialRequest()) {
      if (age >= std::chrono::microseconds(config_.read_timeout_us)) {
        // Slowloris: answer 408 (best effort) and close.
        timeouts_read_->Inc();
        conn->route_label = "unmatched";
        conn->method = "";
        // The stuck request never finished parsing; give the 408 its own
        // id (any buffered traceparent bytes are still untrusted input).
        conn->trace_id = obs::GenerateTraceId();
        conn->request_start = now;
        StageResponse(loop, conn,
                      HttpResponse::Error(408, "request timed out"),
                      /*keep_alive=*/false);
      }
      continue;
    }
    if (age >= std::chrono::microseconds(config_.idle_timeout_us)) {
      timeouts_idle_->Inc();
      CloseConn(loop, conn);
    }
  }
}

}  // namespace net
}  // namespace dbg4eth
