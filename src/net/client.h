#ifndef DBG4ETH_NET_CLIENT_H_
#define DBG4ETH_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/http.h"

namespace dbg4eth {
namespace net {

/// \brief Limits of the blocking client.
struct HttpClientConfig {
  int64_t connect_timeout_us = 5'000'000;
  /// Per-recv/send timeout (SO_RCVTIMEO / SO_SNDTIMEO).
  int64_t io_timeout_us = 30'000'000;
  /// Response size bound (headers + body).
  size_t max_response_bytes = 8 << 20;
};

/// \brief Small blocking HTTP/1.1 client for tests, benches and tools.
///
/// One connection per instance, reused across requests (keep-alive) and
/// transparently re-established when the server closed it. Not
/// thread-safe — use one client per thread, which is also how the bench
/// sweeps concurrent connections.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port,
             const HttpClientConfig& config = HttpClientConfig());
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Result<HttpResponse> Get(
      const std::string& path,
      const std::vector<std::pair<std::string, std::string>>& headers = {});
  Result<HttpResponse> Post(
      const std::string& path, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Full request primitive behind Get/Post. Retries once on a fresh
  /// connection when a reused keep-alive socket turns out to be dead (the
  /// server may have idle-closed it between requests).
  Result<HttpResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers);

  /// Drops the current connection (the next request reconnects).
  void Disconnect();

  // --- raw access for chaos tests ---

  /// Ensures a live connection without sending anything.
  Status Connect();
  /// Writes raw bytes on the current connection (Connect first).
  Status SendRaw(const std::string& bytes);
  /// The connected socket, -1 when disconnected. Chaos tests use it to
  /// close mid-exchange.
  int fd() const { return fd_; }

  /// TCP connections established over this client's lifetime — tests
  /// assert keep-alive reuse by checking this stays at 1.
  uint64_t connects() const { return connects_; }

 private:
  Result<HttpResponse> RoundTrip(const std::string& wire);
  /// Reads one full response off the socket.
  Result<HttpResponse> ReadResponse();

  std::string host_;
  uint16_t port_;
  HttpClientConfig config_;
  int fd_ = -1;
  uint64_t connects_ = 0;
  /// Bytes read past the previous response (servers never pipeline
  /// responses unprompted, but keep the parser honest).
  std::string leftover_;
};

}  // namespace net
}  // namespace dbg4eth

#endif  // DBG4ETH_NET_CLIENT_H_
