#ifndef DBG4ETH_NET_SCORING_APP_H_
#define DBG4ETH_NET_SCORING_APP_H_

#include <cstdint>

#include "net/http.h"
#include "net/server.h"
#include "serve/inference_service.h"

namespace dbg4eth {
namespace net {

/// \brief Knobs of the HTTP scoring API.
struct ScoringAppConfig {
  /// Largest accepted `x-deadline-us` value; larger asks are clamped so a
  /// client cannot pin a handler thread for an hour.
  int64_t max_deadline_us = 60'000'000;
  /// Address-count bound of one /v1/score_batch body.
  size_t max_batch_addresses = 256;
  /// Largest accepted `/debug/profile?seconds=` value; larger asks are
  /// clamped (the capture blocks one handler thread for its duration and
  /// interrupts the whole process at the sampling frequency).
  double max_profile_seconds = 10.0;
  /// Registers the `/debug/*` routes (traces, profile, vars). They are
  /// unauthenticated operator tooling: anything that can reach the port
  /// can read traces and trigger profile captures, so disable this when
  /// the server binds beyond loopback for untrusted clients. When off,
  /// the paths 404 like any unknown route.
  bool expose_debug_routes = true;
};

/// \brief The HTTP face of InferenceService: scoring + admin endpoints.
///
/// Routes registered on the server:
///   POST /v1/score        {"address": N} -> one ScoreResult as JSON
///   POST /v1/score_batch  {"addresses": [N, ...]} -> {"results": [...]}
///   GET  /metrics         text exposition of the obs registry; classic
///                         Prometheus 0.0.4 by default, OpenMetrics
///                         (with histogram exemplars + `# EOF`) when the
///                         scraper sends
///                         `Accept: application/openmetrics-text`
///   GET  /healthz         liveness ("ok")
///   GET  /statusz         JSON: ServerStats snapshot, model generation,
///                         ledger height, HTTP-server counters, and the
///                         obs metrics + span snapshot
///   GET  /debug/traces    retained trace trees as JSON; filters:
///                         ?id=<trace-id> (exact), ?min_duration_us=N,
///                         ?error=1 (failed traces only)
///   GET  /debug/profile   ?seconds=N (default 1): samples the process
///                         for N seconds, returns collapsed-stack text
///                         for flamegraph tools; 409 while another
///                         capture runs, 503 where profiling is disabled
///   GET  /debug/vars      the obs JSON snapshot (metrics + spans)
///
/// The `/debug/*` routes register only when
/// `ScoringAppConfig::expose_debug_routes` is set (the default — the
/// default server bind is loopback); disable it on untrusted networks.
///
/// Trace propagation: the server resolves each request's trace id from
/// `traceparent`/`x-request-id` (generating one otherwise) and injects it
/// as `x-trace-id`; the scoring handlers carry it into
/// InferenceService::ScoreAsync so span trees and latency exemplars are
/// stamped with the same id the response returns.
///
/// Deadline propagation: an `x-deadline-us` request header (microsecond
/// budget from arrival, clamped to `max_deadline_us`) rides into
/// InferenceService::ScoreAsync, so an expired request resolves
/// kDeadlineExceeded without a forward pass and maps to 504 on the wire.
/// All ScoreResult error statuses map through serve::SuggestedHttpStatus
/// (504 deadline / 429 shed / 503 unavailable / 404 unknown address).
///
/// Scores are serialized with round-trip precision: the double a client
/// parses back is bit-identical to the in-process PredictProba result.
class ScoringApp {
 public:
  /// `service` and `server` must outlive the app; the app must outlive
  /// the server's Shutdown (handlers reference it).
  ScoringApp(serve::InferenceService* service, HttpServer* server,
             const ScoringAppConfig& config = ScoringAppConfig());

  ScoringApp(const ScoringApp&) = delete;
  ScoringApp& operator=(const ScoringApp&) = delete;

 private:
  HttpResponse HandleScore(const HttpRequest& request);
  HttpResponse HandleScoreBatch(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleStatusz(const HttpRequest& request);
  HttpResponse HandleDebugTraces(const HttpRequest& request);
  HttpResponse HandleDebugProfile(const HttpRequest& request);
  HttpResponse HandleDebugVars(const HttpRequest& request);

  /// Parses the `x-deadline-us` header; 0 when absent. Negative or
  /// non-numeric values are reported via `error`.
  bool ParseDeadline(const HttpRequest& request, int64_t* deadline_us,
                     HttpResponse* error) const;

  serve::InferenceService* service_;
  HttpServer* server_;
  ScoringAppConfig config_;
};

}  // namespace net
}  // namespace dbg4eth

#endif  // DBG4ETH_NET_SCORING_APP_H_
