#ifndef DBG4ETH_NET_SERVER_H_
#define DBG4ETH_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/http.h"
#include "obs/metrics.h"

namespace dbg4eth {
namespace net {

/// \brief Knobs of the HTTP server (see DESIGN.md "Network layer").
struct HttpServerConfig {
  /// Bind address; the default serves loopback only (tests, benches, the
  /// demo). Bind 0.0.0.0 explicitly to expose the service.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Event-loop threads; connections are assigned round-robin at accept.
  int num_loops = 2;
  /// Handler pool: request handlers run here, never on an event loop, so
  /// a slow handler (a cold score) cannot stall other connections' I/O.
  int num_handler_threads = 4;
  /// Pending handler tasks beyond the running ones; when full, new
  /// requests are shed with 503 instead of queueing without bound.
  size_t handler_queue_capacity = 256;
  /// Open-connection cap; accepts beyond it get a canned 503 and close.
  int max_connections = 1024;
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1 << 20;
  /// A connection with a partially received request older than this is
  /// answered 408 and closed (slowloris shedding).
  int64_t read_timeout_us = 10'000'000;
  /// An idle keep-alive connection older than this is closed.
  int64_t idle_timeout_us = 60'000'000;
  /// A connection stuck mid-write longer than this is closed.
  int64_t write_timeout_us = 10'000'000;
  /// Graceful-shutdown bound: in-flight requests get this long to finish
  /// and flush before remaining connections are force-closed.
  int64_t drain_deadline_us = 5'000'000;
  /// Timeout-sweep cadence (also the epoll_wait tick).
  int64_t sweep_interval_us = 50'000;
  /// Emit one structured access-log line per finished request (method,
  /// route, status, duration, trace id, shed/deadline flags) through the
  /// shear-free logging path. Off by default: the line is cheap but the
  /// serving benches measure the quiet path.
  bool access_log = false;
};

/// One access-log line (no trailing newline), e.g.:
///   http_access method=POST route=/v1/score code=200 duration_us=1234.5
///       trace_id=4bf9... shed=0 deadline=0
/// `shed` covers 429/503 (load rejected), `deadline` 408/504 (time ran
/// out). Factored out of the server so tests can pin the format.
std::string FormatAccessLogLine(const std::string& method,
                                const std::string& route, int code,
                                double duration_us,
                                const std::string& trace_id);

/// \brief Non-blocking, epoll-driven HTTP/1.1 server.
///
/// Architecture (one acceptor + N event loops + a handler pool):
///   - The acceptor thread owns the listen socket; accepted connections
///     are handed round-robin to an event loop through a mutex-guarded
///     inbox plus an eventfd wake.
///   - Each event loop owns its connections outright (their state is
///     touched by no other thread): a level-triggered epoll drives a
///     per-connection state machine reading -> handling -> writing ->
///     (keep-alive) reading, with incremental request parsing, pipelined
///     request support, and a periodic sweep enforcing read/idle/write
///     timeouts.
///   - Parsed requests are dispatched to the handler pool; the loop stops
///     reading the connection (poll for peer-close only) until the
///     handler's response comes back through the loop's inbox. A full
///     handler queue sheds the request with 503 immediately.
///
/// Graceful shutdown: Shutdown() closes the listener, lets every
/// in-flight request finish and flush within `drain_deadline_us`, then
/// closes whatever remains and joins all threads. Idempotent.
///
/// Metrics (global registry): `net_connections` (open, gauge),
/// `net_connections_total`, `net_requests_total{route,code}`,
/// `net_request_us{route}`, `net_parse_errors_total`,
/// `net_timeouts_total{kind}`, `net_client_aborts_total`,
/// `net_shed_total`, `net_accept_errors_total`.
///
/// Failpoints: `net.accept` (accepted socket dropped), `net.conn_read`,
/// `net.conn_write` (connection torn down at the read/write site).
class HttpServer {
 public:
  /// Request handler; runs on the handler pool, may block. The request
  /// object stays valid for the handler's whole lifetime even if the
  /// client disconnects mid-handling.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(const HttpServerConfig& config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-match route. Call before Start (the table is
  /// read-only once the loops run). A path registered under a different
  /// method yields 405 for the others.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Binds, listens and spawns the acceptor + event-loop threads.
  Status Start();

  /// Graceful drain (see class comment). Safe to call from any thread.
  void Shutdown();

  /// Bound port (after Start; the ephemeral port when config.port == 0).
  uint16_t port() const { return port_; }
  /// "host:port" of the listener.
  std::string address() const;

  int open_connections() const { return open_connections_.load(); }
  /// Total requests answered (any status) since Start.
  uint64_t requests_served() const { return requests_served_.load(); }

  const HttpServerConfig& config() const { return config_; }

 private:
  struct RouteEntry {
    std::string method;
    std::string path;
    Handler handler;
    obs::Histogram* request_us = nullptr;
  };

  /// One connection's state; owned and touched only by its event loop.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    HttpParser parser;
    std::string write_buffer;
    size_t write_offset = 0;
    bool close_after_write = false;
    bool handler_inflight = false;
    bool want_write = false;
    /// Keep-alive decision of the request currently being handled.
    bool request_keep_alive = false;
    std::string route_label;  ///< Of the request currently in flight.
    std::string method;       ///< Of the request currently in flight.
    /// Correlation id of the in-flight request: the client's traceparent
    /// trace id (or sanitized x-request-id), else a freshly generated id.
    /// Stamped as `x-trace-id` on the response — success or error.
    std::string trace_id;
    std::chrono::steady_clock::time_point last_activity;
    std::chrono::steady_clock::time_point request_start;
    uint64_t requests_served = 0;

    explicit Conn(const HttpParserConfig& parser_config)
        : parser(parser_config) {}
  };

  struct Completion {
    uint64_t conn_id = 0;
    HttpResponse response;
  };

  /// One event loop's thread-shared inbox + thread-private connection map.
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;

    std::mutex inbox_mu;
    std::vector<int> pending_fds;
    std::vector<Completion> pending_completions;

    // Loop-thread private.
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
    std::chrono::steady_clock::time_point last_sweep;
  };

  void AcceptLoop();
  void EventLoop(Loop* loop);
  void Wake(Loop* loop);

  void AdoptConnection(Loop* loop, int fd);
  void HandleConnEvent(Loop* loop, Conn* conn, uint32_t events);
  void OnReadable(Loop* loop, Conn* conn);
  /// Advances the parser-driven part of the state machine after new bytes
  /// (or after Reset made pipelined leftovers current).
  void AdvanceParse(Loop* loop, Conn* conn);
  void DispatchRequest(Loop* loop, Conn* conn);
  /// Every response — handler result or synthesized error — funnels
  /// through here: trace-id header stamping, metrics, and the access log
  /// happen exactly once per response.
  void StageResponse(Loop* loop, Conn* conn, HttpResponse response,
                     bool keep_alive);
  void TryWrite(Loop* loop, Conn* conn);
  void FinishWrite(Loop* loop, Conn* conn);
  void CloseConn(Loop* loop, Conn* conn);
  void SweepTimeouts(Loop* loop);
  /// Updates the epoll interest set of `conn` to `events` | RDHUP.
  void UpdateInterest(Loop* loop, Conn* conn, uint32_t events);
  void RecordRequestMetrics(const Conn& conn, int code);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  HttpServerConfig config_;
  HttpParserConfig parser_config_;
  std::vector<RouteEntry> routes_;

  int listen_fd_ = -1;
  int accept_epoll_fd_ = -1;
  int accept_wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};
  std::atomic<int> open_connections_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::mutex shutdown_mu_;  ///< Serializes Shutdown callers.
  bool shut_down_ = false;
  /// Force-close everything at this point of a drain.
  std::chrono::steady_clock::time_point drain_deadline_;

  // Cached instruments (global registry; pointers are stable).
  obs::Gauge* connections_gauge_;
  obs::Counter* connections_total_;
  obs::Counter* accept_errors_total_;
  obs::Counter* accept_rejected_total_;
  obs::Counter* parse_errors_total_;
  obs::Counter* client_aborts_total_;
  obs::Counter* shed_total_;
  obs::Counter* timeouts_read_;
  obs::Counter* timeouts_idle_;
  obs::Counter* timeouts_write_;
  obs::Histogram* request_us_unmatched_;
};

}  // namespace net
}  // namespace dbg4eth

#endif  // DBG4ETH_NET_SERVER_H_
