#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

#include "common/string_util.h"

namespace dbg4eth {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int option, int64_t timeout_us) {
  timeval tv;
  tv.tv_sec = timeout_us / 1'000'000;
  tv.tv_usec = timeout_us % 1'000'000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

HttpClient::HttpClient(std::string host, uint16_t port,
                       const HttpClientConfig& config)
    : host_(std::move(host)), port_(port), config_(config) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  leftover_.clear();
}

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");
  SetTimeout(fd, SO_SNDTIMEO, config_.connect_timeout_us);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host_ + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        ErrnoStatus("connect " + host_ + ":" + StrFormat("%u",
                                                         unsigned{port_}));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_RCVTIMEO, config_.io_timeout_us);
  SetTimeout(fd, SO_SNDTIMEO, config_.io_timeout_us);
  fd_ = fd;
  ++connects_;
  leftover_.clear();
  return Status::OK();
}

Status HttpClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpResponse> HttpClient::Get(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return Request("GET", path, "", headers);
}

Result<HttpResponse> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return Request("POST", path, body, headers);
}

Result<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire = method + " " + path + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + "\r\n";
  for (const auto& header : headers) {
    wire += header.first + ": " + header.second + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    wire += StrFormat("Content-Length: %zu\r\n", body.size());
  }
  wire += "\r\n";
  wire += body;

  const bool reused = fd_ >= 0;
  Result<HttpResponse> result = RoundTrip(wire);
  if (!result.ok() && reused) {
    // The reused keep-alive socket was dead (server idle-closed it);
    // retry once on a fresh connection.
    Disconnect();
    result = RoundTrip(wire);
  }
  return result;
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& wire) {
  DBG4ETH_RETURN_NOT_OK(Connect());
  Status sent = SendRaw(wire);
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  Result<HttpResponse> response = ReadResponse();
  if (!response.ok()) Disconnect();
  return response;
}

Result<HttpResponse> HttpClient::ReadResponse() {
  std::string buffer = std::move(leftover_);
  leftover_.clear();

  // Read until the header block is complete.
  size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (buffer.size() > config_.max_response_bytes) {
      return Status::Internal("response headers exceed limit");
    }
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) return Status::Unavailable("connection closed by server");
    buffer.append(chunk, static_cast<size_t>(n));
  }

  HttpResponse response;
  const std::string status_line = buffer.substr(0, buffer.find("\r\n"));
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (status_line.compare(0, 5, "HTTP/") != 0 || sp1 == std::string::npos) {
    return Status::Internal("malformed status line '" + status_line + "'");
  }
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::Internal("malformed status line '" + status_line + "'");
  }

  size_t content_length = 0;
  bool close_after = false;
  size_t pos = buffer.find("\r\n") + 2;
  while (pos < header_end) {
    size_t eol = buffer.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(line.substr(0, colon));
    const std::string value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      content_length = static_cast<size_t>(std::strtoull(value.c_str(),
                                                         nullptr, 10));
      if (content_length > config_.max_response_bytes) {
        return Status::Internal("response body exceeds limit");
      }
    } else if (name == "connection" && ToLower(value) == "close") {
      close_after = true;
    }
    response.headers.emplace_back(name, value);
  }

  const size_t body_start = header_end + 4;
  while (buffer.size() - body_start < content_length) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) return Status::Unavailable("connection closed mid-body");
    buffer.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer.substr(body_start, content_length);
  leftover_ = buffer.substr(body_start + content_length);

  if (close_after) Disconnect();
  return response;
}

}  // namespace net
}  // namespace dbg4eth
