#include "net/scoring_app.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json_util.h"
#include "common/string_util.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serve/server_stats.h"
#include "serve/types.h"

namespace dbg4eth {
namespace net {

namespace {

/// Renders one ScoreResult (ok or error) as a JSON object.
void WriteScoreResult(const serve::ScoreResult& result,
                      json::JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("address");
  writer->Int(result.address);
  if (result.ok()) {
    writer->Key("score");
    writer->NumberRoundTrip(result.probability);
    writer->Key("probabilities");
    writer->BeginArray();
    writer->NumberRoundTrip(1.0 - result.probability);
    writer->NumberRoundTrip(result.probability);
    writer->EndArray();
    writer->Key("ledger_height");
    writer->UInt(result.ledger_height);
    writer->Key("model_generation");
    writer->UInt(result.model_generation);
    writer->Key("stale");
    writer->Bool(result.stale);
    writer->Key("cache_hit");
    writer->Bool(result.cache_hit);
    writer->Key("retries");
    writer->Int(result.retries);
    if (!result.trace_id.empty()) {
      writer->Key("trace_id");
      writer->String(result.trace_id);
    }
  } else {
    writer->Key("error");
    writer->BeginObject();
    writer->Key("code");
    writer->Int(serve::SuggestedHttpStatus(result.status));
    writer->Key("message");
    writer->String(result.status.ToString());
    writer->EndObject();
  }
  writer->EndObject();
}

}  // namespace

ScoringApp::ScoringApp(serve::InferenceService* service, HttpServer* server,
                       const ScoringAppConfig& config)
    : service_(service), server_(server), config_(config) {
  server_->Route("POST", "/v1/score",
                 [this](const HttpRequest& r) { return HandleScore(r); });
  server_->Route("POST", "/v1/score_batch", [this](const HttpRequest& r) {
    return HandleScoreBatch(r);
  });
  server_->Route("GET", "/metrics",
                 [this](const HttpRequest& r) { return HandleMetrics(r); });
  server_->Route("GET", "/healthz",
                 [this](const HttpRequest& r) { return HandleHealthz(r); });
  server_->Route("GET", "/statusz",
                 [this](const HttpRequest& r) { return HandleStatusz(r); });
  // The debug surface is operator tooling, not client API — and
  // /debug/profile lets any caller pin a handler thread for up to
  // max_profile_seconds. Gated so a deployment bound beyond loopback can
  // turn it off; unregistered routes fall through to the server's 404.
  if (config_.expose_debug_routes) {
    server_->Route("GET", "/debug/traces", [this](const HttpRequest& r) {
      return HandleDebugTraces(r);
    });
    server_->Route("GET", "/debug/profile", [this](const HttpRequest& r) {
      return HandleDebugProfile(r);
    });
    server_->Route("GET", "/debug/vars", [this](const HttpRequest& r) {
      return HandleDebugVars(r);
    });
  }
}

bool ScoringApp::ParseDeadline(const HttpRequest& request,
                               int64_t* deadline_us,
                               HttpResponse* error) const {
  *deadline_us = 0;
  const std::string* header = request.FindHeader("x-deadline-us");
  if (header == nullptr) return true;
  char* end = nullptr;
  const long long parsed = std::strtoll(header->c_str(), &end, 10);
  if (end == header->c_str() || *end != '\0' || parsed < 0) {
    *error = HttpResponse::Error(
        400, "x-deadline-us must be a non-negative integer, got '" +
                 *header + "'");
    return false;
  }
  *deadline_us = std::min<int64_t>(parsed, config_.max_deadline_us);
  return true;
}

HttpResponse ScoringApp::HandleScore(const HttpRequest& request) {
  int64_t deadline_us = 0;
  HttpResponse error;
  if (!ParseDeadline(request, &deadline_us, &error)) return error;

  auto parsed = json::ParseJson(request.body);
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().message());
  }
  const json::JsonValue* address = parsed.ValueOrDie().Find("address");
  if (address == nullptr) {
    return HttpResponse::Error(400, "body must be {\"address\": N}");
  }
  auto id = address->AsInt64();
  if (!id.ok() ||
      id.ValueOrDie() < std::numeric_limits<eth::AccountId>::min() ||
      id.ValueOrDie() > std::numeric_limits<eth::AccountId>::max()) {
    return HttpResponse::Error(400, "address must be a 32-bit integer");
  }

  // The server resolved and injected the canonical trace id at dispatch;
  // riding it into ScoreAsync stamps the cold path's span tree and the
  // latency exemplar with the id the response header already carries.
  const std::string* trace_id = request.FindHeader("x-trace-id");
  const serve::ScoreResult result =
      service_
          ->ScoreAsync(static_cast<eth::AccountId>(id.ValueOrDie()),
                       deadline_us,
                       trace_id != nullptr ? *trace_id : std::string())
          .get();
  std::string body;
  json::JsonWriter writer(&body);
  WriteScoreResult(result, &writer);
  body += "\n";
  return HttpResponse::Json(serve::SuggestedHttpStatus(result.status),
                            std::move(body));
}

HttpResponse ScoringApp::HandleScoreBatch(const HttpRequest& request) {
  int64_t deadline_us = 0;
  HttpResponse error;
  if (!ParseDeadline(request, &deadline_us, &error)) return error;

  auto parsed = json::ParseJson(request.body);
  if (!parsed.ok()) {
    return HttpResponse::Error(400, parsed.status().message());
  }
  const json::JsonValue* addresses = parsed.ValueOrDie().Find("addresses");
  if (addresses == nullptr || !addresses->is_array()) {
    return HttpResponse::Error(400,
                               "body must be {\"addresses\": [N, ...]}");
  }
  if (addresses->items.size() > config_.max_batch_addresses) {
    return HttpResponse::Error(
        413, StrFormat("batch of %zu addresses exceeds limit of %zu",
                       addresses->items.size(),
                       config_.max_batch_addresses));
  }
  std::vector<eth::AccountId> ids;
  ids.reserve(addresses->items.size());
  for (const json::JsonValue& item : addresses->items) {
    auto id = item.AsInt64();
    if (!id.ok() ||
        id.ValueOrDie() < std::numeric_limits<eth::AccountId>::min() ||
        id.ValueOrDie() > std::numeric_limits<eth::AccountId>::max()) {
      return HttpResponse::Error(400,
                                 "addresses must be 32-bit integers");
    }
    ids.push_back(static_cast<eth::AccountId>(id.ValueOrDie()));
  }

  // Fan the whole batch out first so the service can micro-batch it into
  // packed forwards, then gather in order. Every item shares the batch
  // request's trace id: one HTTP request, one correlation id.
  const std::string* trace_header = request.FindHeader("x-trace-id");
  const std::string trace_id =
      trace_header != nullptr ? *trace_header : std::string();
  std::vector<std::future<serve::ScoreResult>> pending;
  pending.reserve(ids.size());
  for (eth::AccountId id : ids) {
    pending.push_back(service_->ScoreAsync(id, deadline_us, trace_id));
  }
  std::string body;
  json::JsonWriter writer(&body);
  writer.BeginObject();
  writer.Key("results");
  writer.BeginArray();
  size_t failures = 0;
  for (auto& future : pending) {
    const serve::ScoreResult result = future.get();
    if (!result.ok()) ++failures;
    WriteScoreResult(result, &writer);
  }
  writer.EndArray();
  writer.Key("failures");
  writer.UInt(failures);
  writer.EndObject();
  body += "\n";
  // Partial failures are reported per item; the batch itself is a 200.
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse ScoringApp::HandleMetrics(const HttpRequest& request) {
  // Exemplars are only legal in OpenMetrics — the classic 0.0.4 text
  // parser treats the '#' after a sample value as a parse error and
  // fails the whole scrape — so the dialect is negotiated: scrapers
  // advertising `Accept: application/openmetrics-text` get exemplars
  // plus the `# EOF` trailer, everyone else gets plain 0.0.4 output.
  const std::string* accept = request.FindHeader("accept");
  const obs::ExpositionFormat format =
      accept != nullptr &&
              accept->find("application/openmetrics-text") !=
                  std::string::npos
          ? obs::ExpositionFormat::kOpenMetrics
          : obs::ExpositionFormat::kPrometheusText;
  HttpResponse response =
      HttpResponse::Text(200, obs::TextExposition(nullptr, format));
  response.SetHeader("Content-Type", obs::ExpositionContentType(format));
  return response;
}

HttpResponse ScoringApp::HandleHealthz(const HttpRequest&) {
  return HttpResponse::Text(200, "ok\n");
}

HttpResponse ScoringApp::HandleDebugTraces(const HttpRequest& request) {
  obs::Tracer* tracer = obs::Tracer::Global();

  const std::string wanted_id = QueryParam(request.query, "id");
  std::vector<obs::SpanNode> traces;
  if (!wanted_id.empty()) {
    std::optional<obs::SpanNode> found = tracer->FindTrace(wanted_id);
    if (!found.has_value()) {
      return HttpResponse::Error(404,
                                 "no retained trace with id '" + wanted_id +
                                     "' (traces are sampled; errors and "
                                     "slow requests are always kept)");
    }
    traces.push_back(*std::move(found));
  } else {
    traces = tracer->Snapshot();
    const std::string min_duration = QueryParam(request.query, "min_duration_us");
    if (!min_duration.empty()) {
      char* end = nullptr;
      const double threshold = std::strtod(min_duration.c_str(), &end);
      if (end == min_duration.c_str() || *end != '\0' || threshold < 0) {
        return HttpResponse::Error(
            400, "min_duration_us must be a non-negative number, got '" +
                     min_duration + "'");
      }
      traces.erase(std::remove_if(traces.begin(), traces.end(),
                                  [threshold](const obs::SpanNode& node) {
                                    return node.duration_us < threshold;
                                  }),
                   traces.end());
    }
    if (QueryParam(request.query, "error") == "1") {
      traces.erase(std::remove_if(traces.begin(), traces.end(),
                                  [](const obs::SpanNode& node) {
                                    return !node.error;
                                  }),
                   traces.end());
    }
  }

  std::string body;
  json::JsonWriter writer(&body);
  writer.BeginObject();
  writer.Key("roots_finished");
  writer.UInt(tracer->roots_finished());
  writer.Key("traces");
  writer.BeginArray();
  for (const obs::SpanNode& node : traces) {
    obs::AppendSpanJson(node, &writer);
  }
  writer.EndArray();
  writer.EndObject();
  body += "\n";
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse ScoringApp::HandleDebugProfile(const HttpRequest& request) {
  double seconds = 1.0;
  const std::string param = QueryParam(request.query, "seconds");
  if (!param.empty()) {
    char* end = nullptr;
    seconds = std::strtod(param.c_str(), &end);
    if (end == param.c_str() || *end != '\0' || seconds <= 0) {
      return HttpResponse::Error(
          400, "seconds must be a positive number, got '" + param + "'");
    }
  }
  seconds = std::min(seconds, config_.max_profile_seconds);

  // The capture blocks this handler thread for `seconds` — acceptable
  // because the handler pool has more threads and scoring keeps flowing.
  std::string folded;
  const Status status = obs::Profiler::Global()->ProfileFor(seconds, &folded);
  if (!status.ok()) {
    // One timer per process: a concurrent capture is a client-retryable
    // conflict; an environment with profiling disabled is a 503.
    const bool busy =
        status.message().find("already in progress") != std::string::npos;
    return HttpResponse::Error(busy ? 409 : 503, status.message());
  }
  return HttpResponse::Text(200, std::move(folded));
}

HttpResponse ScoringApp::HandleDebugVars(const HttpRequest&) {
  std::string body = obs::JsonSnapshot();
  body += "\n";
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse ScoringApp::HandleStatusz(const HttpRequest&) {
  std::string body;
  json::JsonWriter writer(&body);
  writer.BeginObject();
  writer.Key("service");
  writer.Raw(serve::ServerStats::ToJson(service_->StatsSnapshot()));
  writer.Key("model_generation");
  writer.UInt(service_->model_generation());
  writer.Key("ledger_height");
  writer.UInt(service_->ledger_height());
  writer.Key("http");
  writer.BeginObject();
  writer.Key("address");
  writer.String(server_->address());
  writer.Key("open_connections");
  writer.Int(server_->open_connections());
  writer.Key("requests_served");
  writer.UInt(server_->requests_served());
  writer.EndObject();
  writer.Key("obs");
  writer.Raw(obs::JsonSnapshot());
  writer.EndObject();
  body += "\n";
  return HttpResponse::Json(200, std::move(body));
}

}  // namespace net
}  // namespace dbg4eth
