#ifndef DBG4ETH_TENSOR_INIT_H_
#define DBG4ETH_TENSOR_INIT_H_

#include "tensor/matrix.h"

namespace dbg4eth {

class Rng;

namespace ag {

/// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
Matrix XavierUniform(int fan_in, int fan_out, Rng* rng);

/// He/Kaiming normal initialization: N(0, sqrt(2/fan_in)).
Matrix HeNormal(int fan_in, int fan_out, Rng* rng);

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_INIT_H_
