#ifndef DBG4ETH_TENSOR_SERIALIZE_H_
#define DBG4ETH_TENSOR_SERIALIZE_H_

#include <vector>

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace dbg4eth {

/// Writes a matrix (shape + row-major payload).
void WriteMatrix(BinaryWriter* writer, const Matrix& m);

/// Reads a matrix written by WriteMatrix.
Status ReadMatrix(BinaryReader* reader, Matrix* m);

namespace ag {

/// Writes the values of a parameter list (shapes included).
void WriteParameters(BinaryWriter* writer,
                     const std::vector<Tensor>& params);

/// Restores values into an existing parameter list; shapes must match the
/// checkpoint exactly (i.e. the module must be constructed with the same
/// architecture configuration).
Status ReadParameters(BinaryReader* reader, std::vector<Tensor>* params);

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_SERIALIZE_H_
