#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "tensor/inference.h"

namespace dbg4eth {
namespace ag {

namespace {

using internal::TensorNode;

/// Creates a non-leaf node with the given value and parents; requires_grad
/// is inherited from the parents.
Tensor MakeNode(Matrix value, std::vector<Tensor> parents,
                std::function<void(TensorNode*)> backward_fn,
                const char* op_name) {
  if (InferenceArena* arena = internal::ActiveInferenceArena()) {
    // Safety net for ops without an explicit fast-path exit (losses,
    // future additions): under an InferenceScope no tape is ever built.
    return Tensor::FromNode(arena->MakeValueNode(std::move(value)));
  }
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->op_name = op_name;
  bool needs_grad = false;
  node->parents.reserve(parents.size());
  for (const Tensor& p : parents) {
    DBG4ETH_CHECK(p.defined());
    needs_grad = needs_grad || p.node()->requires_grad;
    node->parents.push_back(p.node());
  }
  node->requires_grad = needs_grad;
  if (needs_grad) node->backward_fn = std::move(backward_fn);
  return Tensor::FromNode(std::move(node));
}

Matrix& ParentGrad(TensorNode* node, int i) {
  // All leaf-gradient writes funnel through here; GradAccumTarget swaps in
  // the calling thread's GradientBuffer slot during buffered backward.
  return internal::GradAccumTarget(node->parents[i].get());
}

const Matrix& ParentValue(TensorNode* node, int i) {
  return node->parents[i]->value;
}

bool ParentRequires(TensorNode* node, int i) {
  return node->parents[i]->requires_grad;
}

/// True while an InferenceScope is active on this thread: ops compute the
/// value into arena storage and return early via ValueNode, skipping
/// parent bookkeeping and backward-closure construction entirely.
bool TapeFree() { return internal::ActiveInferenceArena() != nullptr; }

/// Output buffers for the op forwards. On the tape path these match the
/// ops' historical allocations exactly; under an InferenceScope they draw
/// recycled activation storage from the thread's arena. Zeros is for
/// accumulate-style and masked-write kernels, Uninit for kernels that
/// overwrite every entry, CopyOf for copy-then-modify kernels.
Matrix OutZeros(int rows, int cols) {
  if (InferenceArena* arena = internal::ActiveInferenceArena()) {
    return arena->Zeros(rows, cols);
  }
  return Matrix(rows, cols);
}

Matrix OutUninit(int rows, int cols) {
  if (InferenceArena* arena = internal::ActiveInferenceArena()) {
    return arena->Uninit(rows, cols);
  }
  return Matrix(rows, cols);
}

Matrix OutCopy(const Matrix& src) {
  if (InferenceArena* arena = internal::ActiveInferenceArena()) {
    return arena->CopyOf(src);
  }
  return src;
}

/// Finishes an op on the fast path: the computed value becomes a pooled
/// value-only node (no parents, no backward).
Tensor ValueNode(Matrix out) {
  return Tensor::FromNode(
      internal::ActiveInferenceArena()->MakeValueNode(std::move(out)));
}

/// Row-wise softmax of `logits` written into the pre-shaped *out (every
/// entry overwritten). Shared by SoftmaxRowsValue and the SoftmaxRows op
/// so tape and fast-path forwards run the identical loop.
void SoftmaxRowsInto(const Matrix& logits, Matrix* out) {
  for (int r = 0; r < logits.rows(); ++r) {
    double max_v = logits.At(r, 0);
    for (int c = 1; c < logits.cols(); ++c) {
      max_v = std::max(max_v, logits.At(r, c));
    }
    double denom = 0.0;
    for (int c = 0; c < logits.cols(); ++c) {
      denom += std::exp(logits.At(r, c) - max_v);
    }
    for (int c = 0; c < logits.cols(); ++c) {
      out->At(r, c) = std::exp(logits.At(r, c) - max_v) / denom;
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Matrix out = OutZeros(a.rows(), b.cols());
  MatMulAccumulate(a.value(), b.value(), &out);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [](TensorNode* n) {
        const Matrix& g = n->grad;
        if (ParentRequires(n, 0)) {
          // dA = dOut @ B^T
          MatMulTransBAccumulate(g, ParentValue(n, 1), &ParentGrad(n, 0));
        }
        if (ParentRequires(n, 1)) {
          // dB = A^T @ dOut
          MatMulTransAAccumulate(ParentValue(n, 0), g, &ParentGrad(n, 1));
        }
      },
      "matmul");
}

Tensor SpMM(std::shared_ptr<const SparseMatrix> a, const Tensor& x) {
  DBG4ETH_CHECK(a != nullptr);
  Matrix out = OutZeros(a->rows(), x.cols());
  SpMMAccumulate(*a, x.value(), &out);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {x},
      [a](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          ParentGrad(n, 0).AddInPlace(dbg4eth::SpMMTransA(*a, n->grad));
        }
      },
      "spmm");
}

Tensor SpMMTransA(std::shared_ptr<const SparseMatrix> a, const Tensor& x) {
  DBG4ETH_CHECK(a != nullptr);
  Matrix out = OutZeros(a->cols(), x.cols());
  SpMMTransAAccumulate(*a, x.value(), &out);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {x},
      [a](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          SpMMAccumulate(*a, n->grad, &ParentGrad(n, 0));
        }
      },
      "spmm_trans_a");
}

Tensor MaskedSpMatMul(std::shared_ptr<const SparseMatrix> support,
                      const Tensor& alpha, const Tensor& b) {
  DBG4ETH_CHECK(support != nullptr);
  Matrix out = OutZeros(alpha.rows(), b.cols());
  MaskedMatMulAccumulate(*support, alpha.value(), b.value(), &out);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {alpha, b},
      [support](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          MaskedOuterAccumulate(*support, n->grad, ParentValue(n, 1),
                                &ParentGrad(n, 0));
        }
        if (ParentRequires(n, 1)) {
          MaskedTransAccumulate(*support, ParentValue(n, 0), n->grad,
                                &ParentGrad(n, 1));
        }
      },
      "masked_spmatmul");
}

Tensor MaskedAttentionAlpha(std::shared_ptr<const SparseMatrix> support,
                            const Tensor& u, const Tensor& v,
                            double negative_slope) {
  DBG4ETH_CHECK(support != nullptr);
  DBG4ETH_CHECK_EQ(u.cols(), 1);
  DBG4ETH_CHECK_EQ(v.cols(), 1);
  DBG4ETH_CHECK_EQ(support->rows(), u.rows());
  DBG4ETH_CHECK_EQ(support->cols(), v.rows());
  const std::vector<int>& offsets = support->row_offsets();
  const std::vector<int>& col_indices = support->col_indices();
  const Matrix& uv = u.value();
  const Matrix& vv = v.value();
  const double slope = negative_slope;
  // LeakyRelu(u_i + v_j) recomputed per use: cheaper than storing the raw
  // scores, and each evaluation yields the identical double, so the three
  // passes below reproduce MaskedSoftmaxRows(LeakyRelu(PairwiseSum(u, v)))
  // bit for bit (ascending CSR columns == ascending masked columns).
  auto raw_score = [&uv, &vv, slope](int r, int c) {
    const double x = uv.At(r, 0) + vv.At(c, 0);
    return x > 0 ? x : slope * x;
  };
  Matrix out = OutZeros(support->rows(), support->cols());
  for (int r = 0; r < support->rows(); ++r) {
    const int begin = offsets[r];
    const int end = offsets[r + 1];
    if (begin == end) continue;  // all-zero row
    double max_v = -1e300;
    for (int e = begin; e < end; ++e) {
      max_v = std::max(max_v, raw_score(r, col_indices[e]));
    }
    double denom = 0.0;
    for (int e = begin; e < end; ++e) {
      denom += std::exp(raw_score(r, col_indices[e]) - max_v);
    }
    double* orow = out.RowPtr(r);
    for (int e = begin; e < end; ++e) {
      orow[col_indices[e]] = std::exp(raw_score(r, col_indices[e]) - max_v) /
                             denom;
    }
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {u, v},
      [support, slope](TensorNode* n) {
        const bool need_u = ParentRequires(n, 0);
        const bool need_v = ParentRequires(n, 1);
        if (!need_u && !need_v) return;
        const Matrix& g = n->grad;
        const Matrix& alpha = n->value;
        const Matrix& uv = ParentValue(n, 0);
        const Matrix& vv = ParentValue(n, 1);
        Matrix* gu = need_u ? &ParentGrad(n, 0) : nullptr;
        Matrix* gv = need_v ? &ParentGrad(n, 1) : nullptr;
        const std::vector<int>& offsets = support->row_offsets();
        const std::vector<int>& col_indices = support->col_indices();
        for (int r = 0; r < alpha.rows(); ++r) {
          // Softmax Jacobian restricted to the support, then the LeakyRelu
          // derivative routes d(raw score) into u_r and v_c.
          double dot = 0.0;
          for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
            dot += g.At(r, col_indices[e]) * alpha.At(r, col_indices[e]);
          }
          for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
            const int c = col_indices[e];
            const double ds = alpha.At(r, c) * (g.At(r, c) - dot);
            const double x = uv.At(r, 0) + vv.At(c, 0);
            const double draw = ds * (x > 0 ? 1.0 : slope);
            if (gu != nullptr) gu->At(r, 0) += draw;
            if (gv != nullptr) gv->At(c, 0) += draw;
          }
        }
      },
      "masked_attention_alpha");
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Matrix out = OutCopy(a.value());
  out.AddInPlace(b.value());
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) ParentGrad(n, 0).AddInPlace(n->grad);
        if (ParentRequires(n, 1)) ParentGrad(n, 1).AddInPlace(n->grad);
      },
      "add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Matrix out = OutCopy(a.value());
  out.SubInPlace(b.value());
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) ParentGrad(n, 0).AddInPlace(n->grad);
        if (ParentRequires(n, 1)) ParentGrad(n, 1).SubInPlace(n->grad);
      },
      "sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Matrix out = OutCopy(a.value());
  out.MulInPlace(b.value());
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          ParentGrad(n, 0).AddInPlace(dbg4eth::Mul(n->grad, ParentValue(n, 1)));
        }
        if (ParentRequires(n, 1)) {
          ParentGrad(n, 1).AddInPlace(dbg4eth::Mul(n->grad, ParentValue(n, 0)));
        }
      },
      "mul");
}

Tensor ScalarMul(const Tensor& a, double s) {
  Matrix out = OutCopy(a.value());
  out.ScaleInPlace(s);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [s](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          ParentGrad(n, 0).AddInPlace(dbg4eth::Scale(n->grad, s));
        }
      },
      "scalar_mul");
}

Tensor ScalarAdd(const Tensor& a, double s) {
  Matrix out = OutCopy(a.value());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) += s;
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) ParentGrad(n, 0).AddInPlace(n->grad);
      },
      "scalar_add");
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  DBG4ETH_CHECK_EQ(bias.rows(), 1);
  DBG4ETH_CHECK_EQ(bias.cols(), a.cols());
  Matrix out = OutCopy(a.value());
  for (int r = 0; r < out.rows(); ++r) {
    const double* b = bias.value().RowPtr(0);
    double* row = out.RowPtr(r);
    for (int c = 0; c < out.cols(); ++c) row[c] += b[c];
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, bias},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) ParentGrad(n, 0).AddInPlace(n->grad);
        if (ParentRequires(n, 1)) {
          Matrix& bg = ParentGrad(n, 1);
          for (int r = 0; r < n->grad.rows(); ++r) {
            const double* g = n->grad.RowPtr(r);
            for (int c = 0; c < n->grad.cols(); ++c) bg.At(0, c) += g[c];
          }
        }
      },
      "add_row_broadcast");
}

Tensor BroadcastRow(const Tensor& row, int n_rows) {
  DBG4ETH_CHECK_EQ(row.rows(), 1);
  Matrix out = OutUninit(n_rows, row.cols());
  for (int r = 0; r < n_rows; ++r) {
    for (int c = 0; c < row.cols(); ++c) out.At(r, c) = row.value().At(0, c);
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {row},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          Matrix& g = ParentGrad(n, 0);
          for (int r = 0; r < n->grad.rows(); ++r) {
            for (int c = 0; c < n->grad.cols(); ++c) {
              g.At(0, c) += n->grad.At(r, c);
            }
          }
        }
      },
      "broadcast_row");
}

Tensor PairwiseSum(const Tensor& u, const Tensor& v) {
  DBG4ETH_CHECK_EQ(u.cols(), 1);
  DBG4ETH_CHECK_EQ(v.cols(), 1);
  const int n = u.rows();
  const int m = v.rows();
  Matrix out = OutUninit(n, m);
  for (int i = 0; i < n; ++i) {
    const double ui = u.value().At(i, 0);
    for (int j = 0; j < m; ++j) out.At(i, j) = ui + v.value().At(j, 0);
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {u, v},
      [](TensorNode* n_) {
        const Matrix& g = n_->grad;
        if (ParentRequires(n_, 0)) {
          Matrix& gu = ParentGrad(n_, 0);
          for (int i = 0; i < g.rows(); ++i) {
            double acc = 0.0;
            for (int j = 0; j < g.cols(); ++j) acc += g.At(i, j);
            gu.At(i, 0) += acc;
          }
        }
        if (ParentRequires(n_, 1)) {
          Matrix& gv = ParentGrad(n_, 1);
          for (int j = 0; j < g.cols(); ++j) {
            double acc = 0.0;
            for (int i = 0; i < g.rows(); ++i) acc += g.At(i, j);
            gv.At(j, 0) += acc;
          }
        }
      },
      "pairwise_sum");
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  DBG4ETH_CHECK_EQ(av.rows(), bv.rows());
  const int ac = av.cols();
  Matrix out = OutUninit(av.rows(), ac + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    double* orow = out.RowPtr(r);
    std::memcpy(orow, av.RowPtr(r), static_cast<size_t>(ac) * sizeof(double));
    std::memcpy(orow + ac, bv.RowPtr(r),
                static_cast<size_t>(bv.cols()) * sizeof(double));
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [ac](TensorNode* n) {
        const Matrix& g = n->grad;
        if (ParentRequires(n, 0)) {
          Matrix& ga = ParentGrad(n, 0);
          for (int r = 0; r < ga.rows(); ++r) {
            for (int c = 0; c < ac; ++c) ga.At(r, c) += g.At(r, c);
          }
        }
        if (ParentRequires(n, 1)) {
          Matrix& gb = ParentGrad(n, 1);
          for (int r = 0; r < gb.rows(); ++r) {
            for (int c = 0; c < gb.cols(); ++c) gb.At(r, c) += g.At(r, ac + c);
          }
        }
      },
      "concat_cols");
}

Tensor ConcatRows(const Tensor& a, const Tensor& b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  DBG4ETH_CHECK_EQ(av.cols(), bv.cols());
  const int ar = av.rows();
  Matrix out = OutUninit(ar + bv.rows(), av.cols());
  if (!av.empty()) {
    std::memcpy(out.RowPtr(0), av.RowPtr(0), av.size() * sizeof(double));
  }
  if (!bv.empty()) {
    std::memcpy(out.RowPtr(ar), bv.RowPtr(0), bv.size() * sizeof(double));
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a, b},
      [ar](TensorNode* n) {
        const Matrix& g = n->grad;
        if (ParentRequires(n, 0)) {
          Matrix& ga = ParentGrad(n, 0);
          for (int r = 0; r < ar; ++r) {
            for (int c = 0; c < ga.cols(); ++c) ga.At(r, c) += g.At(r, c);
          }
        }
        if (ParentRequires(n, 1)) {
          Matrix& gb = ParentGrad(n, 1);
          for (int r = 0; r < gb.rows(); ++r) {
            for (int c = 0; c < gb.cols(); ++c) gb.At(r, c) += g.At(ar + r, c);
          }
        }
      },
      "concat_rows");
}

Tensor ConcatRowsList(const std::vector<Tensor>& parts) {
  DBG4ETH_CHECK(!parts.empty());
  int total_rows = 0;
  const int cols = parts[0].cols();
  for (const Tensor& p : parts) {
    DBG4ETH_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Matrix out = OutUninit(total_rows, cols);
  int off = 0;
  for (const Tensor& p : parts) {
    const Matrix& v = p.value();
    if (!v.empty()) {
      std::memcpy(out.RowPtr(off), v.RowPtr(0), v.size() * sizeof(double));
    }
    off += v.rows();
  }
  if (TapeFree()) return ValueNode(std::move(out));
  std::vector<int> offsets(parts.size());
  int base = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    offsets[i] = base;
    base += parts[i].rows();
  }
  return MakeNode(
      std::move(out), parts,
      [offsets](TensorNode* n) {
        for (size_t i = 0; i < n->parents.size(); ++i) {
          if (!ParentRequires(n, static_cast<int>(i))) continue;
          Matrix& g = ParentGrad(n, static_cast<int>(i));
          const int base = offsets[i];
          for (int r = 0; r < g.rows(); ++r) {
            for (int c = 0; c < g.cols(); ++c) {
              g.At(r, c) += n->grad.At(base + r, c);
            }
          }
        }
      },
      "concat_rows_list");
}

Tensor SliceRows(const Tensor& a, int begin, int end) {
  const Matrix& av = a.value();
  DBG4ETH_CHECK(begin >= 0 && begin <= end && end <= av.rows());
  Matrix out = OutUninit(end - begin, av.cols());
  if (!out.empty()) {
    std::memcpy(out.RowPtr(0), av.RowPtr(begin), out.size() * sizeof(double));
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [begin](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          Matrix& g = ParentGrad(n, 0);
          for (int r = 0; r < n->grad.rows(); ++r) {
            for (int c = 0; c < n->grad.cols(); ++c) {
              g.At(begin + r, c) += n->grad.At(r, c);
            }
          }
        }
      },
      "slice_rows");
}

Tensor Transpose(const Tensor& a) {
  const Matrix& av = a.value();
  Matrix out = OutUninit(av.cols(), av.rows());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out.At(c, r) = av.At(r, c);
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (ParentRequires(n, 0)) {
          ParentGrad(n, 0).AddInPlace(n->grad.Transposed());
        }
      },
      "transpose");
}

namespace {

/// Shared implementation for element-wise activations: forward maps each
/// entry, backward multiplies the upstream grad by dact(x, y).
template <typename Fwd, typename Bwd>
Tensor ElementwiseOp(const Tensor& a, Fwd fwd, Bwd bwd, const char* name) {
  Matrix out = OutCopy(a.value());
  for (int r = 0; r < out.rows(); ++r) {
    double* row = out.RowPtr(r);
    for (int c = 0; c < out.cols(); ++c) row[c] = fwd(row[c]);
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [bwd](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        const Matrix& x = ParentValue(n, 0);
        const Matrix& y = n->value;
        for (int r = 0; r < g.rows(); ++r) {
          for (int c = 0; c < g.cols(); ++c) {
            g.At(r, c) += n->grad.At(r, c) * bwd(x.At(r, c), y.At(r, c));
          }
        }
      },
      name);
}

}  // namespace

Tensor Relu(const Tensor& a) {
  return ElementwiseOp(
      a, [](double x) { return x > 0 ? x : 0.0; },
      [](double x, double) { return x > 0 ? 1.0 : 0.0; }, "relu");
}

Tensor LeakyRelu(const Tensor& a, double negative_slope) {
  return ElementwiseOp(
      a,
      [negative_slope](double x) { return x > 0 ? x : negative_slope * x; },
      [negative_slope](double x, double) {
        return x > 0 ? 1.0 : negative_slope;
      },
      "leaky_relu");
}

Tensor Elu(const Tensor& a, double alpha) {
  return ElementwiseOp(
      a,
      [alpha](double x) { return x > 0 ? x : alpha * (std::exp(x) - 1.0); },
      [alpha](double x, double y) { return x > 0 ? 1.0 : y + alpha; }, "elu");
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseOp(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; }, "tanh");
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseOp(
      a, [](double x) { return dbg4eth::Sigmoid(x); },
      [](double, double y) { return y * (1.0 - y); }, "sigmoid");
}

Tensor Exp(const Tensor& a) {
  return ElementwiseOp(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; }, "exp");
}

Tensor Log(const Tensor& a, double eps) {
  return ElementwiseOp(
      a, [eps](double x) { return std::log(std::max(x, eps)); },
      [eps](double x, double) { return 1.0 / std::max(x, eps); }, "log");
}

Tensor SoftmaxRows(const Tensor& a) {
  Matrix out = OutUninit(a.rows(), a.cols());
  SoftmaxRowsInto(a.value(), &out);
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        const Matrix& y = n->value;
        for (int r = 0; r < y.rows(); ++r) {
          double dot = 0.0;
          for (int c = 0; c < y.cols(); ++c) {
            dot += n->grad.At(r, c) * y.At(r, c);
          }
          for (int c = 0; c < y.cols(); ++c) {
            g.At(r, c) += y.At(r, c) * (n->grad.At(r, c) - dot);
          }
        }
      },
      "softmax_rows");
}

Tensor MaskedSoftmaxRows(const Tensor& a, const Matrix& mask) {
  DBG4ETH_CHECK(a.value().SameShape(mask));
  Matrix out = OutZeros(a.rows(), a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    double max_v = -1e300;
    bool any = false;
    for (int c = 0; c < a.cols(); ++c) {
      if (mask.At(r, c) != 0.0) {
        any = true;
        max_v = std::max(max_v, a.value().At(r, c));
      }
    }
    if (!any) continue;  // all-zero row
    double denom = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      if (mask.At(r, c) != 0.0) {
        denom += std::exp(a.value().At(r, c) - max_v);
      }
    }
    for (int c = 0; c < a.cols(); ++c) {
      if (mask.At(r, c) != 0.0) {
        out.At(r, c) = std::exp(a.value().At(r, c) - max_v) / denom;
      }
    }
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        // Same Jacobian as softmax, restricted to the support (entries
        // outside the mask have y == 0 so they contribute/receive nothing).
        Matrix& g = ParentGrad(n, 0);
        const Matrix& y = n->value;
        for (int r = 0; r < y.rows(); ++r) {
          double dot = 0.0;
          for (int c = 0; c < y.cols(); ++c) {
            dot += n->grad.At(r, c) * y.At(r, c);
          }
          for (int c = 0; c < y.cols(); ++c) {
            g.At(r, c) += y.At(r, c) * (n->grad.At(r, c) - dot);
          }
        }
      },
      "masked_softmax_rows");
}

Tensor SoftmaxColVector(const Tensor& a) {
  DBG4ETH_CHECK_EQ(a.cols(), 1);
  Tensor as_row = Transpose(a);
  Tensor soft = SoftmaxRows(as_row);
  return Transpose(soft);
}

Tensor SumAll(const Tensor& a) {
  Matrix out = OutUninit(1, 1);
  out.At(0, 0) = a.value().Sum();
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        const double gv = n->grad.At(0, 0);
        for (int r = 0; r < g.rows(); ++r) {
          for (int c = 0; c < g.cols(); ++c) g.At(r, c) += gv;
        }
      },
      "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  const double inv = 1.0 / static_cast<double>(a.value().size());
  return ScalarMul(SumAll(a), inv);
}

Tensor RowSum(const Tensor& a) {
  Matrix out = OutUninit(a.rows(), 1);
  for (int r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (int c = 0; c < a.cols(); ++c) acc += a.value().At(r, c);
    out.At(r, 0) = acc;
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        for (int r = 0; r < g.rows(); ++r) {
          const double gv = n->grad.At(r, 0);
          for (int c = 0; c < g.cols(); ++c) g.At(r, c) += gv;
        }
      },
      "row_sum");
}

Tensor ColMean(const Tensor& a) {
  const int n_rows = a.rows();
  Matrix out = OutUninit(1, a.cols());
  for (int c = 0; c < a.cols(); ++c) {
    double acc = 0.0;
    for (int r = 0; r < n_rows; ++r) acc += a.value().At(r, c);
    out.At(0, c) = acc / n_rows;
  }
  if (TapeFree()) return ValueNode(std::move(out));
  return MakeNode(
      std::move(out), {a},
      [n_rows](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        for (int c = 0; c < g.cols(); ++c) {
          const double gv = n->grad.At(0, c) / n_rows;
          for (int r = 0; r < g.rows(); ++r) g.At(r, c) += gv;
        }
      },
      "col_mean");
}

Tensor MaxPoolRows(const Tensor& a) {
  DBG4ETH_CHECK_GT(a.rows(), 0);
  const Matrix& av = a.value();
  Matrix out = OutUninit(1, av.cols());
  if (TapeFree()) {
    // Value-only: no argmax bookkeeping (that exists for the backward).
    for (int c = 0; c < av.cols(); ++c) {
      double best = av.At(0, c);
      for (int r = 1; r < av.rows(); ++r) {
        if (av.At(r, c) > best) best = av.At(r, c);
      }
      out.At(0, c) = best;
    }
    return ValueNode(std::move(out));
  }
  std::vector<int> argmax(av.cols(), 0);
  for (int c = 0; c < av.cols(); ++c) {
    double best = av.At(0, c);
    int best_r = 0;
    for (int r = 1; r < av.rows(); ++r) {
      if (av.At(r, c) > best) {
        best = av.At(r, c);
        best_r = r;
      }
    }
    out.At(0, c) = best;
    argmax[c] = best_r;
  }
  return MakeNode(
      std::move(out), {a},
      [argmax](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        for (int c = 0; c < g.cols(); ++c) {
          g.At(argmax[c], c) += n->grad.At(0, c);
        }
      },
      "max_pool_rows");
}

Tensor MeanPoolRows(const Tensor& a) { return ColMean(a); }

Tensor SumPoolRows(const Tensor& a) {
  return ScalarMul(ColMean(a), static_cast<double>(a.rows()));
}

Tensor L2NormalizeRows(const Tensor& a, double eps) {
  Matrix out = OutCopy(a.value());
  if (TapeFree()) {
    // Value-only: per-row norm kept in a scalar instead of the vector the
    // backward needs.
    for (int r = 0; r < a.rows(); ++r) {
      double acc = 0.0;
      for (int c = 0; c < a.cols(); ++c) {
        acc += out.At(r, c) * out.At(r, c);
      }
      const double norm = std::sqrt(acc) + eps;
      for (int c = 0; c < a.cols(); ++c) out.At(r, c) /= norm;
    }
    return ValueNode(std::move(out));
  }
  std::vector<double> norms(a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      acc += out.At(r, c) * out.At(r, c);
    }
    norms[r] = std::sqrt(acc) + eps;
    for (int c = 0; c < a.cols(); ++c) out.At(r, c) /= norms[r];
  }
  return MakeNode(
      std::move(out), {a},
      [norms](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        Matrix& g = ParentGrad(n, 0);
        const Matrix& y = n->value;
        for (int r = 0; r < y.rows(); ++r) {
          double dot = 0.0;
          for (int c = 0; c < y.cols(); ++c) {
            dot += n->grad.At(r, c) * y.At(r, c);
          }
          for (int c = 0; c < y.cols(); ++c) {
            g.At(r, c) += (n->grad.At(r, c) - dot * y.At(r, c)) / norms[r];
          }
        }
      },
      "l2_normalize_rows");
}

Tensor Dropout(const Tensor& a, double p, Rng* rng, bool training) {
  if (!training || p <= 0.0) return a;
  DBG4ETH_CHECK_LT(p, 1.0);
  Matrix mask(a.rows(), a.cols());
  const double scale = 1.0 / (1.0 - p);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      mask.At(r, c) = rng->Bernoulli(p) ? 0.0 : scale;
    }
  }
  Matrix out = dbg4eth::Mul(a.value(), mask);
  return MakeNode(
      std::move(out), {a},
      [mask](TensorNode* n) {
        if (!ParentRequires(n, 0)) return;
        ParentGrad(n, 0).AddInPlace(dbg4eth::Mul(n->grad, mask));
      },
      "dropout");
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels) {
  DBG4ETH_CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  const Matrix probs = SoftmaxRowsValue(logits.value());
  const int n = logits.rows();
  double loss = 0.0;
  for (int r = 0; r < n; ++r) {
    DBG4ETH_CHECK(labels[r] >= 0 && labels[r] < logits.cols());
    loss -= std::log(std::max(probs.At(r, labels[r]), 1e-12));
  }
  Matrix out(1, 1);
  out.At(0, 0) = loss / n;
  return MakeNode(
      std::move(out), {logits},
      [probs, labels, n](TensorNode* node) {
        if (!ParentRequires(node, 0)) return;
        Matrix& g = ParentGrad(node, 0);
        const double gv = node->grad.At(0, 0) / n;
        for (int r = 0; r < probs.rows(); ++r) {
          for (int c = 0; c < probs.cols(); ++c) {
            const double delta = (c == labels[r]) ? 1.0 : 0.0;
            g.At(r, c) += gv * (probs.At(r, c) - delta);
          }
        }
      },
      "softmax_cross_entropy");
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<int>& labels) {
  DBG4ETH_CHECK_EQ(logits.cols(), 1);
  DBG4ETH_CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  const int n = logits.rows();
  double loss = 0.0;
  for (int r = 0; r < n; ++r) {
    const double x = logits.value().At(r, 0);
    const double y = static_cast<double>(labels[r]);
    // log(1 + exp(-|x|)) + max(x,0) - x*y, numerically stable.
    loss += std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0) - x * y;
  }
  Matrix out(1, 1);
  out.At(0, 0) = loss / n;
  return MakeNode(
      std::move(out), {logits},
      [labels, n](TensorNode* node) {
        if (!ParentRequires(node, 0)) return;
        Matrix& g = ParentGrad(node, 0);
        const Matrix& x = ParentValue(node, 0);
        const double gv = node->grad.At(0, 0) / n;
        for (int r = 0; r < x.rows(); ++r) {
          const double p = dbg4eth::Sigmoid(x.At(r, 0));
          g.At(r, 0) += gv * (p - labels[r]);
        }
      },
      "bce_with_logits");
}

Tensor MseLoss(const Tensor& a, const Tensor& b) {
  Tensor diff = Sub(a, b);
  return MeanAll(Mul(diff, diff));
}

Matrix SoftmaxRowsValue(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  SoftmaxRowsInto(logits, &out);
  return out;
}

}  // namespace ag
}  // namespace dbg4eth
