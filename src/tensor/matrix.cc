#include "tensor/matrix.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace dbg4eth {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromFlat(int rows, int cols, std::vector<double> values) {
  DBG4ETH_CHECK_EQ(static_cast<size_t>(rows) * cols, values.size());
  // Adopts the vector directly (no zero-filled intermediate): the inference
  // arena routes recycled activation buffers through here.
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(values);
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  return FromFlat(static_cast<int>(values.size()), 1, values);
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  return FromFlat(1, static_cast<int>(values.size()), values);
}

Matrix Matrix::Random(int rows, int cols, Rng* rng, double lo, double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(int rows, int cols, Rng* rng, double mean,
                            double stddev) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Normal(mean, stddev);
  return m;
}

Matrix& Matrix::AddInPlace(const Matrix& other) {
  DBG4ETH_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::SubInPlace(const Matrix& other) {
  DBG4ETH_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::MulInPlace(const Matrix& other) {
  DBG4ETH_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::ScaleInPlace(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out.At(c, r) = At(r, c);
    }
  }
  return out;
}

Matrix Matrix::SliceRows(int begin, int end) const {
  DBG4ETH_CHECK(begin >= 0 && end <= rows_ && begin <= end);
  Matrix out(end - begin, cols_);
  std::memcpy(out.data(), RowPtr(begin),
              static_cast<size_t>(end - begin) * cols_ * sizeof(double));
  return out;
}

Matrix Matrix::GatherRows(const std::vector<int>& indices) const {
  Matrix out(static_cast<int>(indices.size()), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    DBG4ETH_CHECK(indices[i] >= 0 && indices[i] < rows_);
    std::memcpy(out.RowPtr(static_cast<int>(i)), RowPtr(indices[i]),
                static_cast<size_t>(cols_) * sizeof(double));
  }
  return out;
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Matrix::AllFinite() const {
  for (double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::string out = StrFormat("Matrix(%d x %d)\n", rows_, cols_);
  // ~"-12.<precision>" per entry plus brackets; one upfront reservation
  // keeps the loop from re-growing (and re-copying) the string per row.
  out.reserve(out.size() + static_cast<size_t>(rows_) *
                               (static_cast<size_t>(cols_) * (precision + 8) + 4));
  for (int r = 0; r < rows_; ++r) {
    out += "[";
    for (int c = 0; c < cols_; ++c) {
      out += StrFormat(" %.*f", precision, At(r, c));
    }
    out += " ]\n";
  }
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MatMulAccumulate(a, b, &out);
  return out;
}

void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  DBG4ETH_CHECK_EQ(a.cols(), b.rows());
  DBG4ETH_CHECK_EQ(out->rows(), a.rows());
  DBG4ETH_CHECK_EQ(out->cols(), b.cols());
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  // ikj order (streams rows of b and out), register-blocked over 4 rows of
  // a: each row of b loaded once feeds 4 output rows. The zero test moves
  // from per-element to per-block — it still skips the fully-masked rows
  // that attention masking produces (a masked GAT alpha row is all zeros
  // across the whole block only if all 4 rows mask that column, which is
  // the common case for padded/disconnected nodes) without paying a branch
  // per multiply in the dense case.
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a.RowPtr(i);
    const double* a1 = a.RowPtr(i + 1);
    const double* a2 = a.RowPtr(i + 2);
    const double* a3 = a.RowPtr(i + 3);
    double* o0 = out->RowPtr(i);
    double* o1 = out->RowPtr(i + 1);
    double* o2 = out->RowPtr(i + 2);
    double* o3 = out->RowPtr(i + 3);
    for (int kk = 0; kk < k; ++kk) {
      const double v0 = a0[kk];
      const double v1 = a1[kk];
      const double v2 = a2[kk];
      const double v3 = a3[kk];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      const double* brow = b.RowPtr(kk);
      for (int j = 0; j < m; ++j) {
        const double bj = brow[j];
        o0[j] += v0 * bj;
        o1[j] += v1 * bj;
        o2[j] += v2 * bj;
        o3[j] += v3 * bj;
      }
    }
  }
  for (; i < n; ++i) {  // Remainder rows (n % 4), scalar.
    const double* arow = a.RowPtr(i);
    double* orow = out->RowPtr(i);
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(kk);
      for (int j = 0; j < m; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  MatMulTransAAccumulate(a, b, &out);
  return out;
}

void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* out_p) {
  DBG4ETH_CHECK_EQ(a.rows(), b.rows());
  DBG4ETH_CHECK_EQ(out_p->rows(), a.cols());
  DBG4ETH_CHECK_EQ(out_p->cols(), b.cols());
  Matrix& out = *out_p;
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.cols();
  // Four rank-1 updates fused per pass: each output row is loaded and
  // stored once per 4 input rows instead of once per input row. The
  // per-element adds stay in ascending-i order (sequential `acc +=`), so
  // results are bit-identical to the unblocked kernel.
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* a0 = a.RowPtr(i);
    const double* a1 = a.RowPtr(i + 1);
    const double* a2 = a.RowPtr(i + 2);
    const double* a3 = a.RowPtr(i + 3);
    const double* b0 = b.RowPtr(i);
    const double* b1 = b.RowPtr(i + 1);
    const double* b2 = b.RowPtr(i + 2);
    const double* b3 = b.RowPtr(i + 3);
    for (int kk = 0; kk < k; ++kk) {
      const double v0 = a0[kk];
      const double v1 = a1[kk];
      const double v2 = a2[kk];
      const double v3 = a3[kk];
      if (v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0) continue;
      double* orow = out.RowPtr(kk);
      for (int j = 0; j < m; ++j) {
        double acc = orow[j];
        acc += v0 * b0[j];
        acc += v1 * b1[j];
        acc += v2 * b2[j];
        acc += v3 * b3[j];
        orow[j] = acc;
      }
    }
  }
  for (; i < n; ++i) {  // Remainder rows (n % 4), scalar.
    const double* arow = a.RowPtr(i);
    const double* brow = b.RowPtr(i);
    for (int kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(kk);
      for (int j = 0; j < m; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  MatMulTransBAccumulate(a, b, &out);
  return out;
}

void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* out_p) {
  DBG4ETH_CHECK_EQ(a.cols(), b.cols());
  DBG4ETH_CHECK_EQ(out_p->rows(), a.rows());
  DBG4ETH_CHECK_EQ(out_p->cols(), b.rows());
  Matrix& out = *out_p;
  const int n = a.rows();
  const int k = a.cols();
  const int m = b.rows();
  // 4 independent dot products per pass over a's row: arow[kk] is loaded
  // once per 4 output columns, and the 4 accumulator chains break the
  // add-latency dependency of a single running sum.
  for (int i = 0; i < n; ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      const double* b0 = b.RowPtr(j);
      const double* b1 = b.RowPtr(j + 1);
      const double* b2 = b.RowPtr(j + 2);
      const double* b3 = b.RowPtr(j + 3);
      double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        c0 += av * b0[kk];
        c1 += av * b1[kk];
        c2 += av * b2[kk];
        c3 += av * b3[kk];
      }
      orow[j] += c0;
      orow[j + 1] += c1;
      orow[j + 2] += c2;
      orow[j + 3] += c3;
    }
    for (; j < m; ++j) {  // Remainder columns (m % 4), scalar.
      const double* brow = b.RowPtr(j);
      double acc = 0.0;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] += acc;
    }
  }
}

Matrix Add(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.AddInPlace(b);
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.SubInPlace(b);
  return out;
}

Matrix Mul(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out.MulInPlace(b);
  return out;
}

Matrix Scale(const Matrix& a, double s) {
  Matrix out = a;
  out.ScaleInPlace(s);
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  DBG4ETH_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int r = 0; r < a.rows(); ++r) {
    std::memcpy(out.RowPtr(r), a.RowPtr(r),
                static_cast<size_t>(a.cols()) * sizeof(double));
    std::memcpy(out.RowPtr(r) + a.cols(), b.RowPtr(r),
                static_cast<size_t>(b.cols()) * sizeof(double));
  }
  return out;
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  DBG4ETH_CHECK_EQ(a.cols(), b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::memcpy(out.data(), a.data(), a.size() * sizeof(double));
  std::memcpy(out.RowPtr(a.rows()), b.data(), b.size() * sizeof(double));
  return out;
}

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (!a.SameShape(b)) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (std::fabs(a.At(r, c) - b.At(r, c)) > tol) return false;
    }
  }
  return true;
}

}  // namespace dbg4eth
