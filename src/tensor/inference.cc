#include "tensor/inference.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace dbg4eth {
namespace ag {
namespace {

std::atomic<bool> g_fast_path_enabled{true};

thread_local InferenceArena* t_active_arena = nullptr;

}  // namespace

std::shared_ptr<internal::TensorNode> InferenceArena::MakeValueNode(
    Matrix value) {
  ++pass_stats_.nodes;
  if (cursor_ == nodes_.size()) {
    nodes_.push_back(std::make_shared<internal::TensorNode>());
    ++pass_stats_.fresh_nodes;
  }
  std::shared_ptr<internal::TensorNode>& node = nodes_[cursor_++];
  node->value = std::move(value);
  return node;
}

Matrix InferenceArena::Zeros(int rows, int cols) {
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  std::vector<double> buf = AcquireBuffer(n);
  buf.assign(n, 0.0);
  return Matrix::FromFlat(rows, cols, std::move(buf));
}

Matrix InferenceArena::Uninit(int rows, int cols) {
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  std::vector<double> buf = AcquireBuffer(n);
  buf.resize(n);
  return Matrix::FromFlat(rows, cols, std::move(buf));
}

Matrix InferenceArena::CopyOf(const Matrix& src) {
  const size_t n = static_cast<size_t>(src.rows()) *
                   static_cast<size_t>(src.cols());
  std::vector<double> buf = AcquireBuffer(n);
  buf.resize(n);
  if (n > 0) {
    std::memcpy(buf.data(), src.RowPtr(0), n * sizeof(double));
  }
  return Matrix::FromFlat(src.rows(), src.cols(), std::move(buf));
}

void InferenceArena::BeginPass() {
  for (size_t i = 0; i < cursor_; ++i) {
    std::shared_ptr<internal::TensorNode>& node = nodes_[i];
    if (node.use_count() > 1) {
      // A caller still holds a handle from the previous pass (e.g. a
      // returned embedding). Abandon the node to its holders and put a
      // fresh one in the pool slot so their value stays intact.
      node = std::make_shared<internal::TensorNode>();
      ++pass_stats_.fresh_nodes;
      continue;
    }
    std::vector<double> buf = node->value.TakeData();
    if (buf.capacity() > 0) {
      free_buffers_.emplace(buf.capacity(), std::move(buf));
    }
    node->grad = Matrix();
    node->requires_grad = false;
  }
  cursor_ = 0;
  pass_stats_ = PassStats();
}

std::vector<double> InferenceArena::AcquireBuffer(size_t n) {
  ++pass_stats_.buffers;
  auto it = free_buffers_.lower_bound(n);
  if (it != free_buffers_.end()) {
    std::vector<double> buf = std::move(it->second);
    free_buffers_.erase(it);
    return buf;
  }
  ++pass_stats_.fresh_buffers;
  pass_stats_.fresh_bytes += n * sizeof(double);
  owned_bytes_ += n * sizeof(double);
  std::vector<double> buf;
  buf.reserve(n);
  return buf;
}

InferenceArena* InferenceArena::ThreadLocal() {
  static thread_local InferenceArena arena;
  return &arena;
}

InferenceScope::InferenceScope() {
  if (!InferenceFastPathEnabled() || t_active_arena != nullptr) return;
  bound_ = InferenceArena::ThreadLocal();
  t_active_arena = bound_;
  bound_->BeginPass();
}

InferenceScope::InferenceScope(InferenceArena* arena) {
  DBG4ETH_CHECK(arena != nullptr);
  if (!InferenceFastPathEnabled() || t_active_arena != nullptr) return;
  bound_ = arena;
  t_active_arena = bound_;
  bound_->BeginPass();
}

InferenceScope::~InferenceScope() {
  if (bound_ != nullptr) {
    t_active_arena = nullptr;
  }
}

void SetInferenceFastPathEnabled(bool enabled) {
  g_fast_path_enabled.store(enabled, std::memory_order_relaxed);
}

bool InferenceFastPathEnabled() {
  return g_fast_path_enabled.load(std::memory_order_relaxed);
}

namespace internal {

InferenceArena* ActiveInferenceArena() { return t_active_arena; }

}  // namespace internal

}  // namespace ag
}  // namespace dbg4eth
