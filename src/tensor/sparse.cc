#include "tensor/sparse.h"

#include <cmath>
#include <map>
#include <tuple>
#include <utility>

#include "common/logging.h"

namespace dbg4eth {

SparseMatrix SparseMatrix::FromDense(const Matrix& dense,
                                     double zero_tolerance) {
  SparseMatrix out;
  out.rows_ = dense.rows();
  out.cols_ = dense.cols();
  out.row_offsets_.assign(1, 0);
  out.row_offsets_.reserve(dense.rows() + 1);
  for (int r = 0; r < dense.rows(); ++r) {
    const double* row = dense.RowPtr(r);
    for (int c = 0; c < dense.cols(); ++c) {
      if (std::fabs(row[c]) > zero_tolerance) {
        out.col_indices_.push_back(c);
        out.values_.push_back(row[c]);
      }
    }
    out.row_offsets_.push_back(static_cast<int>(out.values_.size()));
  }
  return out;
}

SparseMatrix SparseMatrix::FromTriplets(
    int rows, int cols,
    const std::vector<std::tuple<int, int, double>>& triplets) {
  // (row, col) map gives sorted CSR order and sums duplicates.
  std::map<std::pair<int, int>, double> entries;
  for (const auto& [r, c, v] : triplets) {
    DBG4ETH_CHECK(r >= 0 && r < rows && c >= 0 && c < cols);
    entries[{r, c}] += v;
  }
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_offsets_.assign(1, 0);
  out.row_offsets_.reserve(rows + 1);
  out.col_indices_.reserve(entries.size());
  out.values_.reserve(entries.size());
  auto it = entries.begin();
  for (int r = 0; r < rows; ++r) {
    for (; it != entries.end() && it->first.first == r; ++it) {
      out.col_indices_.push_back(it->first.second);
      out.values_.push_back(it->second);
    }
    out.row_offsets_.push_back(static_cast<int>(out.values_.size()));
  }
  return out;
}

SparseMatrix SparseMatrix::FromCsr(int rows, int cols,
                                   std::vector<int> row_offsets,
                                   std::vector<int> col_indices,
                                   std::vector<double> values) {
  DBG4ETH_CHECK_EQ(row_offsets.size(), static_cast<size_t>(rows) + 1);
  DBG4ETH_CHECK_EQ(row_offsets.front(), 0);
  DBG4ETH_CHECK_EQ(row_offsets.back(), static_cast<int>(values.size()));
  DBG4ETH_CHECK_EQ(col_indices.size(), values.size());
  for (int r = 0; r < rows; ++r) {
    DBG4ETH_CHECK(row_offsets[r] <= row_offsets[r + 1]);
    for (int e = row_offsets[r]; e < row_offsets[r + 1]; ++e) {
      DBG4ETH_CHECK(col_indices[e] >= 0 && col_indices[e] < cols);
      DBG4ETH_CHECK(e == row_offsets[r] || col_indices[e - 1] < col_indices[e])
          << "column indices must be ascending within a row";
    }
  }
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_offsets_ = std::move(row_offsets);
  out.col_indices_ = std::move(col_indices);
  out.values_ = std::move(values);
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    double* orow = out.RowPtr(r);
    for (int e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
      orow[col_indices_[e]] += values_[e];
    }
  }
  return out;
}

Matrix SpMM(const SparseMatrix& a, const Matrix& x) {
  Matrix out(a.rows(), x.cols());
  SpMMAccumulate(a, x, &out);
  return out;
}

void SpMMAccumulate(const SparseMatrix& a, const Matrix& x, Matrix* out) {
  DBG4ETH_CHECK_EQ(a.cols(), x.rows());
  DBG4ETH_CHECK_EQ(out->rows(), a.rows());
  DBG4ETH_CHECK_EQ(out->cols(), x.cols());
  const std::vector<int>& offsets = a.row_offsets();
  const std::vector<int>& cols = a.col_indices();
  const std::vector<double>& vals = a.values();
  const int m = x.cols();
  for (int r = 0; r < a.rows(); ++r) {
    double* orow = out->RowPtr(r);
    for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
      const double v = vals[e];
      const double* xrow = x.RowPtr(cols[e]);
      for (int j = 0; j < m; ++j) {
        orow[j] += v * xrow[j];
      }
    }
  }
}

Matrix SpMMTransA(const SparseMatrix& a, const Matrix& x) {
  Matrix out(a.cols(), x.cols());
  SpMMTransAAccumulate(a, x, &out);
  return out;
}

void SpMMTransAAccumulate(const SparseMatrix& a, const Matrix& x,
                          Matrix* out) {
  DBG4ETH_CHECK_EQ(a.rows(), x.rows());
  DBG4ETH_CHECK_EQ(out->rows(), a.cols());
  DBG4ETH_CHECK_EQ(out->cols(), x.cols());
  const std::vector<int>& offsets = a.row_offsets();
  const std::vector<int>& cols = a.col_indices();
  const std::vector<double>& vals = a.values();
  const int m = x.cols();
  // Scatter form: entry (r, c) of a contributes a rank-1 update of x's
  // row r into out's row c.
  for (int r = 0; r < a.rows(); ++r) {
    const double* xrow = x.RowPtr(r);
    for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
      const double v = vals[e];
      double* orow = out->RowPtr(cols[e]);
      for (int j = 0; j < m; ++j) {
        orow[j] += v * xrow[j];
      }
    }
  }
}

Matrix MaskedMatMul(const SparseMatrix& support, const Matrix& a,
                    const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  MaskedMatMulAccumulate(support, a, b, &out);
  return out;
}

void MaskedMatMulAccumulate(const SparseMatrix& support, const Matrix& a,
                            const Matrix& b, Matrix* out) {
  DBG4ETH_CHECK_EQ(support.rows(), a.rows());
  DBG4ETH_CHECK_EQ(support.cols(), a.cols());
  DBG4ETH_CHECK_EQ(a.cols(), b.rows());
  DBG4ETH_CHECK_EQ(out->rows(), a.rows());
  DBG4ETH_CHECK_EQ(out->cols(), b.cols());
  const std::vector<int>& offsets = support.row_offsets();
  const std::vector<int>& cols = support.col_indices();
  const int m = b.cols();
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    double* orow = out->RowPtr(r);
    for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
      const int k = cols[e];
      const double v = arow[k];
      const double* brow = b.RowPtr(k);
      for (int j = 0; j < m; ++j) {
        orow[j] += v * brow[j];
      }
    }
  }
}

void MaskedOuterAccumulate(const SparseMatrix& support, const Matrix& dout,
                           const Matrix& b, Matrix* da) {
  DBG4ETH_CHECK_EQ(support.rows(), da->rows());
  DBG4ETH_CHECK_EQ(support.cols(), da->cols());
  DBG4ETH_CHECK_EQ(dout.rows(), da->rows());
  DBG4ETH_CHECK_EQ(b.rows(), da->cols());
  DBG4ETH_CHECK_EQ(dout.cols(), b.cols());
  const std::vector<int>& offsets = support.row_offsets();
  const std::vector<int>& cols = support.col_indices();
  const int m = dout.cols();
  for (int r = 0; r < da->rows(); ++r) {
    const double* drow = dout.RowPtr(r);
    double* garow = da->RowPtr(r);
    for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
      const int k = cols[e];
      const double* brow = b.RowPtr(k);
      double acc = 0.0;
      for (int j = 0; j < m; ++j) {
        acc += drow[j] * brow[j];
      }
      garow[k] += acc;
    }
  }
}

void MaskedTransAccumulate(const SparseMatrix& support, const Matrix& a,
                           const Matrix& dout, Matrix* db) {
  DBG4ETH_CHECK_EQ(support.rows(), a.rows());
  DBG4ETH_CHECK_EQ(support.cols(), a.cols());
  DBG4ETH_CHECK_EQ(db->rows(), a.cols());
  DBG4ETH_CHECK_EQ(db->cols(), dout.cols());
  DBG4ETH_CHECK_EQ(dout.rows(), a.rows());
  const std::vector<int>& offsets = support.row_offsets();
  const std::vector<int>& cols = support.col_indices();
  const int m = dout.cols();
  // Scatter form mirroring SpMMTransA: ascending r keeps each output
  // row's accumulation in the dense kernel's order.
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.RowPtr(r);
    const double* drow = dout.RowPtr(r);
    for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
      const double v = arow[cols[e]];
      double* orow = db->RowPtr(cols[e]);
      for (int j = 0; j < m; ++j) {
        orow[j] += v * drow[j];
      }
    }
  }
}

}  // namespace dbg4eth
