#ifndef DBG4ETH_TENSOR_TENSOR_H_
#define DBG4ETH_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.h"

namespace dbg4eth {
namespace ag {

class Tensor;
class GradientBuffer;

namespace internal {

/// One node of the dynamic computation graph built by the ops in ops.h.
struct TensorNode {
  /// Counted constructor: every heap-allocated node bumps the process-wide
  /// counter behind NodeAllocationCount(), which the fast-path tests use to
  /// assert the inference path allocates zero autograd nodes.
  TensorNode();

  Matrix value;
  Matrix grad;  // allocated lazily by EnsureGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(TensorNode*)> backward_fn;
  std::string op_name;

  /// Allocates (zeroed) grad storage if absent; keeps existing contents so
  /// that repeated Backward() calls accumulate into parameter gradients.
  void EnsureGrad();
  /// EnsureGrad + zero, skipping the redundant fill when the grad matrix
  /// was just allocated (fresh tape nodes — the common case).
  void EnsureZeroedGrad();

  /// A leaf holds no backward function and no parents — it is a parameter
  /// or constant fed into the tape, and (for parameters) potentially shared
  /// across threads.
  bool is_leaf() const { return parents.empty(); }
};

/// Where backward passes accumulate `node`'s gradient right now: the
/// calling thread's active GradientBuffer slot when one is bound and the
/// node is a shared leaf, `node->grad` otherwise. Every gradient write in
/// ops.cc funnels through this (via ParentGrad), which is what makes the
/// buffered backward below race-free without locking.
Matrix& GradAccumTarget(TensorNode* node);

/// Total TensorNode heap allocations since process start (monotonic,
/// relaxed). Diff around a forward pass to measure tape pressure; the
/// inference fast path must leave this unchanged in steady state.
uint64_t NodeAllocationCount();

}  // namespace internal

/// \brief Thread-local accumulation target for leaf (parameter) gradients.
///
/// `Tensor::Backward(GradientBuffer*)` routes every leaf-gradient write of
/// that backward pass into this buffer instead of the nodes' shared `grad`
/// matrices. Worker threads each own one buffer, run forward+backward on
/// their instances, and the main thread then folds the buffers into the
/// real parameter gradients with `ReduceInto()` — in a fixed (instance)
/// order, so the summed gradient is independent of thread count and
/// scheduling.
///
/// Not internally synchronized: Slot() runs on the owning thread during
/// backward; ReduceInto()/Clear() run after the fork-join barrier.
class GradientBuffer {
 public:
  /// Accumulation slot for `node`, created zeroed on first use.
  Matrix& Slot(internal::TensorNode* node);

  /// Adds every slot into its node's `grad` (allocating grads as needed).
  /// Does not clear the buffer.
  void ReduceInto();

  void Clear() { slots_.clear(); }
  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<internal::TensorNode*, Matrix> slots_;
};

/// \brief Value-semantic handle to a node of the autograd tape.
///
/// Building blocks live in ops.h; calling Backward() on a scalar output
/// back-propagates through every reachable node that requires gradients.
class Tensor {
 public:
  /// Null tensor (no node). Most APIs require a non-null tensor.
  Tensor() = default;
  /// Leaf tensor holding `value`.
  explicit Tensor(Matrix value, bool requires_grad = false);

  /// Convenience factories.
  static Tensor Constant(Matrix value) { return Tensor(std::move(value)); }
  static Tensor Parameter(Matrix value) {
    return Tensor(std::move(value), /*requires_grad=*/true);
  }

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  Matrix& mutable_value();
  /// Gradient; CHECK-fails if never populated.
  const Matrix& grad() const;
  bool has_grad() const;
  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Zeroes this tensor's gradient buffer (allocating it if needed).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this tensor. The tensor must be
  /// a 1x1 scalar; its gradient is seeded with 1.
  void Backward() { Backward(nullptr); }

  /// Backward pass that accumulates leaf (parameter) gradients into
  /// `buffer` instead of the shared `grad` matrices (see GradientBuffer).
  /// With a null buffer this is the plain Backward(). The buffer binding is
  /// thread-local and lasts only for the duration of the call.
  void Backward(GradientBuffer* buffer);

  /// Value of a 1x1 tensor.
  double ScalarValue() const;

  /// Internal: used by ops to construct non-leaf nodes.
  static Tensor FromNode(std::shared_ptr<internal::TensorNode> node);
  const std::shared_ptr<internal::TensorNode>& node() const { return node_; }

 private:
  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_TENSOR_H_
