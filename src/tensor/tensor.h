#ifndef DBG4ETH_TENSOR_TENSOR_H_
#define DBG4ETH_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace dbg4eth {
namespace ag {

class Tensor;

namespace internal {

/// One node of the dynamic computation graph built by the ops in ops.h.
struct TensorNode {
  Matrix value;
  Matrix grad;  // allocated lazily by EnsureGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(TensorNode*)> backward_fn;
  std::string op_name;

  /// Allocates (zeroed) grad storage if absent; keeps existing contents so
  /// that repeated Backward() calls accumulate into parameter gradients.
  void EnsureGrad();
};

}  // namespace internal

/// \brief Value-semantic handle to a node of the autograd tape.
///
/// Building blocks live in ops.h; calling Backward() on a scalar output
/// back-propagates through every reachable node that requires gradients.
class Tensor {
 public:
  /// Null tensor (no node). Most APIs require a non-null tensor.
  Tensor() = default;
  /// Leaf tensor holding `value`.
  explicit Tensor(Matrix value, bool requires_grad = false);

  /// Convenience factories.
  static Tensor Constant(Matrix value) { return Tensor(std::move(value)); }
  static Tensor Parameter(Matrix value) {
    return Tensor(std::move(value), /*requires_grad=*/true);
  }

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  Matrix& mutable_value();
  /// Gradient; CHECK-fails if never populated.
  const Matrix& grad() const;
  bool has_grad() const;
  bool requires_grad() const;

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  /// Zeroes this tensor's gradient buffer (allocating it if needed).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this tensor. The tensor must be
  /// a 1x1 scalar; its gradient is seeded with 1.
  void Backward();

  /// Value of a 1x1 tensor.
  double ScalarValue() const;

  /// Internal: used by ops to construct non-leaf nodes.
  static Tensor FromNode(std::shared_ptr<internal::TensorNode> node);
  const std::shared_ptr<internal::TensorNode>& node() const { return node_; }

 private:
  std::shared_ptr<internal::TensorNode> node_;
};

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_TENSOR_H_
