#include "tensor/optimizer.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "tensor/serialize.h"

namespace dbg4eth {
namespace ag {

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    DBG4ETH_CHECK(p.defined());
    DBG4ETH_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

void Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (Tensor& p : params_) {
    if (!p.has_grad()) continue;
    const double n = p.grad().Norm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total <= max_norm || total == 0.0) return;
  const double scale = max_norm / total;
  for (Tensor& p : params_) {
    if (!p.has_grad()) continue;
    p.node()->grad.ScaleInPlace(scale);
  }
}

void Optimizer::SaveState(BinaryWriter* writer) const {
  writer->WriteString("opt_stateless");
}

Status Optimizer::LoadState(BinaryReader* reader) {
  return reader->ExpectTag("opt_stateless");
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double weight_decay)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (Tensor& p : params_) {
    if (!p.has_grad()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& grad = p.grad();
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double g = grad.At(r, c) + weight_decay_ * value.At(r, c);
        value.At(r, c) -= lr_ * g;
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& grad = p.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double g = grad.At(r, c) + weight_decay_ * value.At(r, c);
        m.At(r, c) = beta1_ * m.At(r, c) + (1.0 - beta1_) * g;
        v.At(r, c) = beta2_ * v.At(r, c) + (1.0 - beta2_) * g * g;
        const double m_hat = m.At(r, c) / bc1;
        const double v_hat = v.At(r, c) / bc2;
        value.At(r, c) -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
      }
    }
  }
}

void Adam::SaveState(BinaryWriter* writer) const {
  writer->WriteString("opt_adam");
  writer->WriteU64(static_cast<uint64_t>(t_));
  writer->WriteU32(static_cast<uint32_t>(m_.size()));
  for (size_t i = 0; i < m_.size(); ++i) {
    WriteMatrix(writer, m_[i]);
    WriteMatrix(writer, v_[i]);
  }
}

Status Adam::LoadState(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("opt_adam"));
  uint64_t t = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU64(&t));
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  if (count != params_.size()) {
    return Status::InvalidArgument(StrFormat(
        "Adam state holds %u parameter slots, optimizer has %zu", count,
        params_.size()));
  }
  // Everything is read and validated into temporaries first, so a corrupt
  // or mismatched stream never leaves the optimizer half-restored.
  std::vector<Matrix> m, v;
  m.reserve(count);
  v.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Matrix mi, vi;
    DBG4ETH_RETURN_NOT_OK(ReadMatrix(reader, &mi));
    DBG4ETH_RETURN_NOT_OK(ReadMatrix(reader, &vi));
    const Matrix& value = params_[i].value();
    if (mi.rows() != value.rows() || mi.cols() != value.cols() ||
        vi.rows() != value.rows() || vi.cols() != value.cols()) {
      return Status::InvalidArgument(StrFormat(
          "Adam state shape mismatch at parameter %u: state %dx%d / %dx%d, "
          "parameter %dx%d",
          i, mi.rows(), mi.cols(), vi.rows(), vi.cols(), value.rows(),
          value.cols()));
    }
    m.push_back(std::move(mi));
    v.push_back(std::move(vi));
  }
  t_ = static_cast<int64_t>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

}  // namespace ag
}  // namespace dbg4eth
