#include "tensor/init.h"

#include <cmath>

#include "common/rng.h"

namespace dbg4eth {
namespace ag {

Matrix XavierUniform(int fan_in, int fan_out, Rng* rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Matrix::Random(fan_in, fan_out, rng, -a, a);
}

Matrix HeNormal(int fan_in, int fan_out, Rng* rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return Matrix::RandomNormal(fan_in, fan_out, rng, 0.0, stddev);
}

}  // namespace ag
}  // namespace dbg4eth
