#ifndef DBG4ETH_TENSOR_MATRIX_H_
#define DBG4ETH_TENSOR_MATRIX_H_

#include <string>
#include <vector>

// Opt-in bounds checking for the hot accessors (enabled by the tsan CMake
// preset). Kept out of release builds: At/RowPtr sit inside the matmul
// kernels' inner loops.
#ifdef DBG4ETH_DEBUG_CHECKS
#include <cassert>
#define DBG4ETH_DCHECK_BOUNDS(cond) assert(cond)
#else
#define DBG4ETH_DCHECK_BOUNDS(cond) ((void)0)
#endif

namespace dbg4eth {

class Rng;

/// \brief Dense row-major matrix of doubles.
///
/// The workhorse value type of the tensor engine. All GNN computations in
/// this reproduction run over account subgraphs of ~100 nodes, so a dense
/// representation reproduces the paper's math exactly at negligible cost.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols) : rows_(rows), cols_(cols),
                               data_(static_cast<size_t>(rows) * cols, 0.0) {}
  Matrix(int rows, int cols, double fill)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {}

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols) { return Matrix(rows, cols, 1.0); }
  static Matrix Identity(int n);
  /// Builds a rows x cols matrix from a flat row-major initializer.
  static Matrix FromFlat(int rows, int cols, std::vector<double> values);
  /// Column vector (n x 1) from values.
  static Matrix ColumnVector(const std::vector<double>& values);
  /// Row vector (1 x n) from values.
  static Matrix RowVector(const std::vector<double>& values);
  /// I.i.d. uniform entries in [lo, hi).
  static Matrix Random(int rows, int cols, Rng* rng, double lo = -1.0,
                       double hi = 1.0);
  /// I.i.d. normal entries.
  static Matrix RandomNormal(int rows, int cols, Rng* rng, double mean = 0.0,
                             double stddev = 1.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& At(int r, int c) {
    DBG4ETH_DCHECK_BOUNDS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    DBG4ETH_DCHECK_BOUNDS(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double& operator()(int r, int c) { return At(r, c); }
  double operator()(int r, int c) const { return At(r, c); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  /// r == rows() is allowed: one-past-the-end pointer (used by SliceRows).
  double* RowPtr(int r) {
    DBG4ETH_DCHECK_BOUNDS(r >= 0 && r <= rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const double* RowPtr(int r) const {
    DBG4ETH_DCHECK_BOUNDS(r >= 0 && r <= rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Moves out the backing storage, leaving an empty 0 x 0 matrix. The
  /// inference arena uses this to recycle activation buffers across
  /// forward passes (see tensor/inference.h).
  std::vector<double> TakeData() {
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

  /// Element-wise in-place operations.
  Matrix& AddInPlace(const Matrix& other);
  Matrix& SubInPlace(const Matrix& other);
  Matrix& MulInPlace(const Matrix& other);
  Matrix& ScaleInPlace(double s);
  void Fill(double v);

  /// Returns a new transposed matrix.
  Matrix Transposed() const;

  /// Extracts rows [begin, end).
  Matrix SliceRows(int begin, int end) const;

  /// Extracts one row as a 1 x cols matrix.
  Matrix Row(int r) const { return SliceRows(r, r + 1); }

  /// Gathers the given rows into a new matrix.
  Matrix GatherRows(const std::vector<int>& indices) const;

  /// Sum of all entries.
  double Sum() const;
  /// Frobenius norm.
  double Norm() const;
  /// Largest absolute entry; 0 for empty.
  double MaxAbs() const;

  /// All entries finite?
  bool AllFinite() const;

  std::string ToString(int precision = 4) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// out = a * b (matrix product). Shapes must agree.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// Accumulates a * b into *out (must be pre-shaped).
void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a^T * b without materializing the transpose.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// Accumulates a^T @ b into *out (must be pre-shaped) — the allocation-free
/// form the backward pass uses to add dB = A^T @ dOut straight onto a
/// gradient buffer.
void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a * b^T without materializing the transpose.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// Accumulates a @ b^T into *out (must be pre-shaped) — the allocation-free
/// form the backward pass uses for dA = dOut @ B^T.
void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* out);

Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Mul(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, double s);

/// Horizontal concatenation [a | b].
Matrix ConcatCols(const Matrix& a, const Matrix& b);
/// Vertical concatenation.
Matrix ConcatRows(const Matrix& a, const Matrix& b);

bool AlmostEqual(const Matrix& a, const Matrix& b, double tol = 1e-9);

}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_MATRIX_H_
