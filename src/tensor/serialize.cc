#include "tensor/serialize.h"

#include "common/string_util.h"

namespace dbg4eth {

void WriteMatrix(BinaryWriter* writer, const Matrix& m) {
  writer->WriteI32(m.rows());
  writer->WriteI32(m.cols());
  std::vector<double> flat(m.data(), m.data() + m.size());
  writer->WriteDoubleVector(flat);
}

Status ReadMatrix(BinaryReader* reader, Matrix* m) {
  int32_t rows = 0, cols = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&rows));
  DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&cols));
  if (rows < 0 || cols < 0) {
    return Status::Internal("corrupt checkpoint: negative matrix shape");
  }
  std::vector<double> flat;
  DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&flat));
  if (flat.size() != static_cast<size_t>(rows) * cols) {
    return Status::Internal("corrupt checkpoint: matrix payload mismatch");
  }
  *m = Matrix::FromFlat(rows, cols, std::move(flat));
  return Status::OK();
}

namespace ag {

void WriteParameters(BinaryWriter* writer,
                     const std::vector<Tensor>& params) {
  writer->WriteU32(static_cast<uint32_t>(params.size()));
  for (const Tensor& p : params) WriteMatrix(writer, p.value());
}

Status ReadParameters(BinaryReader* reader, std::vector<Tensor>* params) {
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  if (count != params->size()) {
    return Status::Internal(StrFormat(
        "checkpoint has %u parameters, module expects %zu", count,
        params->size()));
  }
  for (Tensor& p : *params) {
    Matrix value;
    DBG4ETH_RETURN_NOT_OK(ReadMatrix(reader, &value));
    if (value.rows() != p.rows() || value.cols() != p.cols()) {
      return Status::Internal("checkpoint parameter shape mismatch");
    }
    p.mutable_value() = std::move(value);
  }
  return Status::OK();
}

}  // namespace ag
}  // namespace dbg4eth
