#ifndef DBG4ETH_TENSOR_OPS_H_
#define DBG4ETH_TENSOR_OPS_H_

#include <memory>
#include <vector>

#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace dbg4eth {

class Rng;

namespace ag {

/// Differentiable operations over Tensors. Each op appends one node to the
/// dynamic tape; Tensor::Backward() replays the tape in reverse.

/// Matrix product a @ b.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Sparse-dense product a @ x for a constant sparse operator a (typically a
/// cached normalized adjacency; it receives no gradient — only x does:
/// dX = a^T @ dOut). The shared_ptr is captured by the tape node, so the
/// operator outlives the backward pass.
Tensor SpMM(std::shared_ptr<const SparseMatrix> a, const Tensor& x);

/// Sparse-transposed-dense product a^T @ x for a constant sparse operator
/// a (same contract as SpMM; dX = a @ dOut). Visits a's nonzeros in
/// ascending-row order, so the result is bit-identical to the dense
/// MatMulTransA against a.ToDense().
Tensor SpMMTransA(std::shared_ptr<const SparseMatrix> a, const Tensor& x);

/// Masked product alpha @ b where `alpha` is dense but exactly zero
/// outside `support` (a masked-softmax attention matrix). Forward and both
/// backward products only touch support entries; the gradient of alpha is
/// zero off-support, which downstream masked-softmax backward annihilates
/// anyway. Both alpha and b receive gradients.
Tensor MaskedSpMatMul(std::shared_ptr<const SparseMatrix> support,
                      const Tensor& alpha, const Tensor& b);

/// Fused GAT attention coefficients over a CSR support: for each row i,
/// out(i, :) is the softmax over support entries (i, j) of
/// LeakyRelu(u_i + v_j, negative_slope); off-support entries are zero.
/// Bit-identical per entry to
/// MaskedSoftmaxRows(LeakyRelu(PairwiseSum(u, v)), mask) when mask has the
/// support's pattern, but does O(nnz) work instead of materializing the
/// dense N x N score matrix — essential for the block-diagonal packed
/// forward, where N is the whole micro-batch's node count. u (N x 1) and
/// v (M x 1) receive gradients.
Tensor MaskedAttentionAlpha(std::shared_ptr<const SparseMatrix> support,
                            const Tensor& u, const Tensor& v,
                            double negative_slope = 0.2);

/// Element-wise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// Element-wise a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Element-wise (Hadamard) a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// a * s.
Tensor ScalarMul(const Tensor& a, double s);
/// a + s (element-wise).
Tensor ScalarAdd(const Tensor& a, double s);

/// Adds a 1 x C bias row to every row of a (N x C).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Replicates a 1 x C row tensor into N identical rows.
Tensor BroadcastRow(const Tensor& row, int n);

/// S_ij = u_i + v_j for column vectors u (N x 1) and v (M x 1).
Tensor PairwiseSum(const Tensor& u, const Tensor& v);

/// Horizontal concatenation [a | b].
Tensor ConcatCols(const Tensor& a, const Tensor& b);
/// Vertical concatenation [a ; b].
Tensor ConcatRows(const Tensor& a, const Tensor& b);
/// Vertical concatenation of a list (each must share the column count).
Tensor ConcatRowsList(const std::vector<Tensor>& parts);

/// Rows [begin, end) of a.
Tensor SliceRows(const Tensor& a, int begin, int end);
/// Transpose.
Tensor Transpose(const Tensor& a);

/// Activations.
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, double negative_slope = 0.2);
Tensor Elu(const Tensor& a, double alpha = 1.0);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log of entries clamped to >= eps for stability.
Tensor Log(const Tensor& a, double eps = 1e-12);

/// Row-wise softmax.
Tensor SoftmaxRows(const Tensor& a);
/// Row-wise softmax restricted to positions where mask != 0; rows whose mask
/// is entirely zero produce an all-zero row.
Tensor MaskedSoftmaxRows(const Tensor& a, const Matrix& mask);
/// Softmax over the entries of an N x 1 column vector.
Tensor SoftmaxColVector(const Tensor& a);

/// Reductions.
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
/// N x C -> N x 1 row sums.
Tensor RowSum(const Tensor& a);
/// N x C -> 1 x C column means.
Tensor ColMean(const Tensor& a);
/// N x C -> 1 x C column-wise max (gradient routed to the argmax entries).
Tensor MaxPoolRows(const Tensor& a);
/// N x C -> 1 x C column means (alias of ColMean, named for pooling use).
Tensor MeanPoolRows(const Tensor& a);
/// N x C -> 1 x C column sums.
Tensor SumPoolRows(const Tensor& a);

/// L2-normalizes every row (zero rows stay zero).
Tensor L2NormalizeRows(const Tensor& a, double eps = 1e-12);

/// Inverted dropout: scales kept entries by 1/(1-p) when training is true;
/// identity otherwise.
Tensor Dropout(const Tensor& a, double p, Rng* rng, bool training);

/// Mean softmax cross-entropy of logits (N x C) against integer labels.
Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& labels);

/// Mean binary cross-entropy of logits (N x 1) against {0,1} labels.
Tensor BceWithLogits(const Tensor& logits, const std::vector<int>& labels);

/// Mean squared error between a and b (same shape).
Tensor MseLoss(const Tensor& a, const Tensor& b);

/// Softmax probabilities of the tape-free forward pass (no gradient).
Matrix SoftmaxRowsValue(const Matrix& logits);

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_OPS_H_
