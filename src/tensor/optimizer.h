#ifndef DBG4ETH_TENSOR_OPTIMIZER_H_
#define DBG4ETH_TENSOR_OPTIMIZER_H_

#include <vector>

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace dbg4eth {
namespace ag {

/// \brief Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most max_norm.
  void ClipGradNorm(double max_norm);

  /// Serializes the optimizer's internal state (moments, step counter) for
  /// training-resume checkpoints. Parameter *values* are not included —
  /// checkpoint them separately (ag::WriteParameters). Stateless
  /// optimizers write a tag only.
  virtual void SaveState(BinaryWriter* writer) const;

  /// Restores state written by SaveState. The optimizer must be built over
  /// an equally shaped parameter list; count or shape mismatches return a
  /// clear error and leave the in-memory state untouched.
  virtual Status LoadState(BinaryReader* reader);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double weight_decay_;
};

/// \brief Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step() override;

  /// First/second moments and the bias-correction step counter.
  void SaveState(BinaryWriter* writer) const override;
  Status LoadState(BinaryReader* reader) override;

  int64_t step_count() const { return t_; }

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_OPTIMIZER_H_
