#ifndef DBG4ETH_TENSOR_GRADCHECK_H_
#define DBG4ETH_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/tensor.h"

namespace dbg4eth {
namespace ag {

/// \brief Result of a finite-difference gradient check.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool passed = false;
};

/// Compares analytic gradients of `loss_fn` (a scalar function rebuilt on
/// each call from the current parameter values) against central finite
/// differences. Used heavily in the op and GNN-layer tests.
GradCheckResult CheckGradients(
    const std::function<Tensor()>& loss_fn, std::vector<Tensor> params,
    double epsilon = 1e-5, double tolerance = 1e-4);

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_GRADCHECK_H_
