#include "tensor/gradcheck.h"

#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace ag {

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               std::vector<Tensor> params, double epsilon,
                               double tolerance) {
  // Analytic gradients.
  for (Tensor& p : params) p.ZeroGrad();
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const Tensor& p : params) analytic.push_back(p.grad());

  GradCheckResult result;
  for (size_t i = 0; i < params.size(); ++i) {
    Matrix& value = params[i].mutable_value();
    for (int r = 0; r < value.rows(); ++r) {
      for (int c = 0; c < value.cols(); ++c) {
        const double orig = value.At(r, c);
        value.At(r, c) = orig + epsilon;
        const double up = loss_fn().ScalarValue();
        value.At(r, c) = orig - epsilon;
        const double down = loss_fn().ScalarValue();
        value.At(r, c) = orig;
        const double numeric = (up - down) / (2.0 * epsilon);
        const double abs_err = std::fabs(numeric - analytic[i].At(r, c));
        const double denom =
            std::max(1.0, std::max(std::fabs(numeric),
                                   std::fabs(analytic[i].At(r, c))));
        result.max_abs_error = std::max(result.max_abs_error, abs_err);
        result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
      }
    }
  }
  result.passed = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace ag
}  // namespace dbg4eth
