#ifndef DBG4ETH_TENSOR_INFERENCE_H_
#define DBG4ETH_TENSOR_INFERENCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace dbg4eth {
namespace ag {

/// \brief Scratch arena of one tape-free forward pass (per thread).
///
/// Serving never calls Backward(), yet every op used to pay the full
/// reverse-mode toll: a heap-allocated TensorNode, shared_ptr bookkeeping
/// for parents, and a std::function backward closure — then a fresh value
/// buffer on top. Under an active InferenceScope the ops in ops.cc instead
/// draw both from this arena:
///
///  - value-only nodes come from a pooled vector of TensorNodes (no
///    parents, no backward_fn, requires_grad = false), reused pass after
///    pass without touching the allocator;
///  - value buffers come from a capacity-keyed free list refilled by
///    BeginPass(), which reclaims the previous pass's activations.
///
/// Lifetime rules: every Tensor produced under a scope stays valid until
/// the *next* BeginPass() on the same thread (scopes call it on entry), so
/// a caller may read results after its scope closes but must not hold
/// them across another fast-path call on that thread. A node whose handle
/// is still referenced at reclaim time is abandoned to its holders (a
/// fresh node takes its pool slot) — held tensors never dangle, they just
/// forgo reuse. Not thread-safe; use InferenceArena::ThreadLocal().
class InferenceArena {
 public:
  /// Reuse accounting for one forward pass (reset by BeginPass).
  struct PassStats {
    uint64_t nodes = 0;          ///< Value nodes handed out.
    uint64_t fresh_nodes = 0;    ///< Pool growth (allocator hits).
    uint64_t buffers = 0;        ///< Value buffers handed out.
    uint64_t fresh_buffers = 0;  ///< Buffers that missed the free list.
    uint64_t fresh_bytes = 0;    ///< Bytes newly allocated for buffers.
  };

  InferenceArena() = default;
  InferenceArena(const InferenceArena&) = delete;
  InferenceArena& operator=(const InferenceArena&) = delete;

  /// Pooled value-only node holding `value`. No parents, no backward.
  std::shared_ptr<internal::TensorNode> MakeValueNode(Matrix value);

  /// Zero-filled rows x cols buffer (for accumulate-style kernels and
  /// masked writers that rely on zero initialization).
  Matrix Zeros(int rows, int cols);
  /// Buffer whose every entry the caller overwrites; contents are
  /// unspecified (recycled activations).
  Matrix Uninit(int rows, int cols);
  /// Buffer initialized as a copy of `src`.
  Matrix CopyOf(const Matrix& src);

  /// Reclaims the previous pass: value buffers of unreferenced pooled
  /// nodes return to the free list, the node cursor rewinds, and pass
  /// stats reset. Called by InferenceScope on entry.
  void BeginPass();

  /// Stats of the pass in flight (read after the forward, before the next
  /// BeginPass).
  const PassStats& pass_stats() const { return pass_stats_; }
  /// Total bytes of value-buffer storage this arena owns (free list plus
  /// buffers currently held by pooled nodes).
  size_t owned_bytes() const { return owned_bytes_; }
  /// Pooled node count (high-water mark across passes).
  size_t pooled_nodes() const { return nodes_.size(); }

  /// The calling thread's arena (created on first use).
  static InferenceArena* ThreadLocal();

 private:
  std::vector<double> AcquireBuffer(size_t n);

  std::vector<std::shared_ptr<internal::TensorNode>> nodes_;
  size_t cursor_ = 0;
  /// Free value buffers keyed by capacity; lower_bound gives best fit.
  std::multimap<size_t, std::vector<double>> free_buffers_;
  PassStats pass_stats_;
  size_t owned_bytes_ = 0;
};

/// \brief RAII activation of the tape-free fast path on this thread.
///
/// While a scope is active, every op in ops.cc (and every non-parameter
/// Tensor constructed) computes its value only — no autograd nodes, no
/// parent edges, no backward closures — drawing storage from the bound
/// arena. Values are bit-identical to the tape forward. Nested scopes are
/// no-ops (the outermost scope owns the pass), so composed entry points
/// (PredictProbaBatch -> PredictScoreBatch) share one arena pass.
///
/// Do NOT use around anything that needs gradients: Backward() on a
/// tensor built under a scope sees a leaf and propagates nothing.
class InferenceScope {
 public:
  /// Binds the calling thread's arena (InferenceArena::ThreadLocal),
  /// unless the fast path is globally disabled or a scope is already
  /// active on this thread.
  InferenceScope();
  /// Same, with an explicit arena (tests).
  explicit InferenceScope(InferenceArena* arena);
  ~InferenceScope();

  InferenceScope(const InferenceScope&) = delete;
  InferenceScope& operator=(const InferenceScope&) = delete;

  /// True when this scope actually bound the arena (outermost + enabled).
  bool bound() const { return bound_ != nullptr; }

 private:
  InferenceArena* bound_ = nullptr;
};

/// Process-wide switch for the fast path (default on). With it off,
/// InferenceScope construction is a no-op and every forward runs on the
/// tape — the benchmark's baseline mode.
void SetInferenceFastPathEnabled(bool enabled);
bool InferenceFastPathEnabled();

namespace internal {

/// Arena bound by the innermost active InferenceScope on this thread, or
/// nullptr when the tape path is in effect.
InferenceArena* ActiveInferenceArena();

}  // namespace internal

}  // namespace ag
}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_INFERENCE_H_
