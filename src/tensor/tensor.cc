#include "tensor/tensor.h"

#include <unordered_set>

#include "common/logging.h"

namespace dbg4eth {
namespace ag {

namespace internal {

void TensorNode::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
}

}  // namespace internal

Tensor::Tensor(Matrix value, bool requires_grad) {
  node_ = std::make_shared<internal::TensorNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->op_name = "leaf";
}

const Matrix& Tensor::value() const {
  DBG4ETH_CHECK(defined());
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  DBG4ETH_CHECK(defined());
  return node_->value;
}

const Matrix& Tensor::grad() const {
  DBG4ETH_CHECK(defined());
  DBG4ETH_CHECK(has_grad()) << "tensor has no gradient";
  return node_->grad;
}

bool Tensor::has_grad() const {
  return defined() && node_->grad.rows() == node_->value.rows() &&
         node_->grad.cols() == node_->value.cols() && !node_->value.empty();
}

bool Tensor::requires_grad() const { return defined() && node_->requires_grad; }

void Tensor::ZeroGrad() {
  DBG4ETH_CHECK(defined());
  node_->EnsureGrad();
  node_->grad.Fill(0.0);
}

void Tensor::Backward() {
  DBG4ETH_CHECK(defined());
  DBG4ETH_CHECK(rows() == 1 && cols() == 1)
      << "Backward() requires a scalar output, got " << rows() << "x"
      << cols();

  // Topological order via iterative post-order DFS over requires_grad nodes.
  std::vector<internal::TensorNode*> topo;
  std::unordered_set<internal::TensorNode*> visited;
  struct Frame {
    internal::TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorNode* parent =
          frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Zero grads of all interior (non-leaf) nodes; leaf (parameter) grads
  // accumulate across Backward() calls until the optimizer clears them.
  for (internal::TensorNode* node : topo) {
    if (node->backward_fn) {
      node->EnsureGrad();
      node->grad.Fill(0.0);
    } else {
      node->EnsureGrad();
    }
  }

  node_->EnsureGrad();
  node_->grad.At(0, 0) += 1.0;

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::TensorNode* node = *it;
    if (node->backward_fn) {
      node->backward_fn(node);
    }
  }
}

double Tensor::ScalarValue() const {
  DBG4ETH_CHECK(rows() == 1 && cols() == 1);
  return value().At(0, 0);
}

Tensor Tensor::FromNode(std::shared_ptr<internal::TensorNode> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

}  // namespace ag
}  // namespace dbg4eth
