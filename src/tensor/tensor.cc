#include "tensor/tensor.h"

#include <atomic>
#include <unordered_set>

#include "common/logging.h"
#include "tensor/inference.h"

namespace dbg4eth {
namespace ag {

namespace internal {

namespace {

/// The buffer bound by the running Backward(GradientBuffer*) call on this
/// thread, if any.
thread_local GradientBuffer* t_active_gradient_buffer = nullptr;

std::atomic<uint64_t> g_node_allocations{0};

}  // namespace

TensorNode::TensorNode() {
  g_node_allocations.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NodeAllocationCount() {
  return g_node_allocations.load(std::memory_order_relaxed);
}

void TensorNode::EnsureGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());
  }
}

void TensorNode::EnsureZeroedGrad() {
  if (grad.rows() != value.rows() || grad.cols() != value.cols()) {
    grad = Matrix(value.rows(), value.cols());  // Freshly zero-initialized.
  } else {
    grad.Fill(0.0);
  }
}

Matrix& GradAccumTarget(TensorNode* node) {
  GradientBuffer* buffer = t_active_gradient_buffer;
  if (buffer != nullptr && node->is_leaf()) {
    return buffer->Slot(node);
  }
  node->EnsureGrad();
  return node->grad;
}

}  // namespace internal

Matrix& GradientBuffer::Slot(internal::TensorNode* node) {
  auto it = slots_.find(node);
  if (it == slots_.end()) {
    it = slots_
             .emplace(node,
                      Matrix(node->value.rows(), node->value.cols()))
             .first;
  }
  return it->second;
}

void GradientBuffer::ReduceInto() {
  for (auto& [node, grad] : slots_) {
    node->EnsureGrad();
    node->grad.AddInPlace(grad);
  }
}

Tensor::Tensor(Matrix value, bool requires_grad) {
  if (!requires_grad) {
    // Constants built under an active InferenceScope draw a pooled
    // value-only node instead of hitting the allocator.
    if (InferenceArena* arena = internal::ActiveInferenceArena()) {
      node_ = arena->MakeValueNode(std::move(value));
      return;
    }
  }
  node_ = std::make_shared<internal::TensorNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->op_name = "leaf";
}

const Matrix& Tensor::value() const {
  DBG4ETH_CHECK(defined());
  return node_->value;
}

Matrix& Tensor::mutable_value() {
  DBG4ETH_CHECK(defined());
  return node_->value;
}

const Matrix& Tensor::grad() const {
  DBG4ETH_CHECK(defined());
  DBG4ETH_CHECK(has_grad()) << "tensor has no gradient";
  return node_->grad;
}

bool Tensor::has_grad() const {
  return defined() && node_->grad.rows() == node_->value.rows() &&
         node_->grad.cols() == node_->value.cols() && !node_->value.empty();
}

bool Tensor::requires_grad() const { return defined() && node_->requires_grad; }

void Tensor::ZeroGrad() {
  DBG4ETH_CHECK(defined());
  node_->EnsureGrad();
  node_->grad.Fill(0.0);
}

void Tensor::Backward(GradientBuffer* buffer) {
  DBG4ETH_CHECK(defined());
  DBG4ETH_CHECK(rows() == 1 && cols() == 1)
      << "Backward() requires a scalar output, got " << rows() << "x"
      << cols();

  // Bind (and on exit restore) this thread's gradient buffer; the ops'
  // backward closures pick it up through internal::GradAccumTarget.
  struct BufferBinding {
    GradientBuffer* prev;
    explicit BufferBinding(GradientBuffer* b)
        : prev(internal::t_active_gradient_buffer) {
      internal::t_active_gradient_buffer = b;
    }
    ~BufferBinding() { internal::t_active_gradient_buffer = prev; }
  } binding(buffer);

  // Topological order via iterative post-order DFS over requires_grad nodes.
  std::vector<internal::TensorNode*> topo;
  std::unordered_set<internal::TensorNode*> visited;
  struct Frame {
    internal::TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (node_->requires_grad) {
    stack.push_back({node_.get(), 0});
    visited.insert(node_.get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorNode* parent =
          frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  // Zero grads of all interior (non-leaf) nodes; leaf (parameter) grads
  // accumulate across Backward() calls until the optimizer clears them.
  // Interior nodes are private to the thread that built the tape, so
  // touching them is safe even in buffered mode; shared leaves are left
  // alone when a buffer is bound (their writes go to the buffer).
  for (internal::TensorNode* node : topo) {
    if (node->backward_fn) {
      node->EnsureZeroedGrad();
    } else if (buffer == nullptr) {
      node->EnsureGrad();
    }
  }

  internal::GradAccumTarget(node_.get()).At(0, 0) += 1.0;

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::TensorNode* node = *it;
    if (node->backward_fn) {
      node->backward_fn(node);
    }
  }
}

double Tensor::ScalarValue() const {
  DBG4ETH_CHECK(rows() == 1 && cols() == 1);
  return value().At(0, 0);
}

Tensor Tensor::FromNode(std::shared_ptr<internal::TensorNode> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

}  // namespace ag
}  // namespace dbg4eth
