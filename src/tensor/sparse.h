#ifndef DBG4ETH_TENSOR_SPARSE_H_
#define DBG4ETH_TENSOR_SPARSE_H_

#include <tuple>
#include <vector>

#include "tensor/matrix.h"

namespace dbg4eth {

/// \brief Immutable CSR (compressed sparse row) matrix of doubles.
///
/// Built for the normalized adjacency operators of the GNN stack: an
/// account subgraph with N nodes and E edges has a D^{-1/2}(A+I)D^{-1/2}
/// with N + 2E nonzeros out of N^2 entries, so message passing as SpMM
/// does O(nnz * F) work instead of the dense kernel's O(N^2 * F). The
/// structure is frozen at construction — exactly what an adjacency that is
/// cached once per Graph and shared across epochs (and across trainer
/// threads) needs.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Converts a dense matrix, keeping entries with |v| > `zero_tolerance`.
  /// The default tolerance keeps every exact nonzero.
  static SparseMatrix FromDense(const Matrix& dense,
                                double zero_tolerance = 0.0);

  /// Builds from coordinate triplets (row, col, value); duplicates are
  /// summed. Entries that sum to exactly zero are kept (structure matters
  /// more than a few spurious explicit zeros).
  static SparseMatrix FromTriplets(
      int rows, int cols,
      const std::vector<std::tuple<int, int, double>>& triplets);

  /// Adopts ready-made CSR arrays (validated: monotone offsets of size
  /// rows + 1, in-range ascending column indices per row). Used by the
  /// block-diagonal packer, which concatenates per-graph CSR operators
  /// without round-tripping through triplets.
  static SparseMatrix FromCsr(int rows, int cols,
                              std::vector<int> row_offsets,
                              std::vector<int> col_indices,
                              std::vector<double> values);

  Matrix ToDense() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Stored entries (may include explicit zeros from FromTriplets).
  int nnz() const { return static_cast<int>(values_.size()); }

  /// CSR arrays: row i's entries live at [row_offsets()[i],
  /// row_offsets()[i + 1]) in col_indices()/values(). Column indices are
  /// ascending within each row.
  const std::vector<int>& row_offsets() const { return row_offsets_; }
  const std::vector<int>& col_indices() const { return col_indices_; }
  const std::vector<double>& values() const { return values_; }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_offsets_ = {0};
  std::vector<int> col_indices_;
  std::vector<double> values_;
};

/// out = a * x (sparse-dense product). Shapes must agree.
Matrix SpMM(const SparseMatrix& a, const Matrix& x);
/// Accumulates a * x into *out (must be pre-shaped).
void SpMMAccumulate(const SparseMatrix& a, const Matrix& x, Matrix* out);
/// out = a^T * x without materializing the transpose. This is the backward
/// kernel of SpMM: dX = A^T * dOut.
Matrix SpMMTransA(const SparseMatrix& a, const Matrix& x);
/// Accumulates a^T * x into *out (must be pre-shaped). Allocation-free
/// form used by the inference fast path.
void SpMMTransAAccumulate(const SparseMatrix& a, const Matrix& x,
                          Matrix* out);

/// Masked-product kernels for attention: `a` is a dense matrix that is
/// exactly zero outside the support pattern (e.g. a masked-softmax
/// attention matrix whose support is adjacency + I). Each visits nonzeros
/// in the order the dense kernel visits the corresponding indices, so the
/// results are bit-identical to the dense products for finite inputs.
///
/// out = a @ b restricted to support: out(i,:) = sum_k a(i,k) b(k,:) over
/// support entries (i,k).
Matrix MaskedMatMul(const SparseMatrix& support, const Matrix& a,
                    const Matrix& b);
/// Accumulates the masked product into *out (must be pre-shaped).
/// Allocation-free form used by the inference fast path.
void MaskedMatMulAccumulate(const SparseMatrix& support, const Matrix& a,
                            const Matrix& b, Matrix* out);
/// *da(i,k) += dot(dout(i,:), b(k,:)) at support entries — the dA = dOut
/// @ B^T backward of MaskedMatMul, skipping entries the masked softmax
/// annihilates anyway.
void MaskedOuterAccumulate(const SparseMatrix& support, const Matrix& dout,
                           const Matrix& b, Matrix* da);
/// *db(k,:) += a(i,k) * dout(i,:) over support entries — the dB = A^T @
/// dOut backward of MaskedMatMul.
void MaskedTransAccumulate(const SparseMatrix& support, const Matrix& a,
                           const Matrix& dout, Matrix* db);

}  // namespace dbg4eth

#endif  // DBG4ETH_TENSOR_SPARSE_H_
