#include "calib/adaptive.h"

#include <cmath>

#include "calib/ece.h"
#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace calib {

AdaptiveCalibrator::AdaptiveCalibrator(
    const AdaptiveCalibratorConfig& config)
    : config_(config) {}

Status AdaptiveCalibrator::Fit(const std::vector<double>& scores,
                               const std::vector<int>& labels) {
  if (!config_.use_parametric && !config_.use_nonparametric) {
    return Status::InvalidArgument("no calibrator family enabled");
  }
  calibrators_.clear();
  infos_.clear();
  for (auto& cal : MakeAllCalibrators()) {
    if (cal->parametric() && !config_.use_parametric) continue;
    if (!cal->parametric() && !config_.use_nonparametric) continue;
    calibrators_.push_back(std::move(cal));
  }

  baseline_ece_ =
      ExpectedCalibrationError(scores, labels, config_.ece_bins);

  // Per-method ECE reduction on the fit split (Eq. 25 numerator).
  std::vector<double> delta(calibrators_.size(), 0.0);
  for (size_t i = 0; i < calibrators_.size(); ++i) {
    DBG4ETH_RETURN_NOT_OK(calibrators_[i]->Fit(scores, labels));
    const double ece_after = ExpectedCalibrationError(
        calibrators_[i]->CalibrateAll(scores), labels, config_.ece_bins);
    delta[i] = baseline_ece_ - ece_after;
  }

  // Non-adaptive families share their family's mean ΔECE (uniform within
  // the family) before the joint normalization.
  std::vector<double> raw = delta;
  auto family_mean = [&](bool parametric) {
    double sum = 0.0;
    int count = 0;
    for (size_t i = 0; i < calibrators_.size(); ++i) {
      if (calibrators_[i]->parametric() == parametric) {
        sum += delta[i];
        ++count;
      }
    }
    return count > 0 ? sum / count : 0.0;
  };
  const double param_mean = family_mean(true);
  const double nonparam_mean = family_mean(false);
  for (size_t i = 0; i < calibrators_.size(); ++i) {
    const bool parametric = calibrators_[i]->parametric();
    if (parametric && !config_.adaptive_parametric) raw[i] = param_mean;
    if (!parametric && !config_.adaptive_nonparametric) raw[i] = nonparam_mean;
  }

  double total = 0.0;
  for (double r : raw) total += r;
  infos_.resize(calibrators_.size());
  for (size_t i = 0; i < calibrators_.size(); ++i) {
    infos_[i].name = calibrators_[i]->name();
    infos_[i].parametric = calibrators_[i]->parametric();
    infos_[i].delta_ece = delta[i];
    if (std::fabs(total) > 1e-9) {
      infos_[i].weight = raw[i] / total;  // Eq. 25; may be negative.
    } else {
      infos_[i].weight = 1.0 / calibrators_.size();
    }
  }
  fitted_ = true;
  return Status::OK();
}

double AdaptiveCalibrator::Calibrate(double score) const {
  DBG4ETH_CHECK(fitted_);
  double out = 0.0;
  for (size_t i = 0; i < calibrators_.size(); ++i) {
    out += infos_[i].weight * calibrators_[i]->Calibrate(score);
  }
  return Clamp(out, 0.0, 1.0);
}

void AdaptiveCalibrator::Save(BinaryWriter* writer) const {
  DBG4ETH_CHECK(fitted_);
  writer->WriteString("adaptive_calibrator");
  writer->WriteBool(config_.use_parametric);
  writer->WriteBool(config_.use_nonparametric);
  writer->WriteBool(config_.adaptive_parametric);
  writer->WriteBool(config_.adaptive_nonparametric);
  writer->WriteI32(config_.ece_bins);
  writer->WriteDouble(baseline_ece_);
  writer->WriteU32(static_cast<uint32_t>(calibrators_.size()));
  for (size_t i = 0; i < calibrators_.size(); ++i) {
    writer->WriteString(calibrators_[i]->name());
    writer->WriteDouble(infos_[i].delta_ece);
    writer->WriteDouble(infos_[i].weight);
    calibrators_[i]->Save(writer);
  }
}

Status AdaptiveCalibrator::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("adaptive_calibrator"));
  DBG4ETH_RETURN_NOT_OK(reader->ReadBool(&config_.use_parametric));
  DBG4ETH_RETURN_NOT_OK(reader->ReadBool(&config_.use_nonparametric));
  DBG4ETH_RETURN_NOT_OK(reader->ReadBool(&config_.adaptive_parametric));
  DBG4ETH_RETURN_NOT_OK(reader->ReadBool(&config_.adaptive_nonparametric));
  int32_t bins = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&bins));
  config_.ece_bins = bins;
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&baseline_ece_));
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));

  // Rebuild the method list exactly as Fit would, keyed by stored names.
  calibrators_.clear();
  infos_.clear();
  auto all = MakeAllCalibrators();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    DBG4ETH_RETURN_NOT_OK(reader->ReadString(&name));
    MethodInfo info;
    info.name = name;
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&info.delta_ece));
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&info.weight));
    std::unique_ptr<Calibrator> method;
    for (auto& candidate : all) {
      if (candidate && candidate->name() == name) {
        method = std::move(candidate);
        break;
      }
    }
    if (method == nullptr) {
      return Status::Internal("unknown calibrator in checkpoint: " + name);
    }
    DBG4ETH_RETURN_NOT_OK(method->Load(reader));
    info.parametric = method->parametric();
    calibrators_.push_back(std::move(method));
    infos_.push_back(std::move(info));
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> AdaptiveCalibrator::CalibrateAll(
    const std::vector<double>& scores) const {
  std::vector<double> out;
  out.reserve(scores.size());
  for (double s : scores) out.push_back(Calibrate(s));
  return out;
}

}  // namespace calib
}  // namespace dbg4eth
