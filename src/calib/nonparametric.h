#ifndef DBG4ETH_CALIB_NONPARAMETRIC_H_
#define DBG4ETH_CALIB_NONPARAMETRIC_H_

#include <string>
#include <vector>

#include "calib/calibrator.h"

namespace dbg4eth {
namespace calib {

/// \brief Histogram binning (Zadrozny & Elkan 2001): equal-width bins over
/// [0, 1]; calibrated probability is the empirical positive rate of the
/// score's bin (with a Laplace prior for empty/small bins).
class HistogramBinning : public Calibrator {
 public:
  explicit HistogramBinning(int num_bins = 10) : num_bins_(num_bins) {}

  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "histogram"; }
  bool parametric() const override { return false; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  int num_bins_;
  std::vector<double> bin_probs_;
};

/// \brief Isotonic regression (Zadrozny & Elkan 2002) via the
/// pool-adjacent-violators algorithm; piecewise-constant non-decreasing map.
class IsotonicRegression : public Calibrator {
 public:
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "isotonic"; }
  bool parametric() const override { return false; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  std::vector<double> thresholds_;  ///< Sorted block upper scores.
  std::vector<double> values_;      ///< Non-decreasing block values.
};

/// \brief Bayesian Binning into Quantiles (Naeini et al. 2015): model
/// averaging over equal-frequency binning models with different bin counts,
/// weighted by their Beta-Binomial marginal likelihood.
class BbqCalibration : public Calibrator {
 public:
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "bbq"; }
  bool parametric() const override { return false; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  struct BinningModel {
    std::vector<double> boundaries;  ///< Ascending inner boundaries.
    std::vector<double> bin_probs;   ///< Posterior mean per bin.
    double weight = 0.0;
  };
  std::vector<BinningModel> models_;
};

}  // namespace calib
}  // namespace dbg4eth

#endif  // DBG4ETH_CALIB_NONPARAMETRIC_H_
