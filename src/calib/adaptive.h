#ifndef DBG4ETH_CALIB_ADAPTIVE_H_
#define DBG4ETH_CALIB_ADAPTIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "calib/calibrator.h"

namespace dbg4eth {
namespace calib {

/// \brief Configuration of the adaptive weight calibration (paper
/// Sec. IV-C3). The toggles implement the Table IV ablations.
struct AdaptiveCalibratorConfig {
  bool use_parametric = true;      ///< false = "w/o Param. calibration".
  bool use_nonparametric = true;   ///< false = "w/o Non-param. calibration".
  /// When false, methods of that family receive uniform instead of
  /// ΔECE-proportional weights ("w/o Ada. * calibration").
  bool adaptive_parametric = true;
  bool adaptive_nonparametric = true;
  int ece_bins = 10;
};

/// \brief Ensemble calibrator: fits the six methods on a validation split,
/// measures each method's ECE reduction, and combines their outputs with
/// normalized ΔECE weights (Eq. 24-25). Weights can be negative when a
/// method increases ECE, exactly as the paper observes in Fig. 6.
class AdaptiveCalibrator {
 public:
  explicit AdaptiveCalibrator(
      const AdaptiveCalibratorConfig& config = AdaptiveCalibratorConfig());

  AdaptiveCalibrator(AdaptiveCalibrator&&) = default;
  AdaptiveCalibrator& operator=(AdaptiveCalibrator&&) = default;

  /// Fits every enabled method and its weight on (scores, labels).
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels);

  /// Weighted calibrated probability P = sum_i alpha_i C_i(score), clamped
  /// to [0, 1].
  double Calibrate(double score) const;
  std::vector<double> CalibrateAll(const std::vector<double>& scores) const;

  /// Introspection for Fig. 6 (per-method ΔECE and normalized weight).
  struct MethodInfo {
    std::string name;
    bool parametric = false;
    double delta_ece = 0.0;
    double weight = 0.0;
  };
  const std::vector<MethodInfo>& methods() const { return infos_; }

  /// ECE of the raw scores on the fit split.
  double baseline_ece() const { return baseline_ece_; }

  /// Checkpointing of the full fitted ensemble (config, per-method states,
  /// weights).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  AdaptiveCalibratorConfig config_;
  std::vector<std::unique_ptr<Calibrator>> calibrators_;
  std::vector<MethodInfo> infos_;
  double baseline_ece_ = 0.0;
  bool fitted_ = false;
};

}  // namespace calib
}  // namespace dbg4eth

#endif  // DBG4ETH_CALIB_ADAPTIVE_H_
