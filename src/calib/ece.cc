#include "calib/ece.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace calib {

std::vector<ReliabilityBin> ReliabilityDiagram(
    const std::vector<double>& probs, const std::vector<int>& labels,
    int num_bins) {
  DBG4ETH_CHECK_EQ(probs.size(), labels.size());
  DBG4ETH_CHECK_GT(num_bins, 0);
  std::vector<double> conf_sum(num_bins, 0.0);
  std::vector<double> correct(num_bins, 0.0);
  std::vector<double> count(num_bins, 0.0);
  for (size_t i = 0; i < probs.size(); ++i) {
    const int pred = probs[i] > 0.5 ? 1 : 0;
    const double confidence = pred == 1 ? probs[i] : 1.0 - probs[i];
    int bin = static_cast<int>(confidence * num_bins);
    bin = std::min(bin, num_bins - 1);
    conf_sum[bin] += confidence;
    correct[bin] += pred == labels[i] ? 1.0 : 0.0;
    count[bin] += 1.0;
  }
  std::vector<ReliabilityBin> bins(num_bins);
  const double n = static_cast<double>(probs.size());
  for (int b = 0; b < num_bins; ++b) {
    if (count[b] > 0) {
      bins[b].mean_confidence = conf_sum[b] / count[b];
      bins[b].accuracy = correct[b] / count[b];
      bins[b].fraction = count[b] / n;
    }
  }
  return bins;
}

double ExpectedCalibrationError(const std::vector<double>& probs,
                                const std::vector<int>& labels,
                                int num_bins) {
  const auto bins = ReliabilityDiagram(probs, labels, num_bins);
  double ece = 0.0;
  for (const ReliabilityBin& bin : bins) {
    ece += bin.fraction * std::fabs(bin.accuracy - bin.mean_confidence);
  }
  return ece;
}

}  // namespace calib
}  // namespace dbg4eth
