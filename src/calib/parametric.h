#ifndef DBG4ETH_CALIB_PARAMETRIC_H_
#define DBG4ETH_CALIB_PARAMETRIC_H_

#include <string>
#include <vector>

#include "calib/calibrator.h"

namespace dbg4eth {
namespace calib {

/// \brief Temperature scaling (Guo et al. 2017): sigmoid(logit(p) / T),
/// with T fitted by golden-section search on the NLL.
class TemperatureScaling : public Calibrator {
 public:
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "temperature"; }
  bool parametric() const override { return true; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

  double temperature() const { return temperature_; }

 private:
  double temperature_ = 1.0;
};

/// \brief Logistic (Platt) calibration: sigmoid(a * logit(p) + b) fitted by
/// gradient descent on the NLL.
class LogisticCalibration : public Calibrator {
 public:
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "logistic"; }
  bool parametric() const override { return true; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
};

/// \brief Beta calibration (Kull et al.): sigmoid(a ln p - b ln(1-p) + c)
/// with a, b >= 0 fitted by projected gradient descent on the NLL.
class BetaCalibration : public Calibrator {
 public:
  Status Fit(const std::vector<double>& scores,
             const std::vector<int>& labels) override;
  double Calibrate(double score) const override;
  std::string name() const override { return "beta"; }
  bool parametric() const override { return true; }
  void Save(BinaryWriter* writer) const override;
  Status Load(BinaryReader* reader) override;

 private:
  double a_ = 1.0;
  double b_ = 1.0;
  double c_ = 0.0;
};

}  // namespace calib
}  // namespace dbg4eth

#endif  // DBG4ETH_CALIB_PARAMETRIC_H_
