#include "calib/nonparametric.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "calib/parametric.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace calib {

namespace {

Status ValidateInputs(const std::vector<double>& scores,
                      const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  return Status::OK();
}

}  // namespace

Status HistogramBinning::Fit(const std::vector<double>& scores,
                             const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  std::vector<double> positives(num_bins_, 0.0);
  std::vector<double> totals(num_bins_, 0.0);
  for (size_t i = 0; i < scores.size(); ++i) {
    int bin = static_cast<int>(Clamp(scores[i], 0.0, 1.0) * num_bins_);
    bin = std::min(bin, num_bins_ - 1);
    totals[bin] += 1.0;
    positives[bin] += labels[i];
  }
  bin_probs_.resize(num_bins_);
  for (int b = 0; b < num_bins_; ++b) {
    // Laplace smoothing toward the bin midpoint keeps empty bins sane.
    const double prior = (b + 0.5) / num_bins_;
    bin_probs_[b] = (positives[b] + prior) / (totals[b] + 1.0);
  }
  return Status::OK();
}

double HistogramBinning::Calibrate(double score) const {
  int bin = static_cast<int>(Clamp(score, 0.0, 1.0) * num_bins_);
  bin = std::min(bin, num_bins_ - 1);
  return bin_probs_[bin];
}

Status IsotonicRegression::Fit(const std::vector<double>& scores,
                               const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Pool-adjacent-violators over the sorted labels.
  struct Block {
    double sum;
    double count;
    double max_score;
    double value() const { return sum / count; }
  };
  std::vector<Block> blocks;
  for (size_t idx : order) {
    blocks.push_back({static_cast<double>(labels[idx]), 1.0, scores[idx]});
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].value() >= blocks.back().value()) {
      Block last = blocks.back();
      blocks.pop_back();
      blocks.back().sum += last.sum;
      blocks.back().count += last.count;
      blocks.back().max_score = last.max_score;
    }
  }
  thresholds_.clear();
  values_.clear();
  for (const Block& b : blocks) {
    thresholds_.push_back(b.max_score);
    values_.push_back(b.value());
  }
  return Status::OK();
}

double IsotonicRegression::Calibrate(double score) const {
  if (values_.empty()) return score;
  // First block whose upper score bound is >= score.
  auto it = std::lower_bound(thresholds_.begin(), thresholds_.end(), score);
  if (it == thresholds_.end()) return values_.back();
  return values_[static_cast<size_t>(it - thresholds_.begin())];
}

Status BbqCalibration::Fit(const std::vector<double>& scores,
                           const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  // Candidate bin counts around sqrt(n)/ elbow, per Naeini et al.
  const int base = std::max(
      1, static_cast<int>(std::floor(std::cbrt(static_cast<double>(n)))));
  std::vector<int> bin_counts;
  for (int b = std::max(1, base / 2); b <= std::min<int>(3 * base, n); ++b) {
    bin_counts.push_back(b);
  }

  models_.clear();
  std::vector<double> log_scores;
  for (int num_bins : bin_counts) {
    BinningModel model;
    double log_marginal = 0.0;
    // Equal-frequency bins over the sorted scores.
    for (int b = 0; b < num_bins; ++b) {
      const size_t lo = n * b / num_bins;
      const size_t hi = n * (b + 1) / num_bins;
      if (lo >= hi) continue;
      double positives = 0.0;
      for (size_t i = lo; i < hi; ++i) positives += labels[order[i]];
      const double total = static_cast<double>(hi - lo);
      // Beta(1,1) prior: posterior mean and Beta-Binomial evidence.
      model.bin_probs.push_back((positives + 1.0) / (total + 2.0));
      log_marginal += std::lgamma(2.0) - std::lgamma(total + 2.0) +
                      std::lgamma(positives + 1.0) +
                      std::lgamma(total - positives + 1.0);
      if (b + 1 < num_bins && hi < n) {
        model.boundaries.push_back(
            (scores[order[hi - 1]] + scores[order[hi]]) / 2.0);
      }
    }
    model.weight = log_marginal;
    models_.push_back(std::move(model));
    log_scores.push_back(log_marginal);
  }
  // Normalize weights in log space.
  const double lse = LogSumExp(log_scores);
  for (BinningModel& m : models_) {
    m.weight = std::exp(m.weight - lse);
  }
  return Status::OK();
}

double BbqCalibration::Calibrate(double score) const {
  if (models_.empty()) return score;
  double out = 0.0;
  for (const BinningModel& m : models_) {
    auto it = std::upper_bound(m.boundaries.begin(), m.boundaries.end(),
                               score);
    const size_t bin = static_cast<size_t>(it - m.boundaries.begin());
    out += m.weight * m.bin_probs[std::min(bin, m.bin_probs.size() - 1)];
  }
  return out;
}

void HistogramBinning::Save(BinaryWriter* writer) const {
  writer->WriteI32(num_bins_);
  writer->WriteDoubleVector(bin_probs_);
}

Status HistogramBinning::Load(BinaryReader* reader) {
  int32_t bins = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadI32(&bins));
  num_bins_ = bins;
  DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&bin_probs_));
  if (static_cast<int>(bin_probs_.size()) != num_bins_) {
    return Status::Internal("histogram checkpoint inconsistent");
  }
  return Status::OK();
}

void IsotonicRegression::Save(BinaryWriter* writer) const {
  writer->WriteDoubleVector(thresholds_);
  writer->WriteDoubleVector(values_);
}

Status IsotonicRegression::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&thresholds_));
  DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&values_));
  if (thresholds_.size() != values_.size()) {
    return Status::Internal("isotonic checkpoint inconsistent");
  }
  return Status::OK();
}

void BbqCalibration::Save(BinaryWriter* writer) const {
  writer->WriteU32(static_cast<uint32_t>(models_.size()));
  for (const BinningModel& m : models_) {
    writer->WriteDoubleVector(m.boundaries);
    writer->WriteDoubleVector(m.bin_probs);
    writer->WriteDouble(m.weight);
  }
}

Status BbqCalibration::Load(BinaryReader* reader) {
  uint32_t count = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&count));
  models_.clear();
  models_.resize(count);
  for (BinningModel& m : models_) {
    DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&m.boundaries));
    DBG4ETH_RETURN_NOT_OK(reader->ReadDoubleVector(&m.bin_probs));
    DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&m.weight));
    if (m.bin_probs.empty()) {
      return Status::Internal("bbq checkpoint inconsistent");
    }
  }
  return Status::OK();
}

std::vector<std::unique_ptr<Calibrator>> MakeAllCalibrators() {
  std::vector<std::unique_ptr<Calibrator>> out;
  out.push_back(std::make_unique<TemperatureScaling>());
  out.push_back(std::make_unique<BetaCalibration>());
  out.push_back(std::make_unique<LogisticCalibration>());
  out.push_back(std::make_unique<HistogramBinning>());
  out.push_back(std::make_unique<IsotonicRegression>());
  out.push_back(std::make_unique<BbqCalibration>());
  return out;
}

}  // namespace calib
}  // namespace dbg4eth
