#include "calib/parametric.h"

#include <cmath>

#include "common/math_util.h"

namespace dbg4eth {
namespace calib {

namespace {

constexpr double kEps = 1e-7;

double Logit(double p) {
  const double clamped = Clamp(p, kEps, 1.0 - kEps);
  return std::log(clamped / (1.0 - clamped));
}

double Nll(const std::vector<double>& probs, const std::vector<int>& labels) {
  double loss = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p = Clamp(probs[i], kEps, 1.0 - kEps);
    loss -= labels[i] ? std::log(p) : std::log(1.0 - p);
  }
  return loss / probs.size();
}

Status ValidateInputs(const std::vector<double>& scores,
                      const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("scores/labels size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("empty calibration set");
  }
  for (double s : scores) {
    if (!(s >= 0.0 && s <= 1.0)) {
      return Status::InvalidArgument("scores must lie in [0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Status TemperatureScaling::Fit(const std::vector<double>& scores,
                               const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  std::vector<double> logits(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) logits[i] = Logit(scores[i]);

  auto nll_at = [&](double temp) {
    std::vector<double> probs(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      probs[i] = Sigmoid(logits[i] / temp);
    }
    return Nll(probs, labels);
  };
  // Golden-section search on T in [0.05, 20].
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.05, hi = 20.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = nll_at(x1);
  double f2 = nll_at(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = nll_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = nll_at(x2);
    }
  }
  temperature_ = (lo + hi) / 2.0;
  return Status::OK();
}

double TemperatureScaling::Calibrate(double score) const {
  return Sigmoid(Logit(score) / temperature_);
}

Status LogisticCalibration::Fit(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  std::vector<double> z(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) z[i] = Logit(scores[i]);
  const double n = static_cast<double>(scores.size());
  double a = 1.0, b = 0.0;
  double lr = 0.5;
  for (int iter = 0; iter < 500; ++iter) {
    double ga = 0.0, gb = 0.0;
    for (size_t i = 0; i < z.size(); ++i) {
      const double p = Sigmoid(a * z[i] + b);
      const double diff = p - labels[i];
      ga += diff * z[i];
      gb += diff;
    }
    a -= lr * ga / n;
    b -= lr * gb / n;
    if (iter == 300) lr *= 0.2;
  }
  a_ = a;
  b_ = b;
  return Status::OK();
}

double LogisticCalibration::Calibrate(double score) const {
  return Sigmoid(a_ * Logit(score) + b_);
}

Status BetaCalibration::Fit(const std::vector<double>& scores,
                            const std::vector<int>& labels) {
  DBG4ETH_RETURN_NOT_OK(ValidateInputs(scores, labels));
  const double n = static_cast<double>(scores.size());
  std::vector<double> lp(scores.size()), lq(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const double p = Clamp(scores[i], kEps, 1.0 - kEps);
    lp[i] = std::log(p);
    lq[i] = std::log(1.0 - p);
  }
  double a = 1.0, b = 1.0, c = 0.0;
  double lr = 0.5;
  for (int iter = 0; iter < 800; ++iter) {
    double ga = 0.0, gb = 0.0, gc = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      const double p = Sigmoid(a * lp[i] - b * lq[i] + c);
      const double diff = p - labels[i];
      ga += diff * lp[i];
      gb += diff * -lq[i];
      gc += diff;
    }
    a -= lr * ga / n;
    b -= lr * gb / n;
    c -= lr * gc / n;
    // Beta calibration requires a, b >= 0 for monotonicity.
    a = std::max(a, 0.0);
    b = std::max(b, 0.0);
    if (iter == 500) lr *= 0.2;
  }
  a_ = a;
  b_ = b;
  c_ = c;
  return Status::OK();
}

double BetaCalibration::Calibrate(double score) const {
  const double p = Clamp(score, kEps, 1.0 - kEps);
  return Sigmoid(a_ * std::log(p) - b_ * std::log(1.0 - p) + c_);
}

void TemperatureScaling::Save(BinaryWriter* writer) const {
  writer->WriteDouble(temperature_);
}

Status TemperatureScaling::Load(BinaryReader* reader) {
  return reader->ReadDouble(&temperature_);
}

void LogisticCalibration::Save(BinaryWriter* writer) const {
  writer->WriteDouble(a_);
  writer->WriteDouble(b_);
}

Status LogisticCalibration::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&a_));
  return reader->ReadDouble(&b_);
}

void BetaCalibration::Save(BinaryWriter* writer) const {
  writer->WriteDouble(a_);
  writer->WriteDouble(b_);
  writer->WriteDouble(c_);
}

Status BetaCalibration::Load(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&a_));
  DBG4ETH_RETURN_NOT_OK(reader->ReadDouble(&b_));
  return reader->ReadDouble(&c_);
}

}  // namespace calib
}  // namespace dbg4eth
