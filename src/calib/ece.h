#ifndef DBG4ETH_CALIB_ECE_H_
#define DBG4ETH_CALIB_ECE_H_

#include <vector>

namespace dbg4eth {
namespace calib {

/// Expected calibration error (Guo et al. 2017): bins predictions by
/// confidence into `num_bins` equal-width bins and averages
/// |accuracy(bin) - confidence(bin)| weighted by bin mass. For binary
/// probabilities, confidence is max(p, 1-p) and the prediction is p > 0.5.
double ExpectedCalibrationError(const std::vector<double>& probs,
                                const std::vector<int>& labels,
                                int num_bins = 10);

/// Reliability-diagram point: per bin, (mean confidence, accuracy, mass).
struct ReliabilityBin {
  double mean_confidence = 0.0;
  double accuracy = 0.0;
  double fraction = 0.0;
};

std::vector<ReliabilityBin> ReliabilityDiagram(
    const std::vector<double>& probs, const std::vector<int>& labels,
    int num_bins = 10);

}  // namespace calib
}  // namespace dbg4eth

#endif  // DBG4ETH_CALIB_ECE_H_
