#ifndef DBG4ETH_CALIB_CALIBRATOR_H_
#define DBG4ETH_CALIB_CALIBRATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace dbg4eth {
namespace calib {

/// \brief Binary-probability calibrator interface.
///
/// Fit consumes uncalibrated confidences in [0, 1] with their binary
/// labels (typically on a validation split); Calibrate maps a confidence to
/// a calibrated probability.
class Calibrator {
 public:
  virtual ~Calibrator() = default;

  virtual Status Fit(const std::vector<double>& scores,
                     const std::vector<int>& labels) = 0;

  virtual double Calibrate(double score) const = 0;

  std::vector<double> CalibrateAll(const std::vector<double>& scores) const {
    std::vector<double> out;
    out.reserve(scores.size());
    for (double s : scores) out.push_back(Calibrate(s));
    return out;
  }

  virtual std::string name() const = 0;

  /// True for the parametric family (temperature/Platt/beta), false for the
  /// non-parametric one (histogram/isotonic/BBQ).
  virtual bool parametric() const = 0;

  /// Checkpointing of the fitted state.
  virtual void Save(BinaryWriter* writer) const = 0;
  virtual Status Load(BinaryReader* reader) = 0;
};

/// The six calibration methods of Section IV-C in paper order:
/// temperature scaling, beta, logistic (parametric); histogram binning,
/// isotonic regression, BBQ (non-parametric).
std::vector<std::unique_ptr<Calibrator>> MakeAllCalibrators();

}  // namespace calib
}  // namespace dbg4eth

#endif  // DBG4ETH_CALIB_CALIBRATOR_H_
