#include "gnn/gru.h"

#include "common/logging.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

GruCell::GruCell(int feature_dim, Rng* rng) : dim_(feature_dim) {
  DBG4ETH_CHECK_GT(feature_dim, 0);
  auto make = [&] {
    return ag::Tensor::Parameter(
        ag::XavierUniform(feature_dim, feature_dim, rng));
  };
  w_update_ = make();
  v_update_ = make();
  w_reset_ = make();
  v_reset_ = make();
  w_cand_ = make();
  v_cand_ = make();
  b_update_ = ag::Tensor::Parameter(Matrix(1, feature_dim));
  b_reset_ = ag::Tensor::Parameter(Matrix(1, feature_dim));
  b_cand_ = ag::Tensor::Parameter(Matrix(1, feature_dim));
}

ag::Tensor GruCell::Forward(const ag::Tensor& u_t,
                            const ag::Tensor& h_prev) const {
  using namespace ag;  // NOLINT(build/namespaces): local op readability.
  Tensor update = Sigmoid(AddRowBroadcast(
      Add(MatMul(u_t, w_update_), MatMul(h_prev, v_update_)), b_update_));
  Tensor reset = Sigmoid(AddRowBroadcast(
      Add(MatMul(u_t, w_reset_), MatMul(h_prev, v_reset_)), b_reset_));
  Tensor candidate = Tanh(AddRowBroadcast(
      Add(MatMul(u_t, w_cand_), MatMul(Mul(reset, h_prev), v_cand_)),
      b_cand_));
  // h_t = (1 - u) ⊙ h_prev + u ⊙ candidate.
  Tensor one_minus = ScalarAdd(ScalarMul(update, -1.0), 1.0);
  return Add(Mul(one_minus, h_prev), Mul(update, candidate));
}

std::vector<ag::Tensor> GruCell::Parameters() const {
  return {w_update_, v_update_, w_reset_, v_reset_, w_cand_,
          v_cand_,   b_update_, b_reset_, b_cand_};
}

}  // namespace gnn
}  // namespace dbg4eth
