#ifndef DBG4ETH_GNN_MODULE_H_
#define DBG4ETH_GNN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace dbg4eth {
namespace gnn {

/// \brief Base class for neural network building blocks.
///
/// Parameters are ag::Tensor handles shared with the optimizer; copying a
/// module shares (does not clone) its parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (recursively).
  virtual std::vector<ag::Tensor> Parameters() const = 0;

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const ag::Tensor& p : Parameters()) {
      total += static_cast<int64_t>(p.value().size());
    }
    return total;
  }
};

/// Concatenates the parameter lists of several modules.
inline std::vector<ag::Tensor> JoinParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<ag::Tensor> all;
  for (const Module* m : modules) {
    auto params = m->Parameters();
    all.insert(all.end(), params.begin(), params.end());
  }
  return all;
}

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_MODULE_H_
