#include "gnn/transformer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int model_dim, int num_heads,
                                               Rng* rng)
    : num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      output_(model_dim, model_dim, rng) {
  DBG4ETH_CHECK_GT(num_heads, 0);
  DBG4ETH_CHECK_EQ(model_dim % num_heads, 0);
  for (int h = 0; h < num_heads; ++h) {
    query_.emplace_back(model_dim, head_dim_, rng, /*bias=*/false);
    key_.emplace_back(model_dim, head_dim_, rng, /*bias=*/false);
    value_.emplace_back(model_dim, head_dim_, rng, /*bias=*/false);
  }
}

ag::Tensor MultiHeadSelfAttention::Forward(const ag::Tensor& x,
                                           const Matrix* attn_bias) const {
  using namespace ag;  // NOLINT(build/namespaces): local op readability.
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  Tensor concat;
  for (int h = 0; h < num_heads_; ++h) {
    Tensor q = query_[h].Forward(x);
    Tensor k = key_[h].Forward(x);
    Tensor v = value_[h].Forward(x);
    Tensor scores = ScalarMul(MatMul(q, Transpose(k)), scale);
    if (attn_bias != nullptr) {
      scores = Add(scores, Tensor::Constant(*attn_bias));
    }
    Tensor head = MatMul(SoftmaxRows(scores), v);
    concat = h == 0 ? head : ConcatCols(concat, head);
  }
  return output_.Forward(concat);
}

std::vector<ag::Tensor> MultiHeadSelfAttention::Parameters() const {
  std::vector<ag::Tensor> params = output_.Parameters();
  for (int h = 0; h < num_heads_; ++h) {
    for (const auto& p : query_[h].Parameters()) params.push_back(p);
    for (const auto& p : key_[h].Parameters()) params.push_back(p);
    for (const auto& p : value_[h].Parameters()) params.push_back(p);
  }
  return params;
}

TransformerBlock::TransformerBlock(int model_dim, int num_heads, int ffn_dim,
                                   Rng* rng)
    : attention_(model_dim, num_heads, rng),
      ffn1_(model_dim, ffn_dim, rng),
      ffn2_(ffn_dim, model_dim, rng) {}

ag::Tensor TransformerBlock::Forward(const ag::Tensor& x,
                                     const Matrix* attn_bias) const {
  ag::Tensor attended = ag::Add(x, attention_.Forward(x, attn_bias));
  ag::Tensor ffn_out = ffn2_.Forward(ag::Relu(ffn1_.Forward(attended)));
  return ag::Add(attended, ffn_out);
}

std::vector<ag::Tensor> TransformerBlock::Parameters() const {
  return JoinParameters({&attention_, &ffn1_, &ffn2_});
}

SequenceEncoder::SequenceEncoder(int input_dim, int model_dim, int num_blocks,
                                 int num_heads, int num_classes, Rng* rng)
    : embed_(input_dim, model_dim, rng), head_(model_dim, num_classes, rng) {
  for (int b = 0; b < num_blocks; ++b) {
    blocks_.emplace_back(model_dim, num_heads, 2 * model_dim, rng);
  }
}

ag::Tensor SequenceEncoder::Forward(const ag::Tensor& seq) const {
  ag::Tensor h = ag::Tanh(embed_.Forward(seq));
  for (const TransformerBlock& block : blocks_) {
    h = block.Forward(h, nullptr);
  }
  return head_.Forward(ag::MeanPoolRows(h));
}

std::vector<ag::Tensor> SequenceEncoder::Parameters() const {
  std::vector<ag::Tensor> params = JoinParameters({&embed_, &head_});
  for (const TransformerBlock& block : blocks_) {
    for (const auto& p : block.Parameters()) params.push_back(p);
  }
  return params;
}

GraphTransformer::GraphTransformer(int input_dim, int model_dim,
                                   int num_blocks, int num_heads,
                                   int num_classes, Rng* rng)
    : embed_(input_dim, model_dim, rng), head_(model_dim, num_classes, rng) {
  for (int b = 0; b < num_blocks; ++b) {
    blocks_.emplace_back(model_dim, num_heads, 2 * model_dim, rng);
  }
}

Matrix GraphTransformer::StructuralBias(const Matrix& adjacency) {
  const int n = adjacency.rows();
  Matrix bias(n, n);
  std::vector<double> degree(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) degree[i] += adjacency.At(i, j);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Connected pairs get an attention bonus; the diagonal carries the
      // node's log-degree (a cheap stand-in for GRIT's degree encoding).
      if (i == j) {
        bias.At(i, j) = std::log1p(degree[i]);
      } else if (adjacency.At(i, j) != 0.0) {
        bias.At(i, j) = 1.0;
      } else {
        bias.At(i, j) = -1.0;
      }
    }
  }
  return bias;
}

ag::Tensor GraphTransformer::Forward(const ag::Tensor& x,
                                     const Matrix& adjacency) const {
  const Matrix bias = StructuralBias(adjacency);
  ag::Tensor h = ag::Tanh(embed_.Forward(x));
  for (const TransformerBlock& block : blocks_) {
    h = block.Forward(h, &bias);
  }
  return head_.Forward(ag::MeanPoolRows(h));
}

std::vector<ag::Tensor> GraphTransformer::Parameters() const {
  std::vector<ag::Tensor> params = JoinParameters({&embed_, &head_});
  for (const TransformerBlock& block : blocks_) {
    for (const auto& p : block.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace gnn
}  // namespace dbg4eth
