#include "gnn/linear.h"

#include "common/logging.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  DBG4ETH_CHECK_GT(in_features, 0);
  DBG4ETH_CHECK_GT(out_features, 0);
  weight_ =
      ag::Tensor::Parameter(ag::XavierUniform(in_features, out_features, rng));
  if (has_bias_) {
    bias_ = ag::Tensor::Parameter(Matrix(1, out_features));
  }
}

ag::Tensor Linear::Forward(const ag::Tensor& x) const {
  ag::Tensor out = ag::MatMul(x, weight_);
  if (has_bias_) out = ag::AddRowBroadcast(out, bias_);
  return out;
}

std::vector<ag::Tensor> Linear::Parameters() const {
  if (has_bias_) return {weight_, bias_};
  return {weight_};
}

}  // namespace gnn
}  // namespace dbg4eth
