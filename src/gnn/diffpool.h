#ifndef DBG4ETH_GNN_DIFFPOOL_H_
#define DBG4ETH_GNN_DIFFPOOL_H_

#include <vector>

#include "gnn/conv.h"
#include "gnn/module.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Differentiable pooling (Ying et al.; paper Eq. 19-21).
///
/// M = softmax(GNN(A, H)) assigns the N current nodes to `num_clusters` new
/// nodes; features and adjacency are pooled as M^T H and M^T A M.
class DiffPool : public Module {
 public:
  DiffPool(int in_features, int num_clusters, Rng* rng);

  struct Output {
    ag::Tensor features;   ///< num_clusters x d.
    ag::Tensor adjacency;  ///< num_clusters x num_clusters.
  };

  /// `adj` may be a constant (first level) or a pooled, differentiable
  /// adjacency (deeper levels).
  Output Forward(const ag::Tensor& adj, const ag::Tensor& h) const;

  /// First-level overload for a constant CSR adjacency: assignment and both
  /// pooled products run through SpMM kernels. Bit-identical to the dense
  /// overload on adj->ToDense().
  Output Forward(std::shared_ptr<const SparseMatrix> adj,
                 const ag::Tensor& h) const;

  std::vector<ag::Tensor> Parameters() const override;

  int num_clusters() const { return num_clusters_; }

 private:
  int num_clusters_;
  GcnConv assign_gnn_;
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_DIFFPOOL_H_
