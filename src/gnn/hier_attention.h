#ifndef DBG4ETH_GNN_HIER_ATTENTION_H_
#define DBG4ETH_GNN_HIER_ATTENTION_H_

#include <vector>

#include "gnn/linear.h"
#include "gnn/module.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Graph-level attention readout of the hierarchical attention
/// network (paper Eq. 10-13).
///
/// The initial summary c = MaxPool(H) attends, together with every node,
/// over the linear score Θ_s [c || H_j]; attention weights beta combine the
/// projected rows into the subgraph embedding
///   g = Elu(beta_c Θ_g c + sum_j beta_j Θ_g H_j).
class GraphAttentionReadout : public Module {
 public:
  GraphAttentionReadout(int feature_dim, Rng* rng);

  /// H: N x d node embeddings -> 1 x d graph embedding.
  ag::Tensor Forward(const ag::Tensor& h) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear score_;    ///< Θ_s: 2d -> 1.
  Linear project_;  ///< Θ_g: d -> d.
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_HIER_ATTENTION_H_
