#ifndef DBG4ETH_GNN_LINEAR_H_
#define DBG4ETH_GNN_LINEAR_H_

#include <vector>

#include "gnn/module.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Affine layer y = x W + b with Xavier-initialized weights.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  /// x: N x in -> N x out.
  ag::Tensor Forward(const ag::Tensor& x) const;

  std::vector<ag::Tensor> Parameters() const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  bool has_bias_;
  ag::Tensor weight_;  ///< in x out.
  ag::Tensor bias_;    ///< 1 x out.
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_LINEAR_H_
