#include "gnn/conv.h"

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

GcnConv::GcnConv(int in_features, int out_features, Rng* rng)
    : linear_(in_features, out_features, rng) {}

ag::Tensor GcnConv::Forward(const ag::Tensor& adj, const ag::Tensor& x) const {
  return ag::MatMul(adj, linear_.Forward(x));
}

ag::Tensor GcnConv::Forward(std::shared_ptr<const SparseMatrix> adj,
                            const ag::Tensor& x) const {
  return ag::SpMM(std::move(adj), linear_.Forward(x));
}

std::vector<ag::Tensor> GcnConv::Parameters() const {
  return linear_.Parameters();
}

GatConv::GatConv(int in_features, int out_features, int num_heads, Rng* rng,
                 double negative_slope)
    : num_heads_(num_heads), negative_slope_(negative_slope) {
  DBG4ETH_CHECK_GT(num_heads, 0);
  for (int h = 0; h < num_heads; ++h) {
    weights_.push_back(
        ag::Tensor::Parameter(ag::XavierUniform(in_features, out_features,
                                                rng)));
    attn_src_.push_back(
        ag::Tensor::Parameter(ag::XavierUniform(out_features, 1, rng)));
    attn_dst_.push_back(
        ag::Tensor::Parameter(ag::XavierUniform(out_features, 1, rng)));
  }
}

ag::Tensor GatConv::Forward(const ag::Tensor& x, const Matrix& mask) const {
  return Forward(x, mask, nullptr);
}

ag::Tensor GatConv::Forward(
    const ag::Tensor& x, const Matrix& mask,
    const std::shared_ptr<const SparseMatrix>& support) const {
  ag::Tensor out;
  for (int h = 0; h < num_heads_; ++h) {
    ag::Tensor hw = ag::MatMul(x, weights_[h]);
    ag::Tensor u = ag::MatMul(hw, attn_src_[h]);
    ag::Tensor v = ag::MatMul(hw, attn_dst_[h]);
    ag::Tensor scores =
        ag::LeakyRelu(ag::PairwiseSum(u, v), negative_slope_);
    ag::Tensor alpha = ag::MaskedSoftmaxRows(scores, mask);
    ag::Tensor head = support != nullptr ? ag::MaskedSpMatMul(support, alpha, hw)
                                         : ag::MatMul(alpha, hw);
    out = h == 0 ? head : ag::ConcatCols(out, head);
  }
  return out;
}

ag::Tensor GatConv::ForwardPacked(
    const ag::Tensor& x,
    const std::shared_ptr<const SparseMatrix>& support) const {
  DBG4ETH_CHECK(support != nullptr);
  ag::Tensor out;
  for (int h = 0; h < num_heads_; ++h) {
    ag::Tensor hw = ag::MatMul(x, weights_[h]);
    ag::Tensor u = ag::MatMul(hw, attn_src_[h]);
    ag::Tensor v = ag::MatMul(hw, attn_dst_[h]);
    ag::Tensor alpha =
        ag::MaskedAttentionAlpha(support, u, v, negative_slope_);
    ag::Tensor head = ag::MaskedSpMatMul(support, alpha, hw);
    out = h == 0 ? head : ag::ConcatCols(out, head);
  }
  return out;
}

std::vector<ag::Tensor> GatConv::Parameters() const {
  std::vector<ag::Tensor> params;
  for (int h = 0; h < num_heads_; ++h) {
    params.push_back(weights_[h]);
    params.push_back(attn_src_[h]);
    params.push_back(attn_dst_[h]);
  }
  return params;
}

GinConv::GinConv(int in_features, int hidden_features, int out_features,
                 Rng* rng)
    : mlp1_(in_features, hidden_features, rng),
      mlp2_(hidden_features, out_features, rng),
      eps_(ag::Tensor::Parameter(Matrix(1, 1))) {}

ag::Tensor GinConv::Forward(const ag::Tensor& adj, const ag::Tensor& x) const {
  // (1 + eps) * x: scale every row by the learnable scalar.
  ag::Tensor scale = ag::ScalarAdd(eps_, 1.0);  // 1x1
  ag::Tensor ones = ag::Tensor::Constant(Matrix::Ones(x.rows(), 1));
  ag::Tensor scale_col = ag::MatMul(ones, scale);           // N x 1
  ag::Tensor scale_full =
      ag::MatMul(scale_col, ag::Tensor::Constant(Matrix::Ones(1, x.cols())));
  ag::Tensor combined = ag::Add(ag::Mul(scale_full, x), ag::MatMul(adj, x));
  return mlp2_.Forward(ag::Relu(mlp1_.Forward(combined)));
}

std::vector<ag::Tensor> GinConv::Parameters() const {
  auto params = JoinParameters({&mlp1_, &mlp2_});
  params.push_back(eps_);
  return params;
}

SageConv::SageConv(int in_features, int out_features, Rng* rng)
    : self_(in_features, out_features, rng),
      neigh_(in_features, out_features, rng, /*bias=*/false) {}

ag::Tensor SageConv::Forward(const ag::Tensor& mean_adj,
                             const ag::Tensor& x) const {
  return ag::Add(self_.Forward(x), neigh_.Forward(ag::MatMul(mean_adj, x)));
}

std::vector<ag::Tensor> SageConv::Parameters() const {
  return JoinParameters({&self_, &neigh_});
}

Appnp::Appnp(int in_features, int hidden_features, int out_features,
             int k_steps, double alpha, Rng* rng)
    : fc1_(in_features, hidden_features, rng),
      fc2_(hidden_features, out_features, rng),
      k_steps_(k_steps),
      alpha_(alpha) {}

ag::Tensor Appnp::Forward(const ag::Tensor& norm_adj,
                          const ag::Tensor& x) const {
  ag::Tensor h = fc2_.Forward(ag::Relu(fc1_.Forward(x)));
  ag::Tensor z = h;
  for (int k = 0; k < k_steps_; ++k) {
    z = ag::Add(ag::ScalarMul(ag::MatMul(norm_adj, z), 1.0 - alpha_),
                ag::ScalarMul(h, alpha_));
  }
  return z;
}

ag::Tensor Appnp::Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                          const ag::Tensor& x) const {
  ag::Tensor h = fc2_.Forward(ag::Relu(fc1_.Forward(x)));
  ag::Tensor z = h;
  for (int k = 0; k < k_steps_; ++k) {
    z = ag::Add(ag::ScalarMul(ag::SpMM(norm_adj, z), 1.0 - alpha_),
                ag::ScalarMul(h, alpha_));
  }
  return z;
}

std::vector<ag::Tensor> Appnp::Parameters() const {
  return JoinParameters({&fc1_, &fc2_});
}

}  // namespace gnn
}  // namespace dbg4eth
