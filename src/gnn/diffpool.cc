#include "gnn/diffpool.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

DiffPool::DiffPool(int in_features, int num_clusters, Rng* rng)
    : num_clusters_(num_clusters),
      assign_gnn_(in_features, num_clusters, rng) {
  DBG4ETH_CHECK_GT(num_clusters, 0);
}

DiffPool::Output DiffPool::Forward(const ag::Tensor& adj,
                                   const ag::Tensor& h) const {
  ag::Tensor assign = ag::SoftmaxRows(assign_gnn_.Forward(adj, h));
  ag::Tensor assign_t = ag::Transpose(assign);
  Output out;
  out.features = ag::MatMul(assign_t, h);
  out.adjacency = ag::MatMul(ag::MatMul(assign_t, adj), assign);
  return out;
}

DiffPool::Output DiffPool::Forward(std::shared_ptr<const SparseMatrix> adj,
                                   const ag::Tensor& h) const {
  ag::Tensor assign = ag::SoftmaxRows(assign_gnn_.Forward(adj, h));
  ag::Tensor assign_t = ag::Transpose(assign);
  Output out;
  out.features = ag::MatMul(assign_t, h);
  // M^T A = (A^T M)^T with the sparse transposed kernel; the trailing
  // product against M is a small dense c x N x c matmul.
  out.adjacency =
      ag::MatMul(ag::Transpose(ag::SpMMTransA(adj, assign)), assign);
  return out;
}

std::vector<ag::Tensor> DiffPool::Parameters() const {
  return assign_gnn_.Parameters();
}

}  // namespace gnn
}  // namespace dbg4eth
