#ifndef DBG4ETH_GNN_TRANSFORMER_H_
#define DBG4ETH_GNN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "gnn/linear.h"
#include "gnn/module.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Multi-head self-attention layer with an optional additive
/// attention bias (used as the structural bias of the graph transformer).
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int model_dim, int num_heads, Rng* rng);

  /// x: N x d. `attn_bias` (N x N), when non-null, is added to the raw
  /// attention scores of every head before the softmax.
  ag::Tensor Forward(const ag::Tensor& x, const Matrix* attn_bias) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  int num_heads_;
  int head_dim_;
  std::vector<Linear> query_;
  std::vector<Linear> key_;
  std::vector<Linear> value_;
  Linear output_;
};

/// \brief Pre-activation transformer block: x + MHSA(x), then x + FFN(x).
/// Small-model stand-in without layer norm (depth <= 2 in all experiments).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int model_dim, int num_heads, int ffn_dim, Rng* rng);

  ag::Tensor Forward(const ag::Tensor& x, const Matrix* attn_bias) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  MultiHeadSelfAttention attention_;
  Linear ffn1_;
  Linear ffn2_;
};

/// \brief Transaction-sequence encoder (BERT4ETH stand-in): embeds a
/// sequence of per-transaction feature rows, applies transformer blocks,
/// mean-pools and classifies.
class SequenceEncoder : public Module {
 public:
  SequenceEncoder(int input_dim, int model_dim, int num_blocks, int num_heads,
                  int num_classes, Rng* rng);

  /// seq: L x input_dim -> 1 x num_classes logits.
  ag::Tensor Forward(const ag::Tensor& seq) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear embed_;
  std::vector<TransformerBlock> blocks_;
  Linear head_;
};

/// \brief Graph transformer (GRIT stand-in): node features plus a
/// structural attention bias derived from the adjacency (log-degree on the
/// diagonal, connectivity bonus off-diagonal) replace explicit message
/// passing.
class GraphTransformer : public Module {
 public:
  GraphTransformer(int input_dim, int model_dim, int num_blocks,
                   int num_heads, int num_classes, Rng* rng);

  /// x: N x input_dim, adjacency: plain symmetric adjacency (no self
  /// loops). Returns 1 x num_classes logits.
  ag::Tensor Forward(const ag::Tensor& x, const Matrix& adjacency) const;

  /// The structural bias matrix used by Forward.
  static Matrix StructuralBias(const Matrix& adjacency);

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear embed_;
  std::vector<TransformerBlock> blocks_;
  Linear head_;
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_TRANSFORMER_H_
