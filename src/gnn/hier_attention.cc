#include "gnn/hier_attention.h"

#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {

GraphAttentionReadout::GraphAttentionReadout(int feature_dim, Rng* rng)
    : score_(2 * feature_dim, 1, rng), project_(feature_dim, feature_dim, rng) {}

ag::Tensor GraphAttentionReadout::Forward(const ag::Tensor& h) const {
  using namespace ag;  // NOLINT(build/namespaces): local op readability.
  const int n = h.rows();
  // Initial subgraph representation via global max pooling (Eq. 10).
  Tensor c = MaxPoolRows(h);  // 1 x d
  // Node scores s_j = LeakyReLU(Θ_s [c || H_j]) (Eq. 11) and the summary's
  // self-score s_c from [c || c].
  Tensor node_scores =
      LeakyRelu(score_.Forward(ConcatCols(BroadcastRow(c, n), h)));
  Tensor self_score = LeakyRelu(score_.Forward(ConcatCols(c, c)));
  Tensor all_scores = ConcatRows(self_score, node_scores);  // (n+1) x 1
  // beta = softmax over {c} ∪ V_i (Eq. 12).
  Tensor beta = SoftmaxColVector(all_scores);
  // g = Elu(beta^T [c ; H] Θ_g) (Eq. 13).
  Tensor stacked = ConcatRows(c, h);                    // (n+1) x d
  Tensor weighted = MatMul(Transpose(beta), stacked);   // 1 x d
  return Elu(project_.Forward(weighted));
}

std::vector<ag::Tensor> GraphAttentionReadout::Parameters() const {
  return JoinParameters({&score_, &project_});
}

}  // namespace gnn
}  // namespace dbg4eth
