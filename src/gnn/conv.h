#ifndef DBG4ETH_GNN_CONV_H_
#define DBG4ETH_GNN_CONV_H_

#include <memory>
#include <vector>

#include "gnn/linear.h"
#include "gnn/module.h"
#include "tensor/sparse.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Graph convolution (Kipf & Welling): H' = Â (H W) + b.
///
/// The propagation matrix Â is supplied per graph (typically
/// Graph::NormalizedAdjacency() wrapped as a constant tensor, or a
/// differentiable pooled adjacency inside DiffPool).
class GcnConv : public Module {
 public:
  GcnConv(int in_features, int out_features, Rng* rng);

  ag::Tensor Forward(const ag::Tensor& adj, const ag::Tensor& x) const;

  /// Sparse propagation: Â in CSR form (constant, e.g. the cached
  /// Graph::NormalizedAdjacencySparse()). The dense overload remains for
  /// differentiable adjacencies (DiffPool's pooled Â).
  ag::Tensor Forward(std::shared_ptr<const SparseMatrix> adj,
                     const ag::Tensor& x) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear linear_;
};

/// \brief Multi-head graph attention (Velickovic et al.).
///
/// Per head: e_ij = LeakyReLU(a_src . (W h_i) + a_dst . (W h_j)) restricted
/// to the support mask, alpha = softmax_j(e_ij), h'_i = sum_j alpha_ij W h_j.
/// Heads are concatenated.
class GatConv : public Module {
 public:
  /// `out_features` is the per-head width; output is heads * out_features.
  GatConv(int in_features, int out_features, int num_heads, Rng* rng,
          double negative_slope = 0.2);

  /// `mask` is the attention support (adjacency + self loops).
  ag::Tensor Forward(const ag::Tensor& x, const Matrix& mask) const;

  /// Mask-sparse variant: `support` is the CSR form of `mask` (from
  /// Graph::AttentionMaskSparse()); the alpha @ hW head product and its
  /// backward only touch support entries. Final parameter gradients are
  /// bit-identical to the dense overload.
  ag::Tensor Forward(const ag::Tensor& x, const Matrix& mask,
                     const std::shared_ptr<const SparseMatrix>& support) const;

  /// Support-only variant for block-diagonal packed batches: attention
  /// coefficients come from the fused MaskedAttentionAlpha kernel, so no
  /// dense N x N score matrix is built (N being the packed micro-batch's
  /// total node count). Each block's output rows are bit-identical to the
  /// other overloads run on that block alone.
  ag::Tensor ForwardPacked(
      const ag::Tensor& x,
      const std::shared_ptr<const SparseMatrix>& support) const;

  std::vector<ag::Tensor> Parameters() const override;

  int num_heads() const { return num_heads_; }

 private:
  int num_heads_;
  double negative_slope_;
  std::vector<ag::Tensor> weights_;   ///< Per head, in x out.
  std::vector<ag::Tensor> attn_src_;  ///< Per head, out x 1.
  std::vector<ag::Tensor> attn_dst_;  ///< Per head, out x 1.
};

/// \brief Graph isomorphism convolution (Xu et al.):
/// H' = MLP((1 + eps) H + A H) with sum aggregation and learnable eps.
class GinConv : public Module {
 public:
  GinConv(int in_features, int hidden_features, int out_features, Rng* rng);

  /// `adj` is the plain symmetric adjacency without self loops.
  ag::Tensor Forward(const ag::Tensor& adj, const ag::Tensor& x) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear mlp1_;
  Linear mlp2_;
  ag::Tensor eps_;  ///< 1 x 1.
};

/// \brief GraphSAGE convolution with mean aggregation:
/// H' = H W_self + mean_neigh(H) W_neigh + b.
class SageConv : public Module {
 public:
  SageConv(int in_features, int out_features, Rng* rng);

  /// `mean_adj` is the row-normalized neighbor matrix (no self loops).
  ag::Tensor Forward(const ag::Tensor& mean_adj, const ag::Tensor& x) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear self_;
  Linear neigh_;
};

/// \brief APPNP (Klicpera et al.): MLP prediction followed by K steps of
/// personalized-PageRank propagation z <- (1-alpha) Â z + alpha h.
class Appnp : public Module {
 public:
  Appnp(int in_features, int hidden_features, int out_features, int k_steps,
        double alpha, Rng* rng);

  ag::Tensor Forward(const ag::Tensor& norm_adj, const ag::Tensor& x) const;

  /// Sparse propagation with a constant CSR Â.
  ag::Tensor Forward(std::shared_ptr<const SparseMatrix> norm_adj,
                     const ag::Tensor& x) const;

  std::vector<ag::Tensor> Parameters() const override;

 private:
  Linear fc1_;
  Linear fc2_;
  int k_steps_;
  double alpha_;
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_CONV_H_
