#ifndef DBG4ETH_GNN_GRU_H_
#define DBG4ETH_GNN_GRU_H_

#include <vector>

#include "gnn/module.h"

namespace dbg4eth {

class Rng;

namespace gnn {

/// \brief Gated recurrent unit over node-feature matrices (paper Eq. 15-18).
///
/// Inputs are the topological features U_t (N x d) of the current time slice
/// and the evolutionary features h_{t-1} (N x d); output is h_t:
///   u_t  = sigmoid(U_t W_u + h_{t-1} V_u)
///   r_t  = sigmoid(U_t W_r + h_{t-1} V_r)
///   h~_t = tanh(U_t W + (r_t ⊙ h_{t-1}) V)
///   h_t  = (1 - u_t) ⊙ h_{t-1} + u_t ⊙ h~_t
class GruCell : public Module {
 public:
  GruCell(int feature_dim, Rng* rng);

  ag::Tensor Forward(const ag::Tensor& u_t, const ag::Tensor& h_prev) const;

  std::vector<ag::Tensor> Parameters() const override;

  int feature_dim() const { return dim_; }

 private:
  int dim_;
  ag::Tensor w_update_, v_update_;
  ag::Tensor w_reset_, v_reset_;
  ag::Tensor w_cand_, v_cand_;
  ag::Tensor b_update_, b_reset_, b_cand_;  ///< 1 x d biases.
};

}  // namespace gnn
}  // namespace dbg4eth

#endif  // DBG4ETH_GNN_GRU_H_
