#ifndef DBG4ETH_AUGMENT_CONTRASTIVE_H_
#define DBG4ETH_AUGMENT_CONTRASTIVE_H_

#include "tensor/tensor.h"

namespace dbg4eth {
namespace augment {

/// \brief Symmetric NT-Xent contrastive loss over two batches of graph
/// embeddings (one row per graph, same graph at the same row index).
///
/// Rows are L2-normalized, all-pairs cosine similarities are scaled by
/// 1/temperature, and each view must identify its positive partner among
/// the other view's rows:
///   L = 0.5 * [CE(sim, diag) + CE(sim^T, diag)].
/// Requires at least 2 rows (a single graph has no negatives).
ag::Tensor NtXentLoss(const ag::Tensor& z1, const ag::Tensor& z2,
                      double temperature = 0.5);

}  // namespace augment
}  // namespace dbg4eth

#endif  // DBG4ETH_AUGMENT_CONTRASTIVE_H_
