#include "augment/contrastive.h"

#include <vector>

#include "common/logging.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace augment {

ag::Tensor NtXentLoss(const ag::Tensor& z1, const ag::Tensor& z2,
                      double temperature) {
  DBG4ETH_CHECK_EQ(z1.rows(), z2.rows());
  DBG4ETH_CHECK_EQ(z1.cols(), z2.cols());
  DBG4ETH_CHECK_GE(z1.rows(), 2);
  DBG4ETH_CHECK_GT(temperature, 0.0);

  ag::Tensor n1 = ag::L2NormalizeRows(z1);
  ag::Tensor n2 = ag::L2NormalizeRows(z2);
  ag::Tensor sim =
      ag::ScalarMul(ag::MatMul(n1, ag::Transpose(n2)), 1.0 / temperature);
  std::vector<int> diag(z1.rows());
  for (int i = 0; i < z1.rows(); ++i) diag[i] = i;
  ag::Tensor loss12 = ag::SoftmaxCrossEntropy(sim, diag);
  ag::Tensor loss21 = ag::SoftmaxCrossEntropy(ag::Transpose(sim), diag);
  return ag::ScalarMul(ag::Add(loss12, loss21), 0.5);
}

}  // namespace augment
}  // namespace dbg4eth
