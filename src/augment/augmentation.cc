#include "augment/augmentation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace augment {

namespace {

/// GCA-style probability shaping: values with high score s get probability
/// below the base rate, low-score values above it, clamped at max_prob.
std::vector<double> ShapeProbabilities(const std::vector<double>& scores,
                                       double base_prob, double max_prob) {
  std::vector<double> probs(scores.size(), base_prob);
  if (scores.empty()) return probs;
  const double s_max = MaxOf(scores);
  const double s_mean = Mean(scores);
  const double denom = s_max - s_mean;
  if (denom <= 1e-12) return probs;  // Uniform scores: uniform probability.
  for (size_t i = 0; i < scores.size(); ++i) {
    probs[i] = std::min(base_prob * (s_max - scores[i]) / denom, max_prob);
  }
  return probs;
}

}  // namespace

std::vector<double> EdgeDropProbabilities(const graph::Graph& g,
                                          const AugmentationConfig& config) {
  const std::vector<double> centrality =
      graph::EdgeCentrality(g, config.measure);
  return ShapeProbabilities(centrality, config.edge_drop_prob,
                            config.max_prob);
}

std::vector<double> FeatureMaskProbabilities(
    const graph::Graph& g, const AugmentationConfig& config) {
  DBG4ETH_CHECK(!g.node_features.empty());
  const std::vector<double> node_c = graph::NodeCentrality(g, config.measure);
  const int dim = g.node_features.cols();
  // Salience of dimension d: sum_v centrality(v) * |x_{v,d}| (log-scaled).
  std::vector<double> salience(dim, 0.0);
  for (int v = 0; v < g.num_nodes; ++v) {
    for (int d = 0; d < dim; ++d) {
      salience[d] += node_c[v] * std::fabs(g.node_features.At(v, d));
    }
  }
  for (double& s : salience) s = std::log1p(s);
  return ShapeProbabilities(salience, config.feature_mask_prob,
                            config.max_prob);
}

graph::Graph AugmentGraph(const graph::Graph& g,
                          const AugmentationConfig& config, Rng* rng) {
  graph::Graph out;
  out.num_nodes = g.num_nodes;
  out.center = g.center;
  out.label = g.label;

  // Topology-level: drop edges adaptively.
  if (!g.edges.empty() && config.edge_drop_prob > 0.0) {
    const std::vector<double> drop = EdgeDropProbabilities(g, config);
    std::vector<int> kept;
    for (int m = 0; m < g.num_edges(); ++m) {
      if (!rng->Bernoulli(drop[m])) kept.push_back(m);
    }
    // Never drop every edge: keep the most central one if all were dropped.
    if (kept.empty()) {
      int best = 0;
      for (int m = 1; m < g.num_edges(); ++m) {
        if (drop[m] < drop[best]) best = m;
      }
      kept.push_back(best);
    }
    out.edges.reserve(kept.size());
    if (!g.edge_features.empty()) {
      out.edge_features =
          Matrix(static_cast<int>(kept.size()), g.edge_features.cols());
    }
    for (size_t i = 0; i < kept.size(); ++i) {
      out.edges.push_back(g.edges[kept[i]]);
      for (int c = 0; c < g.edge_features.cols(); ++c) {
        out.edge_features.At(static_cast<int>(i), c) =
            g.edge_features.At(kept[i], c);
      }
    }
  } else {
    out.edges = g.edges;
    out.edge_features = g.edge_features;
  }

  // Node-attribute-level: mask whole dimensions adaptively.
  out.node_features = g.node_features;
  if (!g.node_features.empty() && config.feature_mask_prob > 0.0) {
    const std::vector<double> mask = FeatureMaskProbabilities(g, config);
    for (int d = 0; d < out.node_features.cols(); ++d) {
      if (rng->Bernoulli(mask[d])) {
        for (int v = 0; v < out.num_nodes; ++v) {
          out.node_features.At(v, d) = 0.0;
        }
      }
    }
  }
  return out;
}

}  // namespace augment
}  // namespace dbg4eth
