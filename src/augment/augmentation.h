#ifndef DBG4ETH_AUGMENT_AUGMENTATION_H_
#define DBG4ETH_AUGMENT_AUGMENTATION_H_

#include "common/rng.h"
#include "graph/centrality.h"
#include "graph/graph.h"

namespace dbg4eth {
namespace augment {

/// \brief Parameters of graph contrastive learning with adaptive
/// augmentation (GCA, Zhu et al. 2021), used by the GSG encoder.
///
/// `edge_drop_prob` is the paper's P_e and `feature_mask_prob` its P_f; the
/// per-edge/per-dimension probabilities adapt around these base rates so
/// that central (important) edges and salient feature dimensions are
/// perturbed less.
struct AugmentationConfig {
  double edge_drop_prob = 0.3;
  double feature_mask_prob = 0.1;
  graph::CentralityMeasure measure = graph::CentralityMeasure::kDegree;
  /// Upper clamp on any individual drop/mask probability.
  double max_prob = 0.9;
};

/// Topology-level augmentation: drops each edge with probability inversely
/// related to its centrality (Eq. in Sec. IV-A3 / GCA Sec. 3.2), then
/// node-attribute-level augmentation: masks whole feature dimensions with
/// probability inversely related to their centrality-weighted salience.
graph::Graph AugmentGraph(const graph::Graph& g,
                          const AugmentationConfig& config, Rng* rng);

/// Per-edge adaptive drop probabilities (exposed for tests/analysis).
std::vector<double> EdgeDropProbabilities(const graph::Graph& g,
                                          const AugmentationConfig& config);

/// Per-dimension adaptive mask probabilities.
std::vector<double> FeatureMaskProbabilities(const graph::Graph& g,
                                             const AugmentationConfig& config);

}  // namespace augment
}  // namespace dbg4eth

#endif  // DBG4ETH_AUGMENT_AUGMENTATION_H_
