#include "embed/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace embed {

SkipGram::SkipGram(int vocab_size, const SkipGramConfig& config, Rng* rng)
    : vocab_size_(vocab_size), config_(config) {
  DBG4ETH_CHECK_GT(vocab_size, 0);
  const double bound = 0.5 / config.embedding_dim;
  in_ = Matrix::Random(vocab_size, config.embedding_dim, rng, -bound, bound);
  out_ = Matrix(vocab_size, config.embedding_dim);
}

void SkipGram::TrainPair(int center, int context, int label, double lr) {
  const int dim = config_.embedding_dim;
  double* v_in = in_.RowPtr(center);
  double* v_out = out_.RowPtr(context);
  double dot = 0.0;
  for (int d = 0; d < dim; ++d) dot += v_in[d] * v_out[d];
  const double grad = (Sigmoid(dot) - label) * lr;
  for (int d = 0; d < dim; ++d) {
    const double g_in = grad * v_out[d];
    v_out[d] -= grad * v_in[d];
    v_in[d] -= g_in;
  }
}

void SkipGram::Train(const std::vector<std::vector<int>>& walks, Rng* rng) {
  // Unigram^0.75 negative-sampling table.
  std::vector<double> counts(vocab_size_, 0.0);
  for (const auto& walk : walks) {
    for (int node : walk) {
      DBG4ETH_CHECK(node >= 0 && node < vocab_size_);
      counts[node] += 1.0;
    }
  }
  std::vector<double> noise(vocab_size_);
  for (int i = 0; i < vocab_size_; ++i) noise[i] = std::pow(counts[i], 0.75);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr = config_.learning_rate *
                      (1.0 - static_cast<double>(epoch) / config_.epochs);
    for (const auto& walk : walks) {
      const int len = static_cast<int>(walk.size());
      for (int i = 0; i < len; ++i) {
        const int lo = std::max(0, i - config_.window);
        const int hi = std::min(len - 1, i + config_.window);
        for (int j = lo; j <= hi; ++j) {
          if (j == i) continue;
          TrainPair(walk[i], walk[j], 1, lr);
          for (int k = 0; k < config_.negatives; ++k) {
            TrainPair(walk[i], rng->Categorical(noise), 0, lr);
          }
        }
      }
    }
  }
}

std::vector<double> EmbeddingSummary(const Matrix& embeddings) {
  const int n = embeddings.rows();
  const int d = embeddings.cols();
  std::vector<double> norms(n, 0.0);
  for (int r = 0; r < n; ++r) {
    double acc = 0.0;
    for (int c = 0; c < d; ++c) {
      acc += embeddings.At(r, c) * embeddings.At(r, c);
    }
    norms[r] = std::sqrt(acc);
  }
  std::vector<double> out(4, 0.0);
  if (n == 0) return out;
  out[0] = Mean(norms);
  out[1] = StdDev(norms);
  // Pairwise cosine statistics over a bounded number of pairs.
  double cos_sum = 0.0, cos_sq = 0.0;
  int pairs = 0;
  const int step = std::max(1, n / 24);
  for (int a = 0; a < n; a += step) {
    for (int b = a + step; b < n; b += step) {
      if (norms[a] < 1e-12 || norms[b] < 1e-12) continue;
      double dot = 0.0;
      for (int c = 0; c < d; ++c) {
        dot += embeddings.At(a, c) * embeddings.At(b, c);
      }
      const double cosine = dot / (norms[a] * norms[b]);
      cos_sum += cosine;
      cos_sq += cosine * cosine;
      ++pairs;
    }
  }
  if (pairs > 0) {
    out[2] = cos_sum / pairs;
    out[3] = std::sqrt(std::max(0.0, cos_sq / pairs - out[2] * out[2]));
  }
  return out;
}

std::vector<double> MeanEmbedding(const Matrix& embeddings) {
  std::vector<double> mean(embeddings.cols(), 0.0);
  if (embeddings.rows() == 0) return mean;
  for (int r = 0; r < embeddings.rows(); ++r) {
    for (int c = 0; c < embeddings.cols(); ++c) {
      mean[c] += embeddings.At(r, c);
    }
  }
  for (double& v : mean) v /= embeddings.rows();
  return mean;
}

}  // namespace embed
}  // namespace dbg4eth
