#ifndef DBG4ETH_EMBED_SKIPGRAM_H_
#define DBG4ETH_EMBED_SKIPGRAM_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace embed {

/// \brief Skip-gram with negative sampling (Word2Vec): the embedding
/// learner behind DeepWalk / Node2Vec / Trans2Vec.
struct SkipGramConfig {
  int embedding_dim = 64;
  int window = 5;
  int negatives = 5;
  double learning_rate = 0.025;
  int epochs = 2;
};

class SkipGram {
 public:
  SkipGram(int vocab_size, const SkipGramConfig& config, Rng* rng);

  /// One pass per epoch over all (center, context) pairs within the window,
  /// with `negatives` noise samples per pair drawn from the unigram^0.75
  /// distribution of the walks.
  void Train(const std::vector<std::vector<int>>& walks, Rng* rng);

  /// vocab_size x embedding_dim input embeddings.
  const Matrix& embeddings() const { return in_; }

  int vocab_size() const { return vocab_size_; }

 private:
  void TrainPair(int center, int context, int label, double lr);

  int vocab_size_;
  SkipGramConfig config_;
  Matrix in_;
  Matrix out_;
};

/// Mean of the embedding rows (graph-level representation used by the
/// embedding baselines with average pooling).
std::vector<double> MeanEmbedding(const Matrix& embeddings);

/// Rotation-invariant summary of an embedding cloud: mean and standard
/// deviation of row norms, and the mean and dispersion of pairwise cosine
/// similarities. Skip-gram spaces trained on different graphs are random
/// rotations of each other, so the plain mean embedding is not comparable
/// across graphs; these four statistics are.
std::vector<double> EmbeddingSummary(const Matrix& embeddings);

}  // namespace embed
}  // namespace dbg4eth

#endif  // DBG4ETH_EMBED_SKIPGRAM_H_
