#ifndef DBG4ETH_EMBED_RANDOM_WALK_H_
#define DBG4ETH_EMBED_RANDOM_WALK_H_

#include <vector>

#include "common/rng.h"
#include "eth/types.h"
#include "graph/graph.h"

namespace dbg4eth {
namespace embed {

/// Uniform random walks over the undirected view of g (DeepWalk).
/// Returns walks_per_node walks of length walk_length from every node that
/// has at least one neighbor.
std::vector<std::vector<int>> UniformWalks(const graph::Graph& g,
                                           int walks_per_node,
                                           int walk_length, Rng* rng);

/// Node2Vec second-order biased walks with return parameter p and in-out
/// parameter q.
std::vector<std::vector<int>> Node2VecWalks(const graph::Graph& g,
                                            int walks_per_node,
                                            int walk_length, double p,
                                            double q, Rng* rng);

/// Trans2Vec-style walks over a transaction subgraph: the next hop is
/// sampled proportionally to amount^alpha * recency^(1-alpha), where
/// recency is the normalized timestamp of the most recent transaction on
/// the edge (Wu et al.'s amount/timestamp biased walks).
std::vector<std::vector<int>> Trans2VecWalks(const eth::TxSubgraph& subgraph,
                                             int walks_per_node,
                                             int walk_length, double alpha,
                                             Rng* rng);

}  // namespace embed
}  // namespace dbg4eth

#endif  // DBG4ETH_EMBED_RANDOM_WALK_H_
