#include "embed/random_walk.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace dbg4eth {
namespace embed {

namespace {

std::vector<std::vector<int>> UndirectedNeighbors(const graph::Graph& g) {
  std::vector<std::vector<int>> nbrs(g.num_nodes);
  for (const graph::Edge& e : g.edges) {
    nbrs[e.src].push_back(e.dst);
    if (e.dst != e.src) nbrs[e.dst].push_back(e.src);
  }
  for (auto& v : nbrs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return nbrs;
}

}  // namespace

std::vector<std::vector<int>> UniformWalks(const graph::Graph& g,
                                           int walks_per_node,
                                           int walk_length, Rng* rng) {
  const auto nbrs = UndirectedNeighbors(g);
  std::vector<std::vector<int>> walks;
  for (int start = 0; start < g.num_nodes; ++start) {
    if (nbrs[start].empty()) continue;
    for (int w = 0; w < walks_per_node; ++w) {
      std::vector<int> walk = {start};
      int cur = start;
      for (int s = 1; s < walk_length; ++s) {
        const auto& options = nbrs[cur];
        if (options.empty()) break;
        cur = options[rng->UniformInt(static_cast<int>(options.size()))];
        walk.push_back(cur);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int>> Node2VecWalks(const graph::Graph& g,
                                            int walks_per_node,
                                            int walk_length, double p,
                                            double q, Rng* rng) {
  DBG4ETH_CHECK_GT(p, 0.0);
  DBG4ETH_CHECK_GT(q, 0.0);
  const auto nbrs = UndirectedNeighbors(g);
  // Fast membership test for the "distance 1 from prev" bias case.
  std::vector<std::unordered_map<int, bool>> adj(g.num_nodes);
  for (int v = 0; v < g.num_nodes; ++v) {
    for (int u : nbrs[v]) adj[v][u] = true;
  }

  std::vector<std::vector<int>> walks;
  std::vector<double> weights;
  for (int start = 0; start < g.num_nodes; ++start) {
    if (nbrs[start].empty()) continue;
    for (int w = 0; w < walks_per_node; ++w) {
      std::vector<int> walk = {start};
      int prev = -1;
      int cur = start;
      for (int s = 1; s < walk_length; ++s) {
        const auto& options = nbrs[cur];
        if (options.empty()) break;
        int next;
        if (prev < 0) {
          next = options[rng->UniformInt(static_cast<int>(options.size()))];
        } else {
          weights.assign(options.size(), 0.0);
          for (size_t i = 0; i < options.size(); ++i) {
            const int cand = options[i];
            if (cand == prev) {
              weights[i] = 1.0 / p;  // return
            } else if (adj[prev].count(cand)) {
              weights[i] = 1.0;  // distance 1: BFS-like
            } else {
              weights[i] = 1.0 / q;  // distance 2: DFS-like
            }
          }
          next = options[rng->Categorical(weights)];
        }
        walk.push_back(next);
        prev = cur;
        cur = next;
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<std::vector<int>> Trans2VecWalks(const eth::TxSubgraph& subgraph,
                                             int walks_per_node,
                                             int walk_length, double alpha,
                                             Rng* rng) {
  DBG4ETH_CHECK(alpha >= 0.0 && alpha <= 1.0);
  const int n = subgraph.num_nodes();
  // Aggregate per undirected pair: total amount and latest timestamp.
  struct PairStats {
    double amount = 0.0;
    double latest = 0.0;
  };
  std::vector<std::unordered_map<int, PairStats>> adj(n);
  double t_min = 1e300, t_max = -1e300;
  for (const auto& tx : subgraph.txs) {
    t_min = std::min(t_min, tx.timestamp);
    t_max = std::max(t_max, tx.timestamp);
  }
  const double span = std::max(t_max - t_min, 1e-9);
  for (const auto& tx : subgraph.txs) {
    const double recency = (tx.timestamp - t_min) / span;
    auto update = [&](int a, int b) {
      PairStats& st = adj[a][b];
      st.amount += tx.value;
      st.latest = std::max(st.latest, recency);
    };
    update(tx.src, tx.dst);
    if (tx.src != tx.dst) update(tx.dst, tx.src);
  }

  std::vector<std::vector<int>> walks;
  for (int start = 0; start < n; ++start) {
    if (adj[start].empty()) continue;
    for (int w = 0; w < walks_per_node; ++w) {
      std::vector<int> walk = {start};
      int cur = start;
      for (int s = 1; s < walk_length; ++s) {
        const auto& options = adj[cur];
        if (options.empty()) break;
        std::vector<int> cands;
        std::vector<double> weights;
        cands.reserve(options.size());
        weights.reserve(options.size());
        for (const auto& [peer, st] : options) {
          cands.push_back(peer);
          // amount^alpha * recency^(1-alpha); epsilon keeps stale edges
          // reachable.
          weights.push_back(std::pow(st.amount + 1e-9, alpha) *
                            std::pow(st.latest + 1e-3, 1.0 - alpha));
        }
        cur = cands[rng->Categorical(weights)];
        walk.push_back(cur);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

}  // namespace embed
}  // namespace dbg4eth
