#ifndef DBG4ETH_EMBED_GRAPH_EMBEDDING_H_
#define DBG4ETH_EMBED_GRAPH_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "embed/skipgram.h"
#include "eth/types.h"
#include "graph/graph.h"

namespace dbg4eth {
namespace embed {

/// Which walk generator feeds the skip-gram learner.
enum class WalkKind { kDeepWalk, kNode2Vec, kTrans2Vec };

/// \brief Configuration of the graph-embedding baselines (paper Sec. V-A4:
/// walk length 30, 200 walks, dimension 64, average pooling).
struct GraphEmbeddingConfig {
  WalkKind kind = WalkKind::kDeepWalk;
  int walks_per_node = 8;
  int walk_length = 30;
  /// Node2Vec biases.
  double p = 1.0;
  double q = 1.0;
  /// Trans2Vec amount-vs-recency balance.
  double alpha = 0.5;
  SkipGramConfig skipgram;
};

/// Learns node embeddings of one subgraph and returns the average-pooled
/// graph embedding concatenated with the rotation-invariant summary of the
/// embedding cloud (embedding_dim + 4 values; see EmbeddingSummary for why
/// the plain mean is not comparable across independently trained spaces).
/// For kTrans2Vec the walks are generated from the raw transaction
/// subgraph (amount/timestamp biased); for the others from the merged
/// static graph.
std::vector<double> GraphEmbedding(const graph::Graph& g,
                                   const eth::TxSubgraph& subgraph,
                                   const GraphEmbeddingConfig& config,
                                   Rng* rng);

/// Dimension of the GraphEmbedding output.
inline int GraphEmbeddingDim(const GraphEmbeddingConfig& config) {
  return config.skipgram.embedding_dim + 4;
}

}  // namespace embed
}  // namespace dbg4eth

#endif  // DBG4ETH_EMBED_GRAPH_EMBEDDING_H_
