#include "embed/graph_embedding.h"

#include "embed/random_walk.h"

namespace dbg4eth {
namespace embed {

std::vector<double> GraphEmbedding(const graph::Graph& g,
                                   const eth::TxSubgraph& subgraph,
                                   const GraphEmbeddingConfig& config,
                                   Rng* rng) {
  std::vector<std::vector<int>> walks;
  switch (config.kind) {
    case WalkKind::kDeepWalk:
      walks = UniformWalks(g, config.walks_per_node, config.walk_length, rng);
      break;
    case WalkKind::kNode2Vec:
      walks = Node2VecWalks(g, config.walks_per_node, config.walk_length,
                            config.p, config.q, rng);
      break;
    case WalkKind::kTrans2Vec:
      walks = Trans2VecWalks(subgraph, config.walks_per_node,
                             config.walk_length, config.alpha, rng);
      break;
  }
  if (walks.empty()) {
    return std::vector<double>(GraphEmbeddingDim(config), 0.0);
  }
  SkipGram model(g.num_nodes, config.skipgram, rng);
  model.Train(walks, rng);
  std::vector<double> out = MeanEmbedding(model.embeddings());
  const std::vector<double> summary = EmbeddingSummary(model.embeddings());
  out.insert(out.end(), summary.begin(), summary.end());
  return out;
}

}  // namespace embed
}  // namespace dbg4eth
