#ifndef DBG4ETH_ETH_LABEL_STORE_H_
#define DBG4ETH_ETH_LABEL_STORE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "eth/ledger.h"
#include "eth/types.h"

namespace dbg4eth {
namespace eth {

/// \brief Labeled-account registry standing in for Etherscan Label Cloud /
/// XLabelCloud.
///
/// The paper stresses label scarcity: only a fraction of accounts of each
/// class carry a public label. BuildFromLedger subsamples the ground truth
/// with the given coverage to reproduce that scarcity.
class LabelStore {
 public:
  LabelStore() = default;

  /// Registers a label; overwrites an existing one.
  void Add(AccountId id, AccountClass cls);

  /// Label of an account, if known.
  std::optional<AccountClass> Lookup(AccountId id) const;

  /// All labeled accounts of a class.
  std::vector<AccountId> LabeledAccounts(AccountClass cls) const;

  size_t size() const { return labels_.size(); }

  /// Samples each non-normal ledger account into the store with
  /// probability `coverage` (deterministic under `rng`).
  static LabelStore BuildFromLedger(const Ledger& ledger,
                                    double coverage, Rng* rng);

 private:
  std::unordered_map<AccountId, AccountClass> labels_;
};

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_LABEL_STORE_H_
