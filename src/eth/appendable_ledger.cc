#include "eth/appendable_ledger.h"

#include "common/string_util.h"

namespace dbg4eth {
namespace eth {

AppendableLedger::AppendableLedger(const Ledger& base)
    : accounts_(base.accounts()),
      transactions_(base.transactions()),
      coinbase_id_(base.coinbase_id()) {
  tx_index_.resize(accounts_.size());
  for (int i = 0; i < static_cast<int>(transactions_.size()); ++i) {
    const Transaction& tx = transactions_[i];
    if (tx.from >= 0 && tx.from < static_cast<AccountId>(tx_index_.size())) {
      tx_index_[tx.from].push_back(i);
    }
    if (tx.to >= 0 && tx.to < static_cast<AccountId>(tx_index_.size()) &&
        tx.to != tx.from) {
      tx_index_[tx.to].push_back(i);
    }
  }
}

Status AppendableLedger::Append(const Transaction& tx) {
  const auto num_accounts = static_cast<AccountId>(accounts_.size());
  if (tx.from < 0 || tx.from >= num_accounts || tx.to < 0 ||
      tx.to >= num_accounts) {
    return Status::InvalidArgument(
        StrFormat("transaction endpoints (%d -> %d) outside the account "
                  "table of size %d",
                  tx.from, tx.to, num_accounts));
  }
  if (!transactions_.empty() &&
      tx.timestamp < transactions_.back().timestamp) {
    return Status::InvalidArgument(StrFormat(
        "appended timestamp %.3f precedes ledger tip %.3f", tx.timestamp,
        transactions_.back().timestamp));
  }
  const int index = static_cast<int>(transactions_.size());
  transactions_.push_back(tx);
  tx_index_[tx.from].push_back(index);
  if (tx.to != tx.from) tx_index_[tx.to].push_back(index);
  return Status::OK();
}

const std::vector<int>& AppendableLedger::TransactionsOf(AccountId id) const {
  if (id < 0 || id >= static_cast<AccountId>(tx_index_.size())) {
    return empty_;
  }
  return tx_index_[id];
}

}  // namespace eth
}  // namespace dbg4eth
