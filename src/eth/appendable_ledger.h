#ifndef DBG4ETH_ETH_APPENDABLE_LEDGER_H_
#define DBG4ETH_ETH_APPENDABLE_LEDGER_H_

#include <vector>

#include "common/status.h"
#include "eth/ledger_base.h"

namespace dbg4eth {
namespace eth {

/// \brief Growable ledger: a snapshot of another ledger that accepts
/// appended transactions, maintaining the timestamp order and per-account
/// index invariants of the Ledger interface.
///
/// This is the serving-side ingestion shape — a chain keeps producing
/// blocks after the model is trained, and the service observes growth via
/// InferenceService::RefreshLedgerHeight. The simulator and CsvLedger are
/// both immutable after construction, so scenarios that need the ledger
/// height to advance (degraded-mode tests, benches, live pipelines) wrap
/// one in an AppendableLedger.
///
/// Not internally synchronized: appends must not race reads. Quiesce the
/// service (or serialize externally), Append, then RefreshLedgerHeight.
class AppendableLedger : public Ledger {
 public:
  /// Copies `base`'s accounts and transactions and rebuilds the index.
  explicit AppendableLedger(const Ledger& base);

  /// Appends one transaction. InvalidArgument when an endpoint is not an
  /// account of this ledger or the timestamp would break the sort order.
  Status Append(const Transaction& tx);

  const std::vector<Account>& accounts() const override { return accounts_; }
  const std::vector<Transaction>& transactions() const override {
    return transactions_;
  }
  const std::vector<int>& TransactionsOf(AccountId id) const override;
  AccountId coinbase_id() const override { return coinbase_id_; }

 private:
  std::vector<Account> accounts_;
  std::vector<Transaction> transactions_;
  std::vector<std::vector<int>> tx_index_;  ///< Per account id.
  std::vector<int> empty_;
  AccountId coinbase_id_ = -1;
};

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_APPENDABLE_LEDGER_H_
