#ifndef DBG4ETH_ETH_TYPES_H_
#define DBG4ETH_ETH_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbg4eth {
namespace eth {

/// Dense integer account identifier (index into the ledger's account table).
using AccountId = int32_t;

/// Ethereum account model: externally owned accounts vs contract accounts.
enum class AccountKind { kEoa, kContract };

/// Identity categories used in the paper's de-anonymization task. kNormal
/// covers unlabeled background accounts.
enum class AccountClass {
  kNormal = 0,
  kExchange,
  kIcoWallet,
  kMining,
  kPhishHack,
  kBridge,
  kDefi,
};

inline constexpr int kNumAccountClasses = 7;

/// Short lower-case name used in tables ("exchange", "ico-wallet", ...).
const char* AccountClassName(AccountClass cls);

/// Inverse of AccountClassName; returns kNormal for unknown strings.
AccountClass AccountClassFromName(const std::string& name);

/// \brief One Ethereum transaction (the fields the paper's pipeline uses).
struct Transaction {
  AccountId from = -1;
  AccountId to = -1;
  double value = 0.0;      ///< ETH transferred.
  double timestamp = 0.0;  ///< Seconds since the simulated genesis.
  double gas_price = 1e9;  ///< Wei per gas unit.
  double gas_used = 21000.0;
  bool is_contract_call = false;  ///< True when `to` is a contract account.
};

/// \brief Account metadata tracked by the ledger.
struct Account {
  AccountId id = -1;
  AccountKind kind = AccountKind::kEoa;
  AccountClass cls = AccountClass::kNormal;
};

/// \brief A transaction with endpoints re-indexed into a subgraph's local
/// node space; produced by graph sampling.
struct LocalTransaction {
  int src = -1;  ///< Local node index of the sender.
  int dst = -1;  ///< Local node index of the receiver.
  double value = 0.0;
  double timestamp = 0.0;
  double gas_price = 1e9;
  double gas_used = 21000.0;
  bool is_contract_call = false;
};

/// \brief Account-centred transaction subgraph: the unit of classification.
///
/// `nodes[i]` is the global account id of local node i; `center_index` is the
/// local index of the target (labeled) account; `txs` holds every retained
/// transaction between member nodes, sorted by timestamp.
struct TxSubgraph {
  std::vector<AccountId> nodes;
  std::vector<bool> is_contract;  ///< Parallel to `nodes`.
  int center_index = 0;
  std::vector<LocalTransaction> txs;
  AccountClass center_class = AccountClass::kNormal;
  int label = 0;  ///< Binary task label (1 = positive class).

  int num_nodes() const { return static_cast<int>(nodes.size()); }
};

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_TYPES_H_
