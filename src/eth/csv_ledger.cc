#include "eth/csv_ledger.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace eth {

namespace {

constexpr char kTxHeader[] =
    "from,to,value,timestamp,gas_price,gas_used,to_is_contract";
constexpr char kLabelHeader[] = "address,label";

/// Parses one numeric field. The field may carry surrounding whitespace
/// (it is trimmed); anything non-numeric, partially numeric, or outside
/// the finite double range (overflowing exponents, "inf", "nan") is an
/// InvalidArgument carrying the line number — hostile rows must never
/// poison downstream math or the timestamp sort.
Status ParseDouble(const std::string& raw, int line, double* out) {
  const std::string field = Trim(raw);
  if (field.empty()) {
    return Status::InvalidArgument(StrFormat("line %d: empty field", line));
  }
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("line %d: not a number: '%s'", line, field.c_str()));
  }
  if (errno == ERANGE || !std::isfinite(*out)) {
    return Status::InvalidArgument(
        StrFormat("line %d: number out of range: '%s'", line, field.c_str()));
  }
  return Status::OK();
}

/// Strips a UTF-8 byte-order mark, which spreadsheet exports routinely
/// prepend to the header line.
void StripBom(std::string* line) {
  if (line->size() >= 3 && (*line)[0] == '\xEF' && (*line)[1] == '\xBB' &&
      (*line)[2] == '\xBF') {
    line->erase(0, 3);
  }
}

}  // namespace

AccountId CsvLedger::Intern(const std::string& address, bool is_contract) {
  auto it = by_address_.find(address);
  if (it != by_address_.end()) {
    // Upgrade EOA -> contract if any transaction marks it as a call target.
    if (is_contract) {
      accounts_[it->second].kind = AccountKind::kContract;
    }
    return it->second;
  }
  const AccountId id = static_cast<AccountId>(accounts_.size());
  accounts_.push_back(Account{
      id, is_contract ? AccountKind::kContract : AccountKind::kEoa,
      AccountClass::kNormal});
  addresses_.push_back(address);
  by_address_[address] = id;
  return id;
}

Result<std::unique_ptr<CsvLedger>> CsvLedger::FromCsv(std::istream* is) {
  DBG4ETH_FAIL_POINT("eth.from_csv");
  std::unique_ptr<CsvLedger> ledger(new CsvLedger());
  std::string line;
  if (!std::getline(*is, line)) {
    return Status::InvalidArgument(
        std::string("expected transaction CSV header: ") + kTxHeader);
  }
  StripBom(&line);  // Trim handles CRLF; the BOM needs explicit stripping.
  if (Trim(line) != kTxHeader) {
    return Status::InvalidArgument(
        std::string("expected transaction CSV header: ") + kTxHeader);
  }
  int line_no = 1;
  while (std::getline(*is, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(trimmed, ',');
    if (fields.size() != 7) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 7 fields, got %zu", line_no,
                    fields.size()));
    }
    Transaction tx;
    DBG4ETH_RETURN_NOT_OK(ParseDouble(fields[2], line_no, &tx.value));
    DBG4ETH_RETURN_NOT_OK(ParseDouble(fields[3], line_no, &tx.timestamp));
    DBG4ETH_RETURN_NOT_OK(ParseDouble(fields[4], line_no, &tx.gas_price));
    DBG4ETH_RETURN_NOT_OK(ParseDouble(fields[5], line_no, &tx.gas_used));
    const std::string contract_flag = Trim(fields[6]);
    if (contract_flag != "0" && contract_flag != "1") {
      return Status::InvalidArgument(
          StrFormat("line %d: to_is_contract must be 0 or 1", line_no));
    }
    tx.is_contract_call = contract_flag == "1";
    if (tx.value < 0 || tx.gas_price < 0 || tx.gas_used < 0) {
      return Status::InvalidArgument(
          StrFormat("line %d: negative value/gas", line_no));
    }
    const std::string from = Trim(fields[0]);
    const std::string to = Trim(fields[1]);
    if (from.empty() || to.empty()) {
      return Status::InvalidArgument(
          StrFormat("line %d: empty address", line_no));
    }
    tx.from = ledger->Intern(from, /*is_contract=*/false);
    tx.to = ledger->Intern(to, tx.is_contract_call);
    ledger->transactions_.push_back(tx);
  }
  if (ledger->transactions_.empty()) {
    return Status::InvalidArgument("transaction CSV contains no rows");
  }
  std::sort(ledger->transactions_.begin(), ledger->transactions_.end(),
            [](const Transaction& a, const Transaction& b) {
              return a.timestamp < b.timestamp;
            });
  ledger->tx_index_.assign(ledger->accounts_.size(), {});
  for (int i = 0; i < static_cast<int>(ledger->transactions_.size()); ++i) {
    const Transaction& tx = ledger->transactions_[i];
    ledger->tx_index_[tx.from].push_back(i);
    if (tx.to != tx.from) ledger->tx_index_[tx.to].push_back(i);
  }
  return ledger;
}

Result<int> CsvLedger::LoadLabels(std::istream* is) {
  std::string line;
  if (!std::getline(*is, line)) {
    return Status::InvalidArgument(
        std::string("expected label CSV header: ") + kLabelHeader);
  }
  StripBom(&line);
  if (Trim(line) != kLabelHeader) {
    return Status::InvalidArgument(
        std::string("expected label CSV header: ") + kLabelHeader);
  }
  int applied = 0;
  int line_no = 1;
  while (std::getline(*is, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = Split(trimmed, ',');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 2 fields", line_no));
    }
    const AccountClass cls = AccountClassFromName(Trim(fields[1]));
    if (cls == AccountClass::kNormal) {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown label '%s'", line_no,
                    fields[1].c_str()));
    }
    auto it = by_address_.find(Trim(fields[0]));
    if (it == by_address_.end()) continue;  // outside the crawl window
    accounts_[it->second].cls = cls;
    ++applied;
  }
  return applied;
}

const std::vector<int>& CsvLedger::TransactionsOf(AccountId id) const {
  DBG4ETH_CHECK(id >= 0 && id < static_cast<AccountId>(tx_index_.size()));
  return tx_index_[id];
}

Result<AccountId> CsvLedger::Resolve(const std::string& address) const {
  auto it = by_address_.find(address);
  if (it == by_address_.end()) {
    return Status::NotFound("unknown address: " + address);
  }
  return it->second;
}

const std::string& CsvLedger::AddressOf(AccountId id) const {
  DBG4ETH_CHECK(id >= 0 && id < static_cast<AccountId>(addresses_.size()));
  return addresses_[id];
}

void WriteTransactionsCsv(const Ledger& ledger, std::ostream* os) {
  const auto* csv = dynamic_cast<const CsvLedger*>(&ledger);
  *os << kTxHeader << "\n";
  for (const Transaction& tx : ledger.transactions()) {
    const std::string from =
        csv ? csv->AddressOf(tx.from) : StrFormat("addr_%d", tx.from);
    const std::string to =
        csv ? csv->AddressOf(tx.to) : StrFormat("addr_%d", tx.to);
    *os << from << "," << to << ","
        << StrFormat("%.9g,%.9g,%.9g,%.9g,%d", tx.value, tx.timestamp,
                     tx.gas_price, tx.gas_used, tx.is_contract_call ? 1 : 0)
        << "\n";
  }
}

void WriteLabelsCsv(const Ledger& ledger, std::ostream* os) {
  const auto* csv = dynamic_cast<const CsvLedger*>(&ledger);
  *os << kLabelHeader << "\n";
  for (const Account& acc : ledger.accounts()) {
    if (acc.cls == AccountClass::kNormal) continue;
    const std::string address =
        csv ? csv->AddressOf(acc.id) : StrFormat("addr_%d", acc.id);
    *os << address << "," << AccountClassName(acc.cls) << "\n";
  }
}

}  // namespace eth
}  // namespace dbg4eth
