#include "eth/dataset.h"

#include <algorithm>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "features/node_features.h"
#include "obs/trace.h"

namespace dbg4eth {
namespace eth {

int SubgraphDataset::num_positives() const {
  int count = 0;
  for (const auto& inst : instances) count += inst.label;
  return count;
}

double SubgraphDataset::avg_nodes() const {
  if (instances.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& inst : instances) sum += inst.subgraph.num_nodes();
  return sum / instances.size();
}

double SubgraphDataset::avg_edges() const {
  if (instances.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& inst : instances) sum += inst.gsg.num_edges();
  return sum / instances.size();
}

std::vector<int> SubgraphDataset::labels() const {
  std::vector<int> out;
  out.reserve(instances.size());
  for (const auto& inst : instances) out.push_back(inst.label);
  return out;
}

Result<GraphInstance> MaterializeInstance(
    const Ledger& ledger, AccountId center,
    const graph::SamplingConfig& sampling, int num_time_slices) {
  if (num_time_slices < 1) {
    return Status::InvalidArgument("num_time_slices must be >= 1");
  }
  DBG4ETH_FAIL_POINT("eth.materialize");
  obs::TraceSpan span("materialize");
  obs::TraceSpan sample_span("sample_subgraph");
  Result<TxSubgraph> sub_result =
      graph::SampleSubgraph(ledger, center, sampling);
  sample_span.End();
  if (!sub_result.ok()) return sub_result.status();
  TxSubgraph sub = std::move(sub_result).ValueOrDie();
  if (sub.num_nodes() < 3 || sub.txs.empty()) {
    return Status::FailedPrecondition(
        "center yields a degenerate subgraph (< 3 nodes or no transactions)");
  }
  GraphInstance inst;
  {
    obs::TraceSpan build_span("build_graphs");
    inst.gsg = graph::BuildGlobalStaticGraph(sub);
    inst.ldg = graph::BuildLocalDynamicGraphs(sub, num_time_slices);
  }
  obs::TraceSpan features_span("node_features");
  const Matrix feats =
      features::LogScaleFeatures(features::ComputeNodeFeatures(sub));
  inst.gsg.node_features = feats;
  for (graph::Graph& slice : inst.ldg) slice.node_features = feats;
  features_span.End();
  inst.subgraph = std::move(sub);
  return inst;
}

namespace {

/// Expands one center into a GraphInstance; returns false when the center
/// yields a degenerate subgraph (fewer than 3 nodes or no transactions).
bool ExpandCenter(const Ledger& ledger, AccountId center, int label,
                  const DatasetConfig& config, GraphInstance* out) {
  auto result = MaterializeInstance(ledger, center, config.sampling,
                                    config.num_time_slices);
  if (!result.ok()) return false;
  GraphInstance inst = std::move(result).ValueOrDie();
  inst.label = label;
  inst.subgraph.label = label;
  *out = std::move(inst);
  return true;
}

}  // namespace

Result<SubgraphDataset> BuildDataset(const Ledger& ledger,
                                     const DatasetConfig& config) {
  if (config.target == AccountClass::kNormal) {
    return Status::InvalidArgument("target class must be a labeled class");
  }
  if (config.num_time_slices < 1) {
    return Status::InvalidArgument("num_time_slices must be >= 1");
  }
  Rng rng(config.seed);

  SubgraphDataset dataset;
  dataset.target = config.target;

  // Positive centers.
  std::vector<AccountId> positives = ledger.AccountsOfClass(config.target);
  if (positives.empty()) {
    return Status::NotFound("ledger has no accounts of the target class");
  }
  rng.Shuffle(&positives);
  if (config.max_positives > 0 &&
      static_cast<int>(positives.size()) > config.max_positives) {
    positives.resize(config.max_positives);
  }

  const int num_threads = ResolveNumThreads(config.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) {
    pool = std::make_unique<ThreadPool>(num_threads - 1);
  }

  // Positive centers are a fixed list, so they materialize in parallel
  // into per-center slots and merge in list order — exactly the serial
  // output.
  std::unordered_set<AccountId> used;
  std::vector<GraphInstance> pos_insts(positives.size());
  std::vector<char> pos_ok(positives.size(), 0);
  ParallelFor(pool.get(), static_cast<int>(positives.size()), [&](int i) {
    pos_ok[i] = ExpandCenter(ledger, positives[i], /*label=*/1, config,
                             &pos_insts[i])
                    ? 1
                    : 0;
  });
  int n_positive_ok = 0;
  for (size_t i = 0; i < positives.size(); ++i) {
    if (!pos_ok[i]) continue;
    pos_insts[i].subgraph.center_class = config.target;
    dataset.instances.push_back(std::move(pos_insts[i]));
    used.insert(positives[i]);
    ++n_positive_ok;
  }
  if (n_positive_ok == 0) {
    return Status::Internal("no positive center produced a usable subgraph");
  }

  // Negative centers: other labeled classes ("hard") + active normal users.
  const int n_negatives = static_cast<int>(
      std::max(1.0, config.negative_ratio * n_positive_ok));
  std::vector<AccountId> hard_pool;
  for (const Account& acc : ledger.accounts()) {
    if (acc.cls != AccountClass::kNormal && acc.cls != config.target) {
      hard_pool.push_back(acc.id);
    }
  }
  rng.Shuffle(&hard_pool);
  std::vector<AccountId> normal_pool;
  for (const Account& acc : ledger.accounts()) {
    if (acc.cls == AccountClass::kNormal && acc.id != ledger.coinbase_id() &&
        ledger.TransactionsOf(acc.id).size() >= 5) {
      normal_pool.push_back(acc.id);
    }
  }
  rng.Shuffle(&normal_pool);

  const int want_hard = static_cast<int>(
      n_negatives * Clamp(config.hard_negative_fraction, 0.0, 1.0));
  int added = 0;
  size_t hard_next = 0;
  size_t normal_next = 0;

  // The serial protocol: consume the next center of the hard pool while
  // fewer than want_hard negatives were *added*, else of the normal pool
  // (falling back to the other pool when one runs dry). Which pool a step
  // draws from therefore depends on how many earlier centers succeeded.
  const auto pick = [&](int cur_added, size_t* h, size_t* n,
                        AccountId* center) {
    if (cur_added < want_hard && *h < hard_pool.size()) {
      *center = hard_pool[(*h)++];
    } else if (*n < normal_pool.size()) {
      *center = normal_pool[(*n)++];
    } else if (*h < hard_pool.size()) {
      *center = hard_pool[(*h)++];
    } else {
      return false;  // Pools exhausted.
    }
    return true;
  };

  // Parallel negatives with byte-identical output: speculate a wave of
  // picks assuming every materialization succeeds, expand the wave in
  // parallel, then replay the serial protocol — committing speculative
  // results while the speculated pick matches the real one and discarding
  // the rest of the wave on the first divergence (a failed center can flip
  // later hard-vs-normal pool choices).
  const int wave_size = std::max(8, 4 * num_threads);
  while (added < n_negatives) {
    std::vector<AccountId> wave;
    wave.reserve(wave_size);
    {
      int sim_added = added;
      size_t sim_hard = hard_next;
      size_t sim_normal = normal_next;
      while (sim_added < n_negatives &&
             static_cast<int>(wave.size()) < wave_size) {
        AccountId center = -1;
        if (!pick(sim_added, &sim_hard, &sim_normal, &center)) break;
        if (used.count(center)) continue;  // Consumed without expansion.
        wave.push_back(center);
        ++sim_added;  // Speculate success.
      }
    }
    if (wave.empty()) break;  // Pools exhausted.

    std::vector<GraphInstance> wave_insts(wave.size());
    std::vector<char> wave_ok(wave.size(), 0);
    ParallelFor(pool.get(), static_cast<int>(wave.size()), [&](int i) {
      wave_ok[i] = ExpandCenter(ledger, wave[i], /*label=*/0, config,
                                &wave_insts[i])
                       ? 1
                       : 0;
    });

    for (size_t i = 0; i < wave.size() && added < n_negatives; ++i) {
      AccountId center = -1;
      size_t hard_save = hard_next;
      size_t normal_save = normal_next;
      bool picked = pick(added, &hard_next, &normal_next, &center);
      while (picked && used.count(center)) {
        hard_save = hard_next;
        normal_save = normal_next;
        picked = pick(added, &hard_next, &normal_next, &center);
      }
      if (!picked) break;
      if (center != wave[i]) {
        // Speculation diverged (an earlier failure changed the pool
        // choice): un-consume this pick and rebuild the wave.
        hard_next = hard_save;
        normal_next = normal_save;
        break;
      }
      if (!wave_ok[i]) continue;
      dataset.instances.push_back(std::move(wave_insts[i]));
      used.insert(center);
      ++added;
    }
  }

  if (added == 0) {
    return Status::Internal("no negative center produced a usable subgraph");
  }
  return dataset;
}

void StandardizeDataset(SubgraphDataset* dataset,
                        const std::vector<int>& fit_indices,
                        features::FeatureNormalizer* fitted) {
  DBG4ETH_CHECK(!fit_indices.empty());
  std::vector<const Matrix*> fit_mats;
  fit_mats.reserve(fit_indices.size());
  for (int idx : fit_indices) {
    DBG4ETH_CHECK(idx >= 0 && idx < dataset->num_graphs());
    fit_mats.push_back(&dataset->instances[idx].gsg.node_features);
  }
  features::FeatureNormalizer normalizer;
  normalizer.Fit(fit_mats);
  for (GraphInstance& inst : dataset->instances) {
    StandardizeInstance(normalizer, &inst);
  }
  if (fitted != nullptr) *fitted = normalizer;
}

void StandardizeInstance(const features::FeatureNormalizer& normalizer,
                         GraphInstance* instance) {
  const Matrix standardized =
      normalizer.Apply(instance->gsg.node_features);
  instance->gsg.node_features = standardized;
  for (graph::Graph& slice : instance->ldg) {
    slice.node_features = standardized;
  }
}

}  // namespace eth
}  // namespace dbg4eth
