#ifndef DBG4ETH_ETH_CSV_LEDGER_H_
#define DBG4ETH_ETH_CSV_LEDGER_H_

#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "eth/ledger_base.h"

namespace dbg4eth {
namespace eth {

/// \brief Ledger backed by a CSV export of real chain data (e.g. an
/// Etherscan transaction dump), so the full DBG4ETH pipeline can run on
/// actual Ethereum history instead of the simulator.
///
/// Transaction CSV columns (header required):
///   from,to,value,timestamp,gas_price,gas_used,to_is_contract
/// `from`/`to` are arbitrary address strings (0x... or any identifier);
/// `to_is_contract` is 0/1. Rows may appear in any order; they are sorted
/// by timestamp on load.
///
/// Label CSV columns (header required):
///   address,label
/// with label one of exchange, ico-wallet, mining, phish-hack, bridge,
/// defi (unknown labels are rejected).
class CsvLedger : public Ledger {
 public:
  /// Parses a transaction CSV. Fails with InvalidArgument on malformed
  /// rows (with the offending line number in the message).
  static Result<std::unique_ptr<CsvLedger>> FromCsv(std::istream* is);

  /// Applies account labels from a label CSV. Unknown addresses are
  /// reported in the returned count, not an error (public label clouds
  /// routinely contain addresses outside the crawl window).
  Result<int> LoadLabels(std::istream* is);

  const std::vector<Account>& accounts() const override { return accounts_; }
  const std::vector<Transaction>& transactions() const override {
    return transactions_;
  }
  const std::vector<int>& TransactionsOf(AccountId id) const override;

  /// Dense id of an address, if it appears in the ledger.
  Result<AccountId> Resolve(const std::string& address) const;

  /// Original address string of a dense id.
  const std::string& AddressOf(AccountId id) const;

 private:
  CsvLedger() = default;

  AccountId Intern(const std::string& address, bool is_contract);

  std::vector<Account> accounts_;
  std::vector<std::string> addresses_;
  std::unordered_map<std::string, AccountId> by_address_;
  std::vector<Transaction> transactions_;
  std::vector<std::vector<int>> tx_index_;
};

/// Writes a ledger's transactions in the CsvLedger::FromCsv format, using
/// `addr_<id>` as the address of account id (or the CsvLedger's original
/// addresses when exporting one). Useful for exporting simulator traffic
/// and for round-trip tests.
void WriteTransactionsCsv(const Ledger& ledger, std::ostream* os);

/// Writes the ledger's non-normal account labels in the LoadLabels format.
void WriteLabelsCsv(const Ledger& ledger, std::ostream* os);

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_CSV_LEDGER_H_
