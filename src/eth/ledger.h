#ifndef DBG4ETH_ETH_LEDGER_H_
#define DBG4ETH_ETH_LEDGER_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "eth/ledger_base.h"
#include "eth/types.h"

namespace dbg4eth {
namespace eth {

/// \brief Parameters of the synthetic Ethereum ledger.
///
/// Stands in for the paper's Xblock crawl (2015-08-07 .. 2024-02-18). Counts
/// are deliberately smaller than mainnet; what matters for the
/// de-anonymization task is that each labeled class carries a distinct
/// structural *and* temporal behavioural signature, which the generators
/// below produce.
struct LedgerConfig {
  int num_normal = 4000;
  int num_exchange = 70;
  int num_ico_wallet = 60;
  int num_mining = 45;
  int num_phish_hack = 90;
  int num_bridge = 50;
  int num_defi = 50;
  /// Tornado-Cash-style mixer contracts (paper Sec. VI future work):
  /// fixed-denomination deposits, delayed withdrawals to unlinked
  /// addresses. 0 disables the extension.
  int num_mixer = 0;
  /// When true, phishing accounts launder their proceeds through a mixer
  /// instead of sending directly to mule accounts, breaking the
  /// exfiltration edge the detector would otherwise see.
  bool phish_use_mixer = false;
  double duration_days = 365.0;
  /// Mean number of background transactions per normal user.
  double normal_activity_mean = 8.0;
  /// Cross-class behavioural noise in [0, 1]: labeled accounts gain random
  /// background traffic and some normal users mimic burst (phishing-like)
  /// or periodic (mining-like) patterns, blurring class boundaries the way
  /// real mainnet activity does.
  double behavior_noise = 0.35;
  uint64_t seed = 42;
};

/// \brief Synthetic Ethereum ledger with class-specific account behaviours.
///
/// Behavioural signatures (see DESIGN.md for the substitution rationale):
///  - exchange: persistent high-degree hub, balanced deposits/withdrawals
///    spread over the whole period;
///  - ico-wallet: dense funding burst from many one-shot contributors, then
///    a few large treasury outflows;
///  - mining: periodic coinbase rewards in, periodic fan-out payouts to a
///    stable member set;
///  - phish-hack: short-lived victim burst in, rapid exfiltration to a few
///    mule accounts;
///  - bridge (contract): value-mirrored deposit/release pairs throughout;
///  - defi (contract): high-gas contract-call churn with swap-style
///    in-and-out value flow and contract-to-contract composability;
///  - normal: sparse random peer-to-peer payments.
class LedgerSimulator : public Ledger {
 public:
  explicit LedgerSimulator(LedgerConfig config);

  LedgerSimulator(const LedgerSimulator&) = delete;
  LedgerSimulator& operator=(const LedgerSimulator&) = delete;

  /// Generates all accounts and transactions. Must be called once before
  /// any accessor; returns InvalidArgument for a malformed config.
  Status Generate();

  const LedgerConfig& config() const { return config_; }
  const std::vector<Account>& accounts() const override { return accounts_; }
  const std::vector<Transaction>& transactions() const override {
    return transactions_;
  }

  /// The synthetic coinbase (block-reward source) account.
  AccountId coinbase_id() const override { return 0; }

  /// Indices (into transactions()) of every transaction where `id` is
  /// sender or receiver, in timestamp order.
  const std::vector<int>& TransactionsOf(AccountId id) const override;

  /// Simulation horizon in seconds.
  double duration_seconds() const { return config_.duration_days * 86400.0; }

 private:
  AccountId AddAccount(AccountKind kind, AccountClass cls);
  void Emit(AccountId from, AccountId to, double value, double timestamp,
            double gas_used);
  AccountId RandomNormalUser();

  void GenerateNormalBackground();
  void GenerateBehaviorNoise(const std::vector<AccountId>& labeled);
  void GenerateMixerBackground(AccountId id);
  /// Routes `amount` from `from` into a mixer as fixed-denomination
  /// deposits; matching withdrawals later pay unlinked normal users.
  void LaunderThroughMixer(AccountId from, double amount, double start_time);
  void GenerateExchange(AccountId id);
  void GenerateIcoWallet(AccountId id);
  void GenerateMining(AccountId id);
  void GeneratePhishHack(AccountId id);
  void GenerateBridge(AccountId id);
  void GenerateDefi(AccountId id);
  void FinalizeIndexes();

  LedgerConfig config_;
  Rng rng_;
  bool generated_ = false;
  AccountId defi_base_ = -1;
  AccountId mixer_base_ = -1;
  std::vector<Account> accounts_;
  std::vector<Transaction> transactions_;
  std::vector<std::vector<int>> tx_index_;  ///< Per-account incident txs.
};

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_LEDGER_H_
