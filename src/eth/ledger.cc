#include "eth/ledger.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace eth {

namespace {

constexpr double kGwei = 1e9;
constexpr double kEoaGas = 21000.0;

}  // namespace

LedgerSimulator::LedgerSimulator(LedgerConfig config)
    : config_(config), rng_(config.seed) {}

AccountId LedgerSimulator::AddAccount(AccountKind kind, AccountClass cls) {
  const AccountId id = static_cast<AccountId>(accounts_.size());
  accounts_.push_back(Account{id, kind, cls});
  return id;
}

void LedgerSimulator::Emit(AccountId from, AccountId to, double value,
                           double timestamp, double gas_used) {
  Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.value = std::max(value, 1e-6);
  tx.timestamp = Clamp(timestamp, 0.0, duration_seconds());
  tx.gas_used = gas_used;
  // Gas price drifts around 20 gwei with per-tx noise.
  tx.gas_price = std::max(1.0, rng_.Normal(20.0, 6.0)) * kGwei;
  tx.is_contract_call = accounts_[to].kind == AccountKind::kContract;
  transactions_.push_back(tx);
}

AccountId LedgerSimulator::RandomNormalUser() {
  // Normal users are allocated first, right after the coinbase account.
  return 1 + rng_.UniformInt(config_.num_normal);
}

Status LedgerSimulator::Generate() {
  if (generated_) {
    return Status::FailedPrecondition("Generate() already called");
  }
  if (config_.num_normal < 100) {
    return Status::InvalidArgument("need at least 100 normal users");
  }
  if (config_.duration_days <= 1.0) {
    return Status::InvalidArgument("duration must exceed one day");
  }

  // Account id layout: [0] coinbase, [1 .. num_normal] normal users, then
  // one contiguous block per labeled class.
  AddAccount(AccountKind::kEoa, AccountClass::kNormal);  // coinbase
  for (int i = 0; i < config_.num_normal; ++i) {
    AddAccount(AccountKind::kEoa, AccountClass::kNormal);
  }
  std::vector<AccountId> exchanges, icos, miners, phishes, bridges, defis;
  for (int i = 0; i < config_.num_exchange; ++i) {
    exchanges.push_back(AddAccount(AccountKind::kEoa, AccountClass::kExchange));
  }
  for (int i = 0; i < config_.num_ico_wallet; ++i) {
    icos.push_back(AddAccount(AccountKind::kEoa, AccountClass::kIcoWallet));
  }
  for (int i = 0; i < config_.num_mining; ++i) {
    miners.push_back(AddAccount(AccountKind::kEoa, AccountClass::kMining));
  }
  for (int i = 0; i < config_.num_phish_hack; ++i) {
    phishes.push_back(AddAccount(AccountKind::kEoa, AccountClass::kPhishHack));
  }
  for (int i = 0; i < config_.num_bridge; ++i) {
    bridges.push_back(AddAccount(AccountKind::kContract, AccountClass::kBridge));
  }
  for (int i = 0; i < config_.num_defi; ++i) {
    AccountId id = AddAccount(AccountKind::kContract, AccountClass::kDefi);
    if (defi_base_ < 0) defi_base_ = id;
    defis.push_back(id);
  }
  std::vector<AccountId> mixers;
  for (int i = 0; i < config_.num_mixer; ++i) {
    // Mixers are unlabeled infrastructure contracts.
    AccountId id = AddAccount(AccountKind::kContract, AccountClass::kNormal);
    if (mixer_base_ < 0) mixer_base_ = id;
    mixers.push_back(id);
  }

  GenerateNormalBackground();
  for (AccountId id : mixers) GenerateMixerBackground(id);
  for (AccountId id : exchanges) GenerateExchange(id);
  for (AccountId id : icos) GenerateIcoWallet(id);
  for (AccountId id : miners) GenerateMining(id);
  for (AccountId id : phishes) GeneratePhishHack(id);
  for (AccountId id : bridges) GenerateBridge(id);
  for (AccountId id : defis) GenerateDefi(id);

  std::vector<AccountId> labeled;
  labeled.insert(labeled.end(), exchanges.begin(), exchanges.end());
  labeled.insert(labeled.end(), icos.begin(), icos.end());
  labeled.insert(labeled.end(), miners.begin(), miners.end());
  labeled.insert(labeled.end(), phishes.begin(), phishes.end());
  labeled.insert(labeled.end(), bridges.begin(), bridges.end());
  labeled.insert(labeled.end(), defis.begin(), defis.end());
  GenerateBehaviorNoise(labeled);

  FinalizeIndexes();
  generated_ = true;
  return Status::OK();
}

void LedgerSimulator::GenerateNormalBackground() {
  const double horizon = duration_seconds();
  for (int u = 1; u <= config_.num_normal; ++u) {
    const int n_tx = rng_.Poisson(config_.normal_activity_mean);
    for (int k = 0; k < n_tx; ++k) {
      AccountId peer = RandomNormalUser();
      if (peer == u) continue;
      Emit(u, peer, rng_.LogNormal(-1.5, 1.0), rng_.Uniform(0.0, horizon),
           kEoaGas);
    }
  }
}

namespace {

/// Tornado-style fixed pool denominations (ETH).
constexpr double kMixerDenominations[] = {0.1, 1.0, 10.0};

}  // namespace

void LedgerSimulator::GenerateMixerBackground(AccountId id) {
  // Legitimate privacy users: fixed-denomination deposits, withdrawals to
  // fresh (unlinked) addresses after a randomized delay.
  const double horizon = duration_seconds();
  const int n_flows = rng_.UniformInt(60, 140);
  for (int k = 0; k < n_flows; ++k) {
    const double denom = kMixerDenominations[rng_.UniformInt(3)];
    const double t = rng_.Uniform(0.0, horizon * 0.95);
    Emit(RandomNormalUser(), id, denom, t,
         rng_.Uniform(900000.0, 1100000.0));
    // Anonymity-set delay: hours to days.
    Emit(id, RandomNormalUser(), denom * 0.999,
         t + rng_.Uniform(3600.0, 5.0 * 86400.0),
         rng_.Uniform(300000.0, 400000.0));
  }
}

void LedgerSimulator::LaunderThroughMixer(AccountId from, double amount,
                                          double start_time) {
  DBG4ETH_CHECK_GE(mixer_base_, 0);
  const AccountId mixer = mixer_base_ + rng_.UniformInt(config_.num_mixer);
  double t = start_time;
  // Split into fixed denominations, largest first.
  for (double denom : {10.0, 1.0, 0.1}) {
    while (amount >= denom) {
      Emit(from, mixer, denom, t, rng_.Uniform(900000.0, 1100000.0));
      // The matching withdrawal pays an unlinked address much later.
      Emit(mixer, RandomNormalUser(), denom * 0.999,
           t + rng_.Uniform(6.0 * 3600.0, 7.0 * 86400.0),
           rng_.Uniform(300000.0, 400000.0));
      amount -= denom;
      t += rng_.Uniform(60.0, 1800.0);
    }
  }
}

void LedgerSimulator::GenerateBehaviorNoise(
    const std::vector<AccountId>& labeled) {
  const double noise = Clamp(config_.behavior_noise, 0.0, 1.0);
  if (noise <= 0.0) return;
  const double horizon = duration_seconds();

  // Labeled accounts also take part in unrelated background traffic, so
  // their subgraphs are not purely their signature pattern.
  for (AccountId id : labeled) {
    if (accounts_[id].kind == AccountKind::kContract) continue;
    const int n_noise = rng_.Poisson(noise * 18.0);
    for (int k = 0; k < n_noise; ++k) {
      const AccountId peer = RandomNormalUser();
      if (rng_.Bernoulli(0.5)) {
        Emit(id, peer, rng_.LogNormal(-1.0, 1.2), rng_.Uniform(0.0, horizon),
             kEoaGas);
      } else {
        Emit(peer, id, rng_.LogNormal(-1.0, 1.2), rng_.Uniform(0.0, horizon),
             kEoaGas);
      }
    }
  }

  // Some normal users mimic labeled signatures: merchants receive bursts
  // of small payments (phishing-like inflow), hobby miners receive regular
  // periodic income (mining-like).
  const int n_burst =
      static_cast<int>(noise * 0.06 * config_.num_normal);
  for (int b = 0; b < n_burst; ++b) {
    const AccountId merchant = RandomNormalUser();
    const double window = rng_.Uniform(1.0, 6.0) * 86400.0;
    const double t0 = rng_.Uniform(0.0, std::max(horizon - window, 1.0));
    const int n_payments = rng_.UniformInt(15, 60);
    for (int k = 0; k < n_payments; ++k) {
      Emit(RandomNormalUser(), merchant, rng_.LogNormal(-0.5, 1.0),
           t0 + rng_.Uniform() * window, kEoaGas);
    }
    // Periodic sweep of revenue to one account, phishing-exfil-like.
    Emit(merchant, RandomNormalUser(), rng_.LogNormal(1.0, 0.8),
         t0 + window + rng_.Uniform(3600.0, 86400.0), kEoaGas);
  }
  const int n_periodic =
      static_cast<int>(noise * 0.05 * config_.num_normal);
  for (int p = 0; p < n_periodic; ++p) {
    const AccountId worker = RandomNormalUser();
    const AccountId payer = RandomNormalUser();
    const double period = rng_.Uniform(5.0, 20.0) * 86400.0;
    for (double t = rng_.Uniform(0.0, period); t < horizon; t += period) {
      Emit(payer, worker, rng_.LogNormal(0.5, 0.3),
           t + rng_.Normal(0.0, 3600.0), kEoaGas);
    }
  }
}

void LedgerSimulator::GenerateExchange(AccountId id) {
  const double horizon = duration_seconds();
  // Persistent hub: deposits and withdrawals with many distinct users,
  // spread uniformly over the whole simulation.
  const int n_deposits = rng_.UniformInt(120, 200);
  for (int k = 0; k < n_deposits; ++k) {
    Emit(RandomNormalUser(), id, rng_.LogNormal(0.5, 1.2),
         rng_.Uniform(0.0, horizon), kEoaGas);
  }
  const int n_withdrawals = rng_.UniformInt(110, 190);
  for (int k = 0; k < n_withdrawals; ++k) {
    Emit(id, RandomNormalUser(), rng_.LogNormal(0.4, 1.2),
         rng_.Uniform(0.0, horizon), kEoaGas);
  }
  // Occasional inter-exchange settlement (large values).
  const int n_settlements = rng_.UniformInt(3, 10);
  for (int k = 0; k < n_settlements; ++k) {
    AccountId other =
        static_cast<AccountId>(1 + config_.num_normal +
                               rng_.UniformInt(config_.num_exchange));
    if (other == id) continue;
    Emit(id, other, rng_.LogNormal(4.0, 0.8), rng_.Uniform(0.0, horizon),
         kEoaGas);
  }
}

void LedgerSimulator::GenerateIcoWallet(AccountId id) {
  const double horizon = duration_seconds();
  // Funding window: contributions cluster early in the window.
  const double window = rng_.Uniform(7.0, 30.0) * 86400.0;
  const double t0 = rng_.Uniform(0.0, std::max(horizon - 2.0 * window, 1.0));
  const int n_contrib = rng_.UniformInt(80, 150);
  double raised = 0.0;
  for (int k = 0; k < n_contrib; ++k) {
    const double v = rng_.LogNormal(1.0, 1.0);
    raised += v;
    // Early-heavy arrival profile: squared uniform pushes mass to t0.
    const double u = rng_.Uniform();
    Emit(RandomNormalUser(), id, v, t0 + u * u * window, kEoaGas);
  }
  // Treasury drain after the window: few large transfers.
  const int n_out = rng_.UniformInt(5, 15);
  double remaining = raised;
  for (int k = 0; k < n_out; ++k) {
    const double v = remaining * rng_.Uniform(0.1, 0.35);
    remaining -= v;
    Emit(id, RandomNormalUser(), std::max(v, 0.5),
         t0 + window + rng_.Exponential(1.0 / (10.0 * 86400.0)), kEoaGas);
  }
}

void LedgerSimulator::GenerateMining(AccountId id) {
  const double horizon = duration_seconds();
  // Stable payout member set.
  const int n_members = rng_.UniformInt(20, 40);
  std::vector<AccountId> members(n_members);
  for (auto& m : members) m = RandomNormalUser();

  // Periodic block rewards from the coinbase (mean 6h interval).
  double t = rng_.Exponential(1.0 / (6.0 * 3600.0));
  double accumulated = 0.0;
  double last_payout = 0.0;
  const double payout_period = rng_.Uniform(2.0, 4.0) * 86400.0;
  while (t < horizon) {
    const double reward = std::max(0.5, rng_.Normal(2.5, 0.5));
    Emit(coinbase_id(), id, reward, t, kEoaGas);
    accumulated += reward;
    if (t - last_payout > payout_period && accumulated > 1.0) {
      // Fan-out payout to every member, proportional shares with jitter.
      for (AccountId m : members) {
        const double share =
            accumulated / n_members * rng_.Uniform(0.7, 1.3);
        Emit(id, m, share, t + rng_.Uniform(60.0, 3600.0), kEoaGas);
      }
      accumulated = 0.0;
      last_payout = t;
    }
    t += rng_.Exponential(1.0 / (6.0 * 3600.0));
  }
}

void LedgerSimulator::GeneratePhishHack(AccountId id) {
  const double horizon = duration_seconds();
  // Short active window with a bursty victim inflow.
  const double window = rng_.Uniform(1.0, 5.0) * 86400.0;
  const double t0 = rng_.Uniform(0.0, std::max(horizon - 2.0 * window, 1.0));
  const int n_victims = rng_.UniformInt(40, 120);
  // 1-3 mule accounts receive the exfiltrated funds.
  const int n_mules = rng_.UniformInt(1, 3);
  std::vector<AccountId> mules(n_mules);
  for (auto& m : mules) m = RandomNormalUser();

  double stolen = 0.0;
  double last_burst = t0;
  for (int k = 0; k < n_victims; ++k) {
    const double v = rng_.LogNormal(0.0, 1.3);
    stolen += v;
    const double tv = t0 + rng_.Uniform() * window;
    Emit(RandomNormalUser(), id, v, tv, kEoaGas);
    last_burst = std::max(last_burst, tv);
    // Rapid exfiltration: every few victims, sweep the balance within
    // minutes-to-hours — directly to a mule, or through a mixer when the
    // privacy-service extension is enabled.
    const bool launder = config_.phish_use_mixer && config_.num_mixer > 0;
    if (stolen > 5.0 && rng_.Bernoulli(0.3)) {
      const double swept = stolen * rng_.Uniform(0.8, 1.0);
      if (launder) {
        LaunderThroughMixer(id, swept, tv + rng_.Uniform(120.0, 7200.0));
      } else {
        Emit(id, mules[rng_.UniformInt(n_mules)], swept,
             tv + rng_.Uniform(120.0, 7200.0), kEoaGas);
      }
      stolen = 0.0;
    }
  }
  if (stolen > 0.0) {
    if (config_.phish_use_mixer && config_.num_mixer > 0) {
      LaunderThroughMixer(id, stolen,
                          last_burst + rng_.Uniform(120.0, 7200.0));
    } else {
      Emit(id, mules[rng_.UniformInt(n_mules)], stolen,
           last_burst + rng_.Uniform(120.0, 7200.0), kEoaGas);
    }
  }
}

void LedgerSimulator::GenerateBridge(AccountId id) {
  const double horizon = duration_seconds();
  // Lock/release pairs with mirrored value (minus fee), continuous activity.
  const int n_pairs = rng_.UniformInt(120, 250);
  for (int k = 0; k < n_pairs; ++k) {
    const double v = rng_.LogNormal(0.8, 1.1);
    const double t = rng_.Uniform(0.0, horizon);
    const AccountId depositor = RandomNormalUser();
    Emit(depositor, id, v, t, rng_.Uniform(80000.0, 120000.0));
    // Release to the same or a different user shortly after.
    const AccountId receiver =
        rng_.Bernoulli(0.5) ? depositor : RandomNormalUser();
    Emit(id, receiver, v * rng_.Uniform(0.990, 0.999),
         t + rng_.Uniform(60.0, 1800.0), kEoaGas);
  }
}

void LedgerSimulator::GenerateDefi(AccountId id) {
  const double horizon = duration_seconds();
  // Swap-style churn: users call the contract with value in, value out, at
  // high gas; plus contract-to-contract composability calls.
  const int n_swaps = rng_.UniformInt(150, 300);
  for (int k = 0; k < n_swaps; ++k) {
    const double v = rng_.LogNormal(0.0, 1.8);
    const double t = rng_.Uniform(0.0, horizon);
    const AccountId user = RandomNormalUser();
    Emit(user, id, v, t, rng_.Uniform(150000.0, 400000.0));
    if (rng_.Bernoulli(0.8)) {
      Emit(id, user, v * rng_.Uniform(0.9, 1.1), t + rng_.Uniform(5.0, 120.0),
           rng_.Uniform(40000.0, 90000.0));
    }
  }
  // Composability: periodic calls between DeFi contracts.
  if (config_.num_defi > 1) {
    const int n_calls = rng_.UniformInt(10, 30);
    for (int k = 0; k < n_calls; ++k) {
      AccountId other = defi_base_ + rng_.UniformInt(config_.num_defi);
      if (other == id || other < 0 ||
          other >= static_cast<AccountId>(accounts_.size())) {
        continue;
      }
      Emit(id, other, rng_.LogNormal(1.5, 1.0), rng_.Uniform(0.0, horizon),
           rng_.Uniform(200000.0, 500000.0));
    }
  }
}

void LedgerSimulator::FinalizeIndexes() {
  std::sort(transactions_.begin(), transactions_.end(),
            [](const Transaction& a, const Transaction& b) {
              return a.timestamp < b.timestamp;
            });
  tx_index_.assign(accounts_.size(), {});
  for (int i = 0; i < static_cast<int>(transactions_.size()); ++i) {
    tx_index_[transactions_[i].from].push_back(i);
    if (transactions_[i].to != transactions_[i].from) {
      tx_index_[transactions_[i].to].push_back(i);
    }
  }
}

const std::vector<int>& LedgerSimulator::TransactionsOf(AccountId id) const {
  DBG4ETH_CHECK(generated_);
  DBG4ETH_CHECK(id >= 0 && id < static_cast<AccountId>(tx_index_.size()));
  return tx_index_[id];
}

}  // namespace eth
}  // namespace dbg4eth
