#include "eth/types.h"

namespace dbg4eth {
namespace eth {

const char* AccountClassName(AccountClass cls) {
  switch (cls) {
    case AccountClass::kNormal:
      return "normal";
    case AccountClass::kExchange:
      return "exchange";
    case AccountClass::kIcoWallet:
      return "ico-wallet";
    case AccountClass::kMining:
      return "mining";
    case AccountClass::kPhishHack:
      return "phish-hack";
    case AccountClass::kBridge:
      return "bridge";
    case AccountClass::kDefi:
      return "defi";
  }
  return "unknown";
}

AccountClass AccountClassFromName(const std::string& name) {
  for (int i = 0; i < kNumAccountClasses; ++i) {
    const auto cls = static_cast<AccountClass>(i);
    if (name == AccountClassName(cls)) return cls;
  }
  return AccountClass::kNormal;
}

}  // namespace eth
}  // namespace dbg4eth
