#ifndef DBG4ETH_ETH_LEDGER_BASE_H_
#define DBG4ETH_ETH_LEDGER_BASE_H_

#include <vector>

#include "eth/types.h"

namespace dbg4eth {
namespace eth {

/// \brief Read interface of a transaction ledger: the data source the
/// sampling / dataset pipeline consumes.
///
/// Implementations: LedgerSimulator (synthetic behavioural generator) and
/// CsvLedger (transactions exported from a real chain, e.g. an Etherscan
/// dump).
class Ledger {
 public:
  virtual ~Ledger() = default;

  virtual const std::vector<Account>& accounts() const = 0;

  /// All transactions, sorted by timestamp.
  virtual const std::vector<Transaction>& transactions() const = 0;

  /// Indices (into transactions()) of every transaction where `id` is
  /// sender or receiver, in timestamp order.
  virtual const std::vector<int>& TransactionsOf(AccountId id) const = 0;

  /// The block-reward source account, when the ledger has one; -1
  /// otherwise. Excluded from negative sampling pools.
  virtual AccountId coinbase_id() const { return -1; }

  /// All account ids of the given class.
  std::vector<AccountId> AccountsOfClass(AccountClass cls) const {
    std::vector<AccountId> out;
    for (const Account& acc : accounts()) {
      if (acc.cls == cls) out.push_back(acc.id);
    }
    return out;
  }
};

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_LEDGER_BASE_H_
