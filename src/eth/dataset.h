#ifndef DBG4ETH_ETH_DATASET_H_
#define DBG4ETH_ETH_DATASET_H_

#include <vector>

#include "common/result.h"
#include "eth/ledger.h"
#include "eth/types.h"
#include "features/node_features.h"
#include "graph/build.h"
#include "graph/graph.h"
#include "graph/sampling.h"

namespace dbg4eth {
namespace eth {

/// \brief Configuration for one binary account-identification dataset
/// ("is this account an <target>?", Section V-A1).
struct DatasetConfig {
  AccountClass target = AccountClass::kExchange;
  /// Cap on positive (labeled) centers; -1 keeps all available.
  int max_positives = -1;
  /// Negatives per positive. Table II has graphs ~= 2x positives, i.e. 1.0.
  double negative_ratio = 1.0;
  /// Fraction of negative centers drawn from other labeled classes (the
  /// rest are active normal users).
  double hard_negative_fraction = 0.45;
  graph::SamplingConfig sampling;
  /// Number of LDG time slices T (paper uses 10).
  int num_time_slices = 10;
  uint64_t seed = 7;
  /// Worker threads for subgraph materialization. Center selection stays
  /// serial (and the output is byte-identical for every value — parallel
  /// candidates are speculatively materialized and committed in the serial
  /// order); 0 = one per hardware thread.
  int num_threads = 1;
};

/// \brief One classification instance: the sampled subgraph plus its GSG
/// and LDG materializations with log-scaled node features attached.
struct GraphInstance {
  TxSubgraph subgraph;
  graph::Graph gsg;
  std::vector<graph::Graph> ldg;
  int label = 0;
};

/// \brief A binary subgraph-classification dataset for one account type.
struct SubgraphDataset {
  AccountClass target = AccountClass::kNormal;
  std::vector<GraphInstance> instances;

  int num_graphs() const { return static_cast<int>(instances.size()); }
  int num_positives() const;
  double avg_nodes() const;
  double avg_edges() const;
  std::vector<int> labels() const;
};

/// Materializes the account-centred instance for a single address: top-K
/// subgraph sampling around `center`, GSG and LDG construction, and
/// log-scaled node features (Table I). This is the per-request path the
/// serving layer uses; BuildDataset applies the same expansion to every
/// center. Fails with NotFound when the center has no transactions and
/// FailedPrecondition when the subgraph is degenerate (< 3 nodes or no
/// transactions). The returned instance carries raw log-scaled features;
/// standardize with StandardizeInstance / Dbg4Eth::Normalize before
/// scoring.
Result<GraphInstance> MaterializeInstance(const Ledger& ledger,
                                          AccountId center,
                                          const graph::SamplingConfig& sampling,
                                          int num_time_slices);

/// Builds the dataset: positive centers are all (or max_positives) accounts
/// of the target class; negative centers mix active normal users with other
/// labeled classes. Every center is expanded with top-K sampling, node
/// features are computed per Table I and log-scaled (dataset-level
/// standardization is applied by the training harness on the train split).
Result<SubgraphDataset> BuildDataset(const Ledger& ledger,
                                     const DatasetConfig& config);

/// Standardizes node features of all instances in place using statistics of
/// the instances listed in `fit_indices` (typically the training split).
/// Both the GSG and every LDG slice share the standardized matrix. When
/// `fitted` is non-null the fitted normalizer is returned so callers can
/// standardize instances materialized outside the dataset the same way.
void StandardizeDataset(SubgraphDataset* dataset,
                        const std::vector<int>& fit_indices,
                        features::FeatureNormalizer* fitted = nullptr);

/// Applies a fitted normalizer to one instance's node features in place
/// (GSG and all LDG slices).
void StandardizeInstance(const features::FeatureNormalizer& normalizer,
                         GraphInstance* instance);

}  // namespace eth
}  // namespace dbg4eth

#endif  // DBG4ETH_ETH_DATASET_H_
