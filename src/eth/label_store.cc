#include "eth/label_store.h"

#include <algorithm>

namespace dbg4eth {
namespace eth {

void LabelStore::Add(AccountId id, AccountClass cls) { labels_[id] = cls; }

std::optional<AccountClass> LabelStore::Lookup(AccountId id) const {
  auto it = labels_.find(id);
  if (it == labels_.end()) return std::nullopt;
  return it->second;
}

std::vector<AccountId> LabelStore::LabeledAccounts(AccountClass cls) const {
  std::vector<AccountId> out;
  for (const auto& [id, c] : labels_) {
    if (c == cls) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

LabelStore LabelStore::BuildFromLedger(const Ledger& ledger,
                                       double coverage, Rng* rng) {
  LabelStore store;
  for (const Account& acc : ledger.accounts()) {
    if (acc.cls == AccountClass::kNormal) continue;
    if (rng->Bernoulli(coverage)) store.Add(acc.id, acc.cls);
  }
  return store;
}

}  // namespace eth
}  // namespace dbg4eth
