#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/logging.h"
#include "common/math_util.h"
#include "core/gsg_encoder.h"
#include "core/parallel_trainer.h"
#include "embed/graph_embedding.h"
#include "gnn/conv.h"
#include "gnn/gru.h"
#include "gnn/hier_attention.h"
#include "gnn/linear.h"
#include "gnn/transformer.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/split.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace dbg4eth {
namespace core {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kDeepWalk:
      return "DeepWalk";
    case BaselineKind::kNode2Vec:
      return "Node2Vec";
    case BaselineKind::kGcnNoFeatures:
      return "GCN(w/o node feature)";
    case BaselineKind::kGcn:
      return "GCN";
    case BaselineKind::kGatNoFeatures:
      return "GAT(w/o node feature)";
    case BaselineKind::kGat:
      return "GAT";
    case BaselineKind::kGinNoFeatures:
      return "GIN(w/o node feature)";
    case BaselineKind::kGin:
      return "GIN";
    case BaselineKind::kGraphSage:
      return "GraphSAGE";
    case BaselineKind::kAppnp:
      return "APPNP";
    case BaselineKind::kGrit:
      return "GRIT";
    case BaselineKind::kTrans2Vec:
      return "Trans2Vec";
    case BaselineKind::kI2bgnnNoFeatures:
      return "I2BGNN(w/o node feature)";
    case BaselineKind::kI2bgnn:
      return "I2BGNN";
    case BaselineKind::kTsgn:
      return "TSGN";
    case BaselineKind::kEthident:
      return "Ethident";
    case BaselineKind::kTegDetector:
      return "TEGDetector";
    case BaselineKind::kBert4Eth:
      return "BERT4ETH";
  }
  return "unknown";
}

std::vector<BaselineKind> AllBaselines() {
  return {BaselineKind::kDeepWalk,        BaselineKind::kNode2Vec,
          BaselineKind::kGcnNoFeatures,   BaselineKind::kGcn,
          BaselineKind::kGatNoFeatures,   BaselineKind::kGat,
          BaselineKind::kGinNoFeatures,   BaselineKind::kGin,
          BaselineKind::kGraphSage,       BaselineKind::kAppnp,
          BaselineKind::kGrit,            BaselineKind::kTrans2Vec,
          BaselineKind::kI2bgnnNoFeatures, BaselineKind::kI2bgnn,
          BaselineKind::kTsgn,            BaselineKind::kEthident,
          BaselineKind::kTegDetector,     BaselineKind::kBert4Eth};
}

namespace {

/// Trivial input for the "w/o node feature" variants: a single constant
/// channel, as in the paper (whose featureless GNN rows sit near chance —
/// only structure reachable through aggregation remains).
Matrix TrivialFeatures(const graph::Graph& g) {
  return Matrix::Ones(g.num_nodes, 1);
}

Matrix MeanNeighborAdjacency(const graph::Graph& g) {
  Matrix adj = g.DenseAdjacency(/*symmetric=*/true, /*self_loops=*/false);
  for (int i = 0; i < adj.rows(); ++i) {
    double s = 0.0;
    for (int j = 0; j < adj.cols(); ++j) s += adj.At(i, j);
    if (s > 0) {
      for (int j = 0; j < adj.cols(); ++j) adj.At(i, j) /= s;
    }
  }
  return adj;
}

/// BERT4ETH stand-in input: the center account's transactions as a feature
/// sequence [direction, log1p(value), normalized dt, log1p(gas),
/// contract-call flag].
Matrix CenterSequence(const eth::TxSubgraph& sub, int max_length) {
  std::vector<const eth::LocalTransaction*> center_txs;
  for (const auto& tx : sub.txs) {
    if (tx.src == sub.center_index || tx.dst == sub.center_index) {
      center_txs.push_back(&tx);
    }
  }
  if (center_txs.size() > static_cast<size_t>(max_length)) {
    center_txs.erase(center_txs.begin(),
                     center_txs.end() - max_length);  // keep most recent
  }
  const int len = std::max<int>(1, static_cast<int>(center_txs.size()));
  Matrix seq(len, 5);
  if (center_txs.empty()) return seq;
  const double t0 = center_txs.front()->timestamp;
  const double span =
      std::max(center_txs.back()->timestamp - t0, 1e-9);
  for (size_t i = 0; i < center_txs.size(); ++i) {
    const auto& tx = *center_txs[i];
    seq.At(i, 0) = tx.src == sub.center_index ? 1.0 : -1.0;
    seq.At(i, 1) = std::log1p(tx.value);
    seq.At(i, 2) = (tx.timestamp - t0) / span;
    seq.At(i, 3) = std::log1p(tx.gas_used) / 15.0;
    seq.At(i, 4) = tx.is_contract_call ? 1.0 : 0.0;
  }
  return seq;
}

/// Generic per-graph trainer: forward produces 1 x 2 logits per instance.
EvaluationReport TrainGraphModel(
    const eth::SubgraphDataset& dataset, const std::vector<int>& train_idx,
    const std::vector<int>& test_idx, const std::vector<ag::Tensor>& params,
    const std::function<ag::Tensor(const eth::GraphInstance&)>& forward,
    const BaselineConfig& config, Rng* rng) {
  ag::Adam opt(params, config.learning_rate);
  std::vector<int> order = train_idx;
  const size_t batch_size =
      static_cast<size_t>(std::max(1, config.batch_size));
  std::unique_ptr<ThreadPool> pool =
      MakeTrainerPool(ResolveNumThreads(config.num_threads));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng->Shuffle(&order);
    for (size_t start = 0; start < order.size(); start += batch_size) {
      const size_t end = std::min(order.size(), start + batch_size);
      const int batch_count = static_cast<int>(end - start);
      opt.ZeroGrad();
      // Baseline forwards draw no randomness, so the fan-out needs no
      // per-instance RNG streams; batch_size=1 reproduces the original
      // per-instance SGD bit-for-bit.
      ParallelBatchBackward(
          pool.get(), batch_count,
          [&](int bi, ag::GradientBuffer* buffer) {
            const eth::GraphInstance& inst =
                dataset.instances[order[start + bi]];
            ag::Tensor loss =
                ag::SoftmaxCrossEntropy(forward(inst), {inst.label});
            if (batch_count > 1) {
              loss = ag::ScalarMul(loss, 1.0 / batch_count);
            }
            loss.Backward(buffer);
          });
      opt.ClipGradNorm(5.0);
      opt.Step();
    }
  }
  EvaluationReport report;
  for (int idx : test_idx) {
    const eth::GraphInstance& inst = dataset.instances[idx];
    const Matrix logits = forward(inst).value();
    const Matrix probs = ag::SoftmaxRowsValue(logits);
    report.test_labels.push_back(inst.label);
    report.test_probs.push_back(probs.At(0, 1));
  }
  report.metrics = ml::ComputeBinaryMetrics(
      report.test_labels, ml::ThresholdPredictions(report.test_probs));
  report.auc = ml::RocAuc(report.test_labels, report.test_probs);
  return report;
}

/// Embedding baselines: fixed graph vectors + MLP classifier.
EvaluationReport RunEmbeddingBaseline(const eth::SubgraphDataset& dataset,
                                      const std::vector<int>& train_idx,
                                      const std::vector<int>& test_idx,
                                      embed::WalkKind kind,
                                      const BaselineConfig& config,
                                      Rng* rng) {
  embed::GraphEmbeddingConfig emb_config;
  emb_config.kind = kind;
  emb_config.walks_per_node = config.walks_per_node;
  emb_config.walk_length = config.walk_length;
  emb_config.skipgram.embedding_dim = config.embedding_dim;
  emb_config.skipgram.epochs = 1;

  const int dim = embed::GraphEmbeddingDim(emb_config);
  Matrix all_emb(dataset.num_graphs(), dim);
  for (int i = 0; i < dataset.num_graphs(); ++i) {
    const auto vec = embed::GraphEmbedding(
        dataset.instances[i].gsg, dataset.instances[i].subgraph, emb_config,
        rng);
    for (int c = 0; c < dim; ++c) all_emb.At(i, c) = vec[c];
  }
  Matrix x_train(static_cast<int>(train_idx.size()), dim);
  std::vector<int> y_train;
  for (size_t r = 0; r < train_idx.size(); ++r) {
    for (int c = 0; c < dim; ++c) {
      x_train.At(static_cast<int>(r), c) = all_emb.At(train_idx[r], c);
    }
    y_train.push_back(dataset.instances[train_idx[r]].label);
  }
  ml::MlpConfig mlp_config;
  mlp_config.hidden_dims = {config.hidden_dim};
  mlp_config.seed = config.seed;
  ml::MlpClassifier head(mlp_config);
  DBG4ETH_CHECK(head.Train(x_train, y_train).ok());

  EvaluationReport report;
  for (int idx : test_idx) {
    report.test_labels.push_back(dataset.instances[idx].label);
    report.test_probs.push_back(head.PredictProba(all_emb.RowPtr(idx)));
  }
  report.metrics = ml::ComputeBinaryMetrics(
      report.test_labels, ml::ThresholdPredictions(report.test_probs));
  report.auc = ml::RocAuc(report.test_labels, report.test_probs);
  return report;
}

/// Ethident: the hierarchical-attention GSG encoder without contrastive
/// regularization, trained standalone.
EvaluationReport RunEthident(const eth::SubgraphDataset& dataset,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& test_idx,
                             const BaselineConfig& config) {
  GsgEncoderConfig enc_config;
  enc_config.hidden_dim = config.hidden_dim;
  enc_config.num_heads = config.num_heads;
  enc_config.epochs = config.epochs;
  enc_config.learning_rate = config.learning_rate;
  enc_config.use_contrastive = false;
  enc_config.seed = config.seed;
  GsgEncoder encoder(enc_config);
  DBG4ETH_CHECK(encoder.Train(dataset, train_idx).ok());

  EvaluationReport report;
  for (int idx : test_idx) {
    const eth::GraphInstance& inst = dataset.instances[idx];
    report.test_labels.push_back(inst.label);
    report.test_probs.push_back(Sigmoid(encoder.PredictScore(inst.gsg)));
  }
  report.metrics = ml::ComputeBinaryMetrics(
      report.test_labels, ml::ThresholdPredictions(report.test_probs));
  report.auc = ml::RocAuc(report.test_labels, report.test_probs);
  return report;
}

}  // namespace

Result<EvaluationReport> RunBaseline(BaselineKind kind,
                                     eth::SubgraphDataset* dataset,
                                     const BaselineConfig& config) {
  if (dataset->num_graphs() < 10) {
    return Status::InvalidArgument("dataset too small for baseline run");
  }
  Rng rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset->labels(), config.train_fraction, config.val_fraction, &rng);
  if (split.test.empty()) {
    return Status::InvalidArgument("empty test split");
  }
  eth::StandardizeDataset(dataset, split.train);
  // Baselines have no calibration stage: validation joins training.
  std::vector<int> train_idx = split.train;
  train_idx.insert(train_idx.end(), split.val.begin(), split.val.end());

  const eth::SubgraphDataset& ds = *dataset;
  const int hidden = config.hidden_dim;
  const int feat_dim =
      ds.instances.front().gsg.node_features.cols();

  switch (kind) {
    case BaselineKind::kDeepWalk:
      return RunEmbeddingBaseline(ds, train_idx, split.test,
                                  embed::WalkKind::kDeepWalk, config, &rng);
    case BaselineKind::kNode2Vec:
      return RunEmbeddingBaseline(ds, train_idx, split.test,
                                  embed::WalkKind::kNode2Vec, config, &rng);
    case BaselineKind::kTrans2Vec:
      return RunEmbeddingBaseline(ds, train_idx, split.test,
                                  embed::WalkKind::kTrans2Vec, config, &rng);
    case BaselineKind::kEthident:
      return RunEthident(ds, train_idx, split.test, config);
    default:
      break;
  }

  // Autograd graph models share the generic trainer.
  const bool with_features = kind != BaselineKind::kGcnNoFeatures &&
                             kind != BaselineKind::kGatNoFeatures &&
                             kind != BaselineKind::kGinNoFeatures &&
                             kind != BaselineKind::kI2bgnnNoFeatures;
  const int in_dim = with_features ? feat_dim : 1;
  auto node_input = [with_features](const eth::GraphInstance& inst) {
    return ag::Tensor::Constant(with_features ? inst.gsg.node_features
                                              : TrivialFeatures(inst.gsg));
  };

  std::vector<ag::Tensor> params;
  std::function<ag::Tensor(const eth::GraphInstance&)> forward;

  switch (kind) {
    case BaselineKind::kGcn:
    case BaselineKind::kGcnNoFeatures: {
      auto conv1 = std::make_shared<gnn::GcnConv>(in_dim, hidden, &rng);
      auto conv2 = std::make_shared<gnn::GcnConv>(hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        // CSR Â, cached once per graph and shared across epochs/threads.
        auto adj = inst.gsg.NormalizedAdjacencySparse();
        ag::Tensor h = ag::Relu(conv1->Forward(adj, node_input(inst)));
        h = ag::Relu(conv2->Forward(adj, h));
        return head->Forward(ag::MeanPoolRows(h));
      };
      break;
    }
    case BaselineKind::kGat:
    case BaselineKind::kGatNoFeatures: {
      const int per_head = std::max(1, hidden / config.num_heads);
      auto conv1 = std::make_shared<gnn::GatConv>(in_dim, per_head,
                                                  config.num_heads, &rng);
      auto conv2 = std::make_shared<gnn::GatConv>(
          per_head * config.num_heads, per_head, config.num_heads, &rng);
      auto head = std::make_shared<gnn::Linear>(per_head * config.num_heads,
                                                2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        const Matrix& mask = inst.gsg.AttentionMask();
        const auto support = inst.gsg.AttentionMaskSparse();
        ag::Tensor h =
            ag::Elu(conv1->Forward(node_input(inst), mask, support));
        h = ag::Elu(conv2->Forward(h, mask, support));
        return head->Forward(ag::MeanPoolRows(h));
      };
      break;
    }
    case BaselineKind::kGin:
    case BaselineKind::kGinNoFeatures: {
      auto conv1 =
          std::make_shared<gnn::GinConv>(in_dim, hidden, hidden, &rng);
      auto conv2 =
          std::make_shared<gnn::GinConv>(hidden, hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        ag::Tensor adj = ag::Tensor::Constant(
            inst.gsg.DenseAdjacency(true, false));
        ag::Tensor h = ag::Relu(conv1->Forward(adj, node_input(inst)));
        h = ag::Relu(conv2->Forward(adj, h));
        return head->Forward(ag::MeanPoolRows(h));
      };
      break;
    }
    case BaselineKind::kGraphSage: {
      auto conv1 = std::make_shared<gnn::SageConv>(in_dim, hidden, &rng);
      auto conv2 = std::make_shared<gnn::SageConv>(hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        ag::Tensor adj =
            ag::Tensor::Constant(MeanNeighborAdjacency(inst.gsg));
        ag::Tensor h = ag::Relu(conv1->Forward(adj, node_input(inst)));
        h = ag::Relu(conv2->Forward(adj, h));
        return head->Forward(ag::MeanPoolRows(h));
      };
      break;
    }
    case BaselineKind::kAppnp: {
      auto model = std::make_shared<gnn::Appnp>(in_dim, hidden, hidden,
                                                /*k_steps=*/6,
                                                /*alpha=*/0.2, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      params = gnn::JoinParameters({model.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        // CSR Â, cached once per graph and shared across epochs/threads.
        ag::Tensor h =
            model->Forward(inst.gsg.NormalizedAdjacencySparse(),
                           node_input(inst));
        return head->Forward(ag::MeanPoolRows(h));
      };
      break;
    }
    case BaselineKind::kGrit: {
      auto model = std::make_shared<gnn::GraphTransformer>(
          in_dim, hidden, /*num_blocks=*/1, config.num_heads, 2, &rng);
      params = model->Parameters();
      forward = [=](const eth::GraphInstance& inst) {
        return model->Forward(node_input(inst),
                              inst.gsg.DenseAdjacency(true, false));
      };
      break;
    }
    case BaselineKind::kI2bgnn:
    case BaselineKind::kI2bgnnNoFeatures: {
      // I2BGNN: transaction-value-weighted propagation with max pooling.
      auto conv1 = std::make_shared<gnn::GcnConv>(in_dim, hidden, &rng);
      auto conv2 = std::make_shared<gnn::GcnConv>(hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        ag::Tensor adj = ag::Tensor::Constant(inst.gsg.WeightedAdjacency());
        ag::Tensor h = ag::Relu(conv1->Forward(adj, node_input(inst)));
        h = ag::Relu(conv2->Forward(adj, h));
        return head->Forward(ag::MaxPoolRows(h));
      };
      break;
    }
    case BaselineKind::kTsgn: {
      // TSGN approximation: edge-aggregate-enriched node inputs over the
      // value-weighted topology with a mean||max readout.
      const int tsgn_in = feat_dim + 2;
      auto conv1 = std::make_shared<gnn::GcnConv>(tsgn_in, hidden, &rng);
      auto conv2 = std::make_shared<gnn::GcnConv>(hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(2 * hidden, 2, &rng);
      params = gnn::JoinParameters({conv1.get(), conv2.get(), head.get()});
      forward = [=](const eth::GraphInstance& inst) {
        ag::Tensor x =
            ag::Tensor::Constant(GsgEncoder::BuildNodeInput(inst.gsg));
        ag::Tensor adj = ag::Tensor::Constant(inst.gsg.WeightedAdjacency());
        ag::Tensor h = ag::Relu(conv1->Forward(adj, x));
        h = ag::Relu(conv2->Forward(adj, h));
        return head->Forward(
            ag::ConcatCols(ag::MeanPoolRows(h), ag::MaxPoolRows(h)));
      };
      break;
    }
    case BaselineKind::kTegDetector: {
      // Time slices, shared GCN, learnable time coefficients.
      auto proj = std::make_shared<gnn::Linear>(feat_dim, hidden, &rng);
      auto conv = std::make_shared<gnn::GcnConv>(hidden, hidden, &rng);
      auto head = std::make_shared<gnn::Linear>(hidden, 2, &rng);
      const int num_slices =
          static_cast<int>(ds.instances.front().ldg.size());
      auto time_coeff =
          std::make_shared<ag::Tensor>(ag::Tensor::Parameter(
              Matrix(num_slices, 1)));
      params = gnn::JoinParameters({proj.get(), conv.get(), head.get()});
      params.push_back(*time_coeff);
      forward = [=](const eth::GraphInstance& inst) {
        ag::Tensor x = ag::Tanh(proj->Forward(
            ag::Tensor::Constant(inst.ldg.front().node_features)));
        std::vector<ag::Tensor> per_slice;
        for (const graph::Graph& slice : inst.ldg) {
          ag::Tensor adj = ag::Tensor::Constant(slice.WeightedAdjacency());
          per_slice.push_back(
              ag::MeanPoolRows(ag::Relu(conv->Forward(adj, x))));
        }
        ag::Tensor stacked = ag::ConcatRowsList(per_slice);  // T x hidden
        ag::Tensor alphas = ag::SoftmaxColVector(*time_coeff);
        return head->Forward(ag::MatMul(ag::Transpose(alphas), stacked));
      };
      break;
    }
    case BaselineKind::kBert4Eth: {
      auto model = std::make_shared<gnn::SequenceEncoder>(
          5, hidden, /*num_blocks=*/1, config.num_heads, 2, &rng);
      auto seq_len = config.sequence_length;
      params = model->Parameters();
      forward = [=](const eth::GraphInstance& inst) {
        return model->Forward(ag::Tensor::Constant(
            CenterSequence(inst.subgraph, seq_len)));
      };
      break;
    }
    default:
      return Status::Internal("unhandled baseline kind");
  }

  return TrainGraphModel(ds, train_idx, split.test, params, forward, config,
                         &rng);
}

}  // namespace core
}  // namespace dbg4eth
