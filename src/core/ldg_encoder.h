#ifndef DBG4ETH_CORE_LDG_ENCODER_H_
#define DBG4ETH_CORE_LDG_ENCODER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "eth/dataset.h"
#include "gnn/conv.h"
#include "gnn/diffpool.h"
#include "gnn/gru.h"
#include "gnn/linear.h"
#include "graph/graph.h"
#include "tensor/optimizer.h"

namespace dbg4eth {
namespace core {

/// \brief Configuration of the local dynamic account transaction encoding
/// module (paper Sec. IV-B).
struct LdgEncoderConfig {
  int node_feature_dim = 15;
  int hidden_dim = 32;
  int num_time_slices = 10;  ///< Paper: T = 10.
  /// DiffPool stack. The paper pools twice, to 0.1*N clusters then to 1;
  /// with the autograd engine's fixed-parameter layers the first level uses
  /// a fixed cluster count instead of a per-graph fraction.
  int num_pooling_layers = 2;
  int first_level_clusters = 8;
  int num_classes = 2;

  int epochs = 8;
  double learning_rate = 0.01;
  /// Instances per optimizer step. The default of 1 reproduces the
  /// original per-instance SGD exactly; larger batches average the
  /// per-instance gradients (and unlock intra-batch parallelism).
  int batch_size = 1;
  double grad_clip = 5.0;
  uint64_t seed = 2;

  /// Worker threads for intra-batch data parallelism; effective only with
  /// batch_size > 1. 0 = one per hardware thread. Not part of the
  /// checkpoint format.
  int num_threads = 1;
};

/// \brief LDG encoder: per time slice a GCN over the slice topology fed by
/// the previous evolutionary state (Eq. 14), a GRU update (Eq. 15-18),
/// DiffPool compression of each slice (Eq. 19-21), an adaptively weighted
/// read-out over time slices (Eq. 22), and a linear head (Eq. 23).
class LdgEncoder {
 public:
  explicit LdgEncoder(const LdgEncoderConfig& config);

  LdgEncoder(const LdgEncoder&) = delete;
  LdgEncoder& operator=(const LdgEncoder&) = delete;

  /// Embeds the time-slice sequence of one account subgraph into a
  /// 1 x hidden_dim representation (the gamma_i of Eq. 22).
  ag::Tensor EmbedSlices(const std::vector<graph::Graph>& slices) const;

  /// Classification logits of a slice-sequence embedding.
  ag::Tensor Logits(const ag::Tensor& embedding) const;

  /// Branch prediction score: logit(positive) - logit(negative).
  double PredictScore(const std::vector<graph::Graph>& slices) const;

  /// Batched scores via one fused block-diagonal forward: per time step
  /// the instances' slice adjacencies become one packed CSR operator, so a
  /// single GCN+GRU pass advances every instance's evolutionary state;
  /// the cross-node DiffPool pyramid then runs per instance on its row
  /// slice. Runs under an InferenceScope (tape-free, arena-pooled); each
  /// score is bit-identical to PredictScore(*instances[i]).
  std::vector<double> PredictScoreBatch(
      const std::vector<const std::vector<graph::Graph>*>& instances) const;

  /// \brief Epoch-granular resumable training session; the LDG twin of
  /// GsgEncoder::TrainSession (cumulative shuffle order, Adam moments,
  /// worker pool). Stop at any epoch boundary, SaveState, resume
  /// bit-identically.
  class TrainSession {
   public:
    TrainSession(LdgEncoder* encoder, const eth::SubgraphDataset* dataset,
                 std::vector<int> train_indices);
    ~TrainSession();

    TrainSession(const TrainSession&) = delete;
    TrainSession& operator=(const TrainSession&) = delete;

    /// Runs one epoch: shuffle, then one clipped Adam step per batch.
    Status RunEpoch();

    /// True once the configured number of epochs has completed.
    bool done() const;

    /// Completed epochs.
    int epoch() const { return epoch_; }

    /// Serializes the session state (not the encoder parameter values —
    /// snapshot those alongside with ag::WriteParameters).
    void SaveState(BinaryWriter* writer) const;

    /// Restores state written by SaveState; errors leave the session
    /// untouched.
    Status LoadState(BinaryReader* reader);

   private:
    LdgEncoder* encoder_;
    const eth::SubgraphDataset* dataset_;
    std::vector<int> order_;
    ag::Adam opt_;
    std::unique_ptr<ThreadPool> pool_;
    int epoch_ = 0;
  };

  /// Checks that `dataset`/`train_indices` can train this encoder
  /// (non-empty split, matching time-slice count).
  Status ValidateTrainingInputs(const eth::SubgraphDataset& dataset,
                                const std::vector<int>& train_indices) const;

  Status Train(const eth::SubgraphDataset& dataset,
               const std::vector<int>& train_indices);

  std::vector<ag::Tensor> Parameters() const;

  const LdgEncoderConfig& config() const { return config_; }

 private:
  LdgEncoderConfig config_;
  mutable Rng rng_;
  std::unique_ptr<gnn::Linear> input_proj_;  ///< features -> hidden (h_0).
  std::unique_ptr<gnn::GcnConv> topo_gcn_;   ///< Eq. 14.
  std::unique_ptr<gnn::GruCell> gru_;        ///< Eq. 15-18.
  std::vector<std::unique_ptr<gnn::DiffPool>> pools_;  ///< Eq. 19-21.
  ag::Tensor slice_weights_;  ///< T x 1, softmaxed into the alpha_t of Eq. 22.
  std::unique_ptr<gnn::Linear> head_;
};

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_LDG_ENCODER_H_
