#include "core/parallel_trainer.h"

#include <vector>

#include "obs/metrics.h"

namespace dbg4eth {
namespace core {

std::unique_ptr<ThreadPool> MakeTrainerPool(int num_threads) {
  if (num_threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads - 1);
}

void ParallelBatchBackward(
    ThreadPool* pool, int batch_count,
    const std::function<void(int, ag::GradientBuffer*)>& body) {
  if (batch_count <= 0) return;
  std::vector<ag::GradientBuffer> buffers(batch_count);
  ParallelFor(pool, batch_count,
              [&](int bi) { body(bi, &buffers[bi]); });
  static obs::Histogram* reduce_hist =
      obs::MetricsRegistry::Global()->HistogramAt(
          "train_grad_reduce_us",
          "Wall time of the serial per-batch gradient reduction");
  obs::ScopedTimer reduce_timer(reduce_hist);
  // Fixed reduction order = thread-count-independent gradients.
  for (ag::GradientBuffer& buffer : buffers) {
    buffer.ReduceInto();
  }
}

}  // namespace core
}  // namespace dbg4eth
