#ifndef DBG4ETH_CORE_GSG_ENCODER_H_
#define DBG4ETH_CORE_GSG_ENCODER_H_

#include <memory>
#include <vector>

#include "augment/augmentation.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "eth/dataset.h"
#include "gnn/conv.h"
#include "gnn/hier_attention.h"
#include "gnn/linear.h"
#include "graph/graph.h"
#include "tensor/optimizer.h"

namespace dbg4eth {
namespace core {

/// \brief Configuration of the global static account transaction encoding
/// module (paper Sec. IV-A).
struct GsgEncoderConfig {
  int node_feature_dim = 15;
  /// Edge aggregate channels fused into each node input (log1p of incident
  /// total value and transaction count), implementing Eq. 6's [x || r].
  int hidden_dim = 32;
  int num_gat_layers = 2;   ///< Paper: 2-layer GAT.
  int num_heads = 2;
  int num_classes = 2;
  double dropout = 0.1;

  /// Contrastive regularization (graph contrastive learning with adaptive
  /// augmentation). Paper view parameters: P_f = {0.1, 0.0},
  /// P_e = {0.3, 0.4}.
  bool use_contrastive = true;
  double contrastive_weight = 0.3;
  double temperature = 0.5;
  augment::AugmentationConfig view1 = {.edge_drop_prob = 0.3,
                                       .feature_mask_prob = 0.1};
  augment::AugmentationConfig view2 = {.edge_drop_prob = 0.4,
                                       .feature_mask_prob = 0.0};

  int epochs = 10;
  double learning_rate = 0.01;
  int batch_size = 16;
  double grad_clip = 5.0;
  uint64_t seed = 1;

  /// Worker threads for intra-batch data parallelism (instances of a batch
  /// run forward+backward concurrently; gradients are reduced in instance
  /// order, so results are identical for every value). 0 = one per
  /// hardware thread. Not part of the checkpoint format.
  int num_threads = 1;
};

/// \brief GSG encoder: node feature alignment (Eq. 6), a stack of GAT
/// layers (node-level attention, Eq. 7-9), a graph-level attention readout
/// (Eq. 10-13), and a linear classification head. Trained with softmax
/// cross-entropy plus an NT-Xent contrastive term over two adaptively
/// augmented views.
class GsgEncoder {
 public:
  explicit GsgEncoder(const GsgEncoderConfig& config);

  GsgEncoder(const GsgEncoder&) = delete;
  GsgEncoder& operator=(const GsgEncoder&) = delete;

  /// Node input matrix: standardized node features concatenated with
  /// log-scaled incident-edge aggregates ([x_j || r_ij] of Eq. 6).
  static Matrix BuildNodeInput(const graph::Graph& g);

  /// Embeds one graph into a 1 x hidden_dim representation.
  ag::Tensor EmbedGraph(const graph::Graph& g, bool training, Rng* rng) const;

  /// Classification logits (1 x num_classes) of a graph embedding.
  ag::Tensor Logits(const ag::Tensor& embedding) const;

  /// Branch prediction score for a graph: logit(positive) - logit(negative).
  double PredictScore(const graph::Graph& g) const;

  /// Batched scores via one fused block-diagonal forward: the graphs'
  /// attention supports become one packed CSR operator, their node inputs
  /// one stacked matrix, and a single GAT stack pass feeds per-graph
  /// readouts on the row slices. Runs under an InferenceScope (tape-free,
  /// arena-pooled); each score is bit-identical to PredictScore(*graphs[i]).
  std::vector<double> PredictScoreBatch(
      const std::vector<const graph::Graph*>& graphs) const;

  /// \brief Epoch-granular resumable training session.
  ///
  /// Holds the cross-epoch mutable training state that is not part of the
  /// encoder itself — the cumulative shuffle order (the per-epoch shuffle
  /// permutes the previous epoch's order, so it cannot be re-derived from
  /// the RNG state alone), the Adam moments, and the worker pool. Training
  /// can stop at any epoch boundary, serialize with SaveState, and later
  /// continue in a fresh process bit-identically to an uninterrupted run.
  class TrainSession {
   public:
    /// The session trains `encoder` on `dataset` instances listed by
    /// `train_indices`. Both pointees must outlive the session.
    TrainSession(GsgEncoder* encoder, const eth::SubgraphDataset* dataset,
                 std::vector<int> train_indices);
    ~TrainSession();

    TrainSession(const TrainSession&) = delete;
    TrainSession& operator=(const TrainSession&) = delete;

    /// Runs one epoch: shuffle, then one clipped Adam step per batch.
    Status RunEpoch();

    /// True once the configured number of epochs has completed.
    bool done() const;

    /// Completed epochs.
    int epoch() const { return epoch_; }

    /// Serializes the session (epoch index, shuffle order, the encoder's
    /// RNG and the optimizer moments). Encoder parameter *values* are not
    /// included — snapshot them alongside with ag::WriteParameters.
    void SaveState(BinaryWriter* writer) const;

    /// Restores state written by SaveState. The session must be built over
    /// an identically sized index list; mismatches and corrupt streams
    /// return an error and leave the session untouched.
    Status LoadState(BinaryReader* reader);

   private:
    GsgEncoder* encoder_;
    const eth::SubgraphDataset* dataset_;
    std::vector<int> order_;
    ag::Adam opt_;
    std::unique_ptr<ThreadPool> pool_;
    int epoch_ = 0;
  };

  /// Checks that `train_indices` can train this encoder (non-empty).
  Status ValidateTrainingInputs(const eth::SubgraphDataset& dataset,
                                const std::vector<int>& train_indices) const;

  /// Trains on the instances listed by `train_indices` (a TrainSession run
  /// start to finish).
  Status Train(const eth::SubgraphDataset& dataset,
               const std::vector<int>& train_indices);

  std::vector<ag::Tensor> Parameters() const;

  const GsgEncoderConfig& config() const { return config_; }

 private:
  GsgEncoderConfig config_;
  mutable Rng rng_;
  std::unique_ptr<gnn::Linear> align_;  ///< Eq. 6 feature alignment.
  std::vector<std::unique_ptr<gnn::GatConv>> gat_layers_;
  std::unique_ptr<gnn::GraphAttentionReadout> readout_;
  std::unique_ptr<gnn::Linear> head_;
};

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_GSG_ENCODER_H_
