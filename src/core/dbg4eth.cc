#include "core/dbg4eth.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "common/checkpoint_store.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/serialize.h"
#include "ml/ensemble.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/inference.h"
#include "tensor/serialize.h"

namespace dbg4eth {
namespace core {

const char* HeadKindName(HeadKind kind) {
  switch (kind) {
    case HeadKind::kLightGbm:
      return "lightgbm";
    case HeadKind::kXgboost:
      return "xgboost";
    case HeadKind::kMlp:
      return "mlp";
    case HeadKind::kRandomForest:
      return "random_forest";
    case HeadKind::kAdaBoost:
      return "adaboost";
  }
  return "unknown";
}

std::unique_ptr<ml::BinaryClassifier> MakeHead(HeadKind kind,
                                               const ml::GbdtConfig& gbdt) {
  switch (kind) {
    case HeadKind::kLightGbm:
      return std::make_unique<ml::GbdtClassifier>(gbdt);
    case HeadKind::kXgboost:
      return std::make_unique<ml::GbdtClassifier>(
          ml::GbdtClassifier::XgboostStyle(gbdt));
    case HeadKind::kMlp: {
      ml::MlpConfig config;
      config.hidden_dims = {16};
      return std::make_unique<ml::MlpClassifier>(config);
    }
    case HeadKind::kRandomForest:
      return std::make_unique<ml::RandomForestClassifier>();
    case HeadKind::kAdaBoost:
      return std::make_unique<ml::AdaBoostClassifier>();
  }
  return nullptr;
}

double Dbg4Eth::BranchScaler::ToConfidence(double score) const {
  return Sigmoid((score - mean) / stddev);
}

Dbg4Eth::Dbg4Eth(const Dbg4EthConfig& config) : config_(config) {
  DBG4ETH_CHECK(config.use_gsg || config.use_ldg)
      << "at least one branch must be enabled";
}

double Dbg4Eth::BranchConfidenceGsg(const eth::GraphInstance& inst) const {
  return gsg_scaler_.ToConfidence(gsg_->PredictScore(inst.gsg));
}

double Dbg4Eth::BranchConfidenceLdg(const eth::GraphInstance& inst) const {
  return ldg_scaler_.ToConfidence(ldg_->PredictScore(inst.ldg));
}

std::vector<double> Dbg4Eth::HeadFeatures(
    const eth::GraphInstance& inst) const {
  // Spans mark the per-branch pipeline stages; under a serving-side
  // score_cold root they form the cold-request timing tree.
  std::vector<double> features;
  if (config_.use_gsg) {
    obs::TraceSpan gsg_span("gsg_forward");
    double p = BranchConfidenceGsg(inst);
    gsg_span.End();
    if (config_.use_calibration) {
      obs::TraceSpan calibrate_span("calibrate");
      p = gsg_calibrator_->Calibrate(p);
    }
    features.push_back(p);
  }
  if (config_.use_ldg) {
    obs::TraceSpan ldg_span("ldg_forward");
    double p = BranchConfidenceLdg(inst);
    ldg_span.End();
    if (config_.use_calibration) {
      obs::TraceSpan calibrate_span("calibrate");
      p = ldg_calibrator_->Calibrate(p);
    }
    features.push_back(p);
  }
  return features;
}

Status Dbg4Eth::Train(eth::SubgraphDataset* dataset,
                      const ml::SplitIndices& split) {
  TrainSnapshotOptions options;  // No store, no budget: plain training.
  DBG4ETH_ASSIGN_OR_RETURN(const TrainProgress progress,
                           TrainWithSnapshots(dataset, split, options));
  DBG4ETH_CHECK(progress == TrainProgress::kComplete);
  return Status::OK();
}

Result<TrainProgress> Dbg4Eth::TrainWithSnapshots(
    eth::SubgraphDataset* dataset, const ml::SplitIndices& split,
    const TrainSnapshotOptions& options) {
  if (split.train.empty() || split.val.empty()) {
    return Status::InvalidArgument("train and val splits must be non-empty");
  }
  eth::StandardizeDataset(dataset, split.train, &normalizer_);
  return RunTrainLoop(dataset, split, options, /*resume=*/nullptr);
}

Result<TrainProgress> Dbg4Eth::RunTrainLoop(eth::SubgraphDataset* dataset,
                                            const ml::SplitIndices& split,
                                            const TrainSnapshotOptions& options,
                                            BinaryReader* resume) {
  // Stage 2: branch encoders, driven epoch by epoch through their
  // TrainSessions so the loop can snapshot durably and stop at every
  // epoch boundary.
  std::vector<int> encoder_indices = split.train;
  if (config_.encoders_use_validation) {
    encoder_indices.insert(encoder_indices.end(), split.val.begin(),
                           split.val.end());
  }
  std::optional<GsgEncoder::TrainSession> gsg_session;
  std::optional<LdgEncoder::TrainSession> ldg_session;
  if (config_.use_gsg) {
    gsg_ = std::make_unique<GsgEncoder>(config_.gsg);
    DBG4ETH_RETURN_NOT_OK(
        gsg_->ValidateTrainingInputs(*dataset, encoder_indices));
    gsg_session.emplace(gsg_.get(), dataset, encoder_indices);
  }
  if (config_.use_ldg) {
    if (!dataset->instances.empty()) {
      // Keep the stored config in sync with the dataset's slicing so
      // checkpoints reconstruct the exact architecture.
      config_.ldg.num_time_slices =
          static_cast<int>(dataset->instances.front().ldg.size());
    }
    ldg_ = std::make_unique<LdgEncoder>(config_.ldg);
    DBG4ETH_RETURN_NOT_OK(
        ldg_->ValidateTrainingInputs(*dataset, encoder_indices));
    ldg_session.emplace(ldg_.get(), dataset, encoder_indices);
  }
  if (resume != nullptr) {
    // Overwrite the freshly initialized parameters and session state with
    // the snapshot; the RNG streams come along, so the first resumed epoch
    // draws exactly what the next uninterrupted epoch would have drawn.
    if (config_.use_gsg) {
      std::vector<ag::Tensor> params = gsg_->Parameters();
      DBG4ETH_RETURN_NOT_OK(ag::ReadParameters(resume, &params));
      DBG4ETH_RETURN_NOT_OK(gsg_session->LoadState(resume));
    }
    if (config_.use_ldg) {
      std::vector<ag::Tensor> params = ldg_->Parameters();
      DBG4ETH_RETURN_NOT_OK(ag::ReadParameters(resume, &params));
      DBG4ETH_RETURN_NOT_OK(ldg_session->LoadState(resume));
    }
    DBG4ETH_RETURN_NOT_OK(resume->ExpectTag("end"));
  }

  static obs::Counter* snapshots_total =
      obs::MetricsRegistry::Global()->CounterAt(
          "train_snapshots_total",
          "Durable TrainState snapshots committed by the training loop");

  int epochs_this_run = 0;
  // Runs after every completed epoch: maybe snapshot, then report whether
  // the per-run budget forces a preemption stop.
  auto epoch_boundary = [&]() -> Result<bool> {
    ++epochs_this_run;
    const bool preempt = options.max_epochs_this_run > 0 &&
                         epochs_this_run >= options.max_epochs_this_run;
    if (options.store != nullptr) {
      const int total_done = (gsg_session ? gsg_session->epoch() : 0) +
                             (ldg_session ? ldg_session->epoch() : 0);
      const int cadence = std::max(1, options.snapshot_every_epochs);
      if (preempt || total_done % cadence == 0) {
        DBG4ETH_ASSIGN_OR_RETURN(
            const std::string path,
            options.store->Save([&](std::ostream* os) {
              return WriteTrainState(
                  os, split, gsg_session ? &*gsg_session : nullptr,
                  ldg_session ? &*ldg_session : nullptr);
            }));
        (void)path;
        snapshots_total->Inc();
      }
    }
    DBG4ETH_FAIL_POINT("train.epoch_end");
    return preempt;
  };

  while (gsg_session && !gsg_session->done()) {
    DBG4ETH_RETURN_NOT_OK(gsg_session->RunEpoch());
    DBG4ETH_ASSIGN_OR_RETURN(const bool preempt, epoch_boundary());
    if (preempt) return TrainProgress::kPreempted;
  }
  while (ldg_session && !ldg_session->done()) {
    DBG4ETH_RETURN_NOT_OK(ldg_session->RunEpoch());
    DBG4ETH_ASSIGN_OR_RETURN(const bool preempt, epoch_boundary());
    if (preempt) return TrainProgress::kPreempted;
  }

  // Stage 3a: confidence generation — scale raw branch scores by their
  // validation mean/stddev and squash into [0, 1].
  std::vector<int> val_labels;
  std::vector<double> gsg_scores, ldg_scores;
  for (int idx : split.val) {
    const eth::GraphInstance& inst = dataset->instances[idx];
    val_labels.push_back(inst.label);
    if (config_.use_gsg) gsg_scores.push_back(gsg_->PredictScore(inst.gsg));
    if (config_.use_ldg) ldg_scores.push_back(ldg_->PredictScore(inst.ldg));
  }
  auto fit_scaler = [](const std::vector<double>& scores) {
    BranchScaler scaler;
    scaler.mean = Mean(scores);
    scaler.stddev = std::max(StdDev(scores), 1e-6);
    return scaler;
  };
  if (config_.use_gsg) gsg_scaler_ = fit_scaler(gsg_scores);
  if (config_.use_ldg) ldg_scaler_ = fit_scaler(ldg_scores);

  // Stage 3b: adaptive confidence calibration per branch on validation.
  if (config_.use_calibration) {
    if (config_.use_gsg) {
      std::vector<double> conf;
      for (double s : gsg_scores) conf.push_back(gsg_scaler_.ToConfidence(s));
      gsg_calibrator_ =
          std::make_unique<calib::AdaptiveCalibrator>(config_.calibration);
      DBG4ETH_RETURN_NOT_OK(gsg_calibrator_->Fit(conf, val_labels));
    }
    if (config_.use_ldg) {
      std::vector<double> conf;
      for (double s : ldg_scores) conf.push_back(ldg_scaler_.ToConfidence(s));
      ldg_calibrator_ =
          std::make_unique<calib::AdaptiveCalibrator>(config_.calibration);
      DBG4ETH_RETURN_NOT_OK(ldg_calibrator_->Fit(conf, val_labels));
    }
  }

  // Stage 4: classifier head on the calibrated features of the validation
  // AND train splits — validation alone is far too small at account-
  // identification scale for the tree-based heads to find stable splits.
  std::vector<int> head_indices = split.val;
  head_indices.insert(head_indices.end(), split.train.begin(),
                      split.train.end());
  head_ = MakeHead(config_.head,
                   AdjustedGbdt(static_cast<int>(head_indices.size())));
  trained_ = true;  // HeadFeatures needs the branch state set up above.
  Matrix head_x(static_cast<int>(head_indices.size()),
                (config_.use_gsg ? 1 : 0) + (config_.use_ldg ? 1 : 0));
  std::vector<int> head_labels;
  for (size_t r = 0; r < head_indices.size(); ++r) {
    const auto features = HeadFeatures(dataset->instances[head_indices[r]]);
    for (size_t c = 0; c < features.size(); ++c) {
      head_x.At(static_cast<int>(r), static_cast<int>(c)) = features[c];
    }
    head_labels.push_back(dataset->instances[head_indices[r]].label);
  }
  Status head_status = head_->Train(head_x, head_labels);
  if (!head_status.ok()) {
    trained_ = false;
    return head_status;
  }
  return TrainProgress::kComplete;
}

ml::GbdtConfig Dbg4Eth::AdjustedGbdt(int num_samples) const {
  ml::GbdtConfig gbdt = config_.gbdt;
  gbdt.tree.min_samples_leaf = std::min(
      gbdt.tree.min_samples_leaf, std::max(2, num_samples / 6));
  return gbdt;
}

double Dbg4Eth::PredictProba(const eth::GraphInstance& instance) const {
  DBG4ETH_CHECK(trained_);
  // Prediction never needs gradients, so the branch forwards run tape-free
  // on the thread-local arena. No-op if a scope is already bound (batched
  // path) or the fast path is globally disabled.
  ag::InferenceScope scope;
  const auto features = HeadFeatures(instance);
  obs::TraceSpan head_span("gbdt");
  return head_->PredictProba(features.data());
}

std::vector<double> Dbg4Eth::PredictProbaBatch(
    const std::vector<const eth::GraphInstance*>& instances) const {
  DBG4ETH_CHECK(trained_);
  if (instances.empty()) return {};
  ag::InferenceScope scope;

  // Branch scores through one packed forward each, then the same
  // confidence + calibration transform the solo path applies per instance.
  std::vector<std::vector<double>> feature_cols;
  if (config_.use_gsg) {
    obs::TraceSpan gsg_span("gsg_packed_forward");
    std::vector<const graph::Graph*> graphs;
    graphs.reserve(instances.size());
    for (const eth::GraphInstance* inst : instances) {
      DBG4ETH_CHECK(inst != nullptr);
      graphs.push_back(&inst->gsg);
    }
    std::vector<double> scores = gsg_->PredictScoreBatch(graphs);
    gsg_span.End();
    for (double& s : scores) s = gsg_scaler_.ToConfidence(s);
    if (config_.use_calibration) {
      obs::TraceSpan calibrate_span("calibrate");
      for (double& s : scores) s = gsg_calibrator_->Calibrate(s);
    }
    feature_cols.push_back(std::move(scores));
  }
  if (config_.use_ldg) {
    obs::TraceSpan ldg_span("ldg_packed_forward");
    std::vector<const std::vector<graph::Graph>*> slice_lists;
    slice_lists.reserve(instances.size());
    for (const eth::GraphInstance* inst : instances) {
      DBG4ETH_CHECK(inst != nullptr);
      slice_lists.push_back(&inst->ldg);
    }
    std::vector<double> scores = ldg_->PredictScoreBatch(slice_lists);
    ldg_span.End();
    for (double& s : scores) s = ldg_scaler_.ToConfidence(s);
    if (config_.use_calibration) {
      obs::TraceSpan calibrate_span("calibrate");
      for (double& s : scores) s = ldg_calibrator_->Calibrate(s);
    }
    feature_cols.push_back(std::move(scores));
  }

  obs::TraceSpan head_span("gbdt");
  std::vector<double> features(feature_cols.size());
  std::vector<double> probs;
  probs.reserve(instances.size());
  for (size_t i = 0; i < instances.size(); ++i) {
    for (size_t c = 0; c < feature_cols.size(); ++c) {
      features[c] = feature_cols[c][i];
    }
    probs.push_back(head_->PredictProba(features.data()));
  }
  return probs;
}

void Dbg4Eth::Normalize(eth::GraphInstance* instance) const {
  DBG4ETH_CHECK(trained_);
  eth::StandardizeInstance(normalizer_, instance);
}

EvaluationReport Dbg4Eth::Evaluate(const eth::SubgraphDataset& dataset,
                                   const std::vector<int>& indices) const {
  DBG4ETH_CHECK(trained_);
  EvaluationReport report;
  for (int idx : indices) {
    report.test_labels.push_back(dataset.instances[idx].label);
    report.test_probs.push_back(PredictProba(dataset.instances[idx]));
  }
  report.metrics = ml::ComputeBinaryMetrics(
      report.test_labels, ml::ThresholdPredictions(report.test_probs));
  report.auc = ml::RocAuc(report.test_labels, report.test_probs);
  if (gsg_calibrator_) report.gsg_calibration = gsg_calibrator_->methods();
  if (ldg_calibrator_) report.ldg_calibration = ldg_calibrator_->methods();
  return report;
}

namespace {

constexpr uint32_t kCheckpointVersion = 1;

void WriteAugConfig(BinaryWriter* w, const augment::AugmentationConfig& c) {
  w->WriteDouble(c.edge_drop_prob);
  w->WriteDouble(c.feature_mask_prob);
  w->WriteI32(static_cast<int32_t>(c.measure));
  w->WriteDouble(c.max_prob);
}

Status ReadAugConfig(BinaryReader* r, augment::AugmentationConfig* c) {
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->edge_drop_prob));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->feature_mask_prob));
  int32_t measure = 0;
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&measure));
  c->measure = static_cast<graph::CentralityMeasure>(measure);
  return r->ReadDouble(&c->max_prob);
}

void WriteConfig(BinaryWriter* w, const Dbg4EthConfig& c) {
  w->WriteString("dbg4eth_config");
  // GSG encoder.
  w->WriteI32(c.gsg.node_feature_dim);
  w->WriteI32(c.gsg.hidden_dim);
  w->WriteI32(c.gsg.num_gat_layers);
  w->WriteI32(c.gsg.num_heads);
  w->WriteI32(c.gsg.num_classes);
  w->WriteDouble(c.gsg.dropout);
  w->WriteBool(c.gsg.use_contrastive);
  w->WriteDouble(c.gsg.contrastive_weight);
  w->WriteDouble(c.gsg.temperature);
  WriteAugConfig(w, c.gsg.view1);
  WriteAugConfig(w, c.gsg.view2);
  w->WriteU64(c.gsg.seed);
  // LDG encoder.
  w->WriteI32(c.ldg.node_feature_dim);
  w->WriteI32(c.ldg.hidden_dim);
  w->WriteI32(c.ldg.num_time_slices);
  w->WriteI32(c.ldg.num_pooling_layers);
  w->WriteI32(c.ldg.first_level_clusters);
  w->WriteI32(c.ldg.num_classes);
  w->WriteU64(c.ldg.seed);
  // Pipeline toggles.
  w->WriteBool(c.use_gsg);
  w->WriteBool(c.use_ldg);
  w->WriteBool(c.use_calibration);
  w->WriteI32(static_cast<int32_t>(c.head));
  w->WriteU64(c.seed);
}

Status ReadConfig(BinaryReader* r, Dbg4EthConfig* c) {
  DBG4ETH_RETURN_NOT_OK(r->ExpectTag("dbg4eth_config"));
  int32_t i = 0;
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.node_feature_dim));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.hidden_dim));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.num_gat_layers));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.num_heads));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.num_classes));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->gsg.dropout));
  DBG4ETH_RETURN_NOT_OK(r->ReadBool(&c->gsg.use_contrastive));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->gsg.contrastive_weight));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->gsg.temperature));
  DBG4ETH_RETURN_NOT_OK(ReadAugConfig(r, &c->gsg.view1));
  DBG4ETH_RETURN_NOT_OK(ReadAugConfig(r, &c->gsg.view2));
  DBG4ETH_RETURN_NOT_OK(r->ReadU64(&c->gsg.seed));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.node_feature_dim));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.hidden_dim));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.num_time_slices));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.num_pooling_layers));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.first_level_clusters));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.num_classes));
  DBG4ETH_RETURN_NOT_OK(r->ReadU64(&c->ldg.seed));
  DBG4ETH_RETURN_NOT_OK(r->ReadBool(&c->use_gsg));
  DBG4ETH_RETURN_NOT_OK(r->ReadBool(&c->use_ldg));
  DBG4ETH_RETURN_NOT_OK(r->ReadBool(&c->use_calibration));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&i));
  c->head = static_cast<HeadKind>(i);
  return r->ReadU64(&c->seed);
}

constexpr uint32_t kTrainStateVersion = 1;

/// Training hyperparameters that shape the epoch loop but are not part of
/// the serving checkpoint's architecture block. A TrainState records them
/// so a resume under a different schedule is rejected instead of silently
/// diverging. num_threads is deliberately absent: the data-parallel
/// trainers are bit-identical for every thread count.
void WriteTrainHparams(BinaryWriter* w, const Dbg4EthConfig& c) {
  w->WriteString("train_hparams");
  w->WriteI32(c.gsg.epochs);
  w->WriteDouble(c.gsg.learning_rate);
  w->WriteI32(c.gsg.batch_size);
  w->WriteDouble(c.gsg.grad_clip);
  w->WriteI32(c.ldg.epochs);
  w->WriteDouble(c.ldg.learning_rate);
  w->WriteI32(c.ldg.batch_size);
  w->WriteDouble(c.ldg.grad_clip);
  w->WriteBool(c.encoders_use_validation);
}

Status ReadTrainHparams(BinaryReader* r, Dbg4EthConfig* c) {
  DBG4ETH_RETURN_NOT_OK(r->ExpectTag("train_hparams"));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.epochs));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->gsg.learning_rate));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->gsg.batch_size));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->gsg.grad_clip));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.epochs));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->ldg.learning_rate));
  DBG4ETH_RETURN_NOT_OK(r->ReadI32(&c->ldg.batch_size));
  DBG4ETH_RETURN_NOT_OK(r->ReadDouble(&c->ldg.grad_clip));
  return r->ReadBool(&c->encoders_use_validation);
}

Status CheckResumeCompatible(const Dbg4EthConfig& live,
                             const Dbg4EthConfig& snap) {
  const bool same =
      live.use_gsg == snap.use_gsg && live.use_ldg == snap.use_ldg &&
      live.use_calibration == snap.use_calibration &&
      live.encoders_use_validation == snap.encoders_use_validation &&
      live.head == snap.head && live.seed == snap.seed &&
      live.gsg.node_feature_dim == snap.gsg.node_feature_dim &&
      live.gsg.hidden_dim == snap.gsg.hidden_dim &&
      live.gsg.num_gat_layers == snap.gsg.num_gat_layers &&
      live.gsg.num_heads == snap.gsg.num_heads &&
      live.gsg.num_classes == snap.gsg.num_classes &&
      live.gsg.dropout == snap.gsg.dropout &&
      live.gsg.use_contrastive == snap.gsg.use_contrastive &&
      live.gsg.contrastive_weight == snap.gsg.contrastive_weight &&
      live.gsg.temperature == snap.gsg.temperature &&
      live.gsg.seed == snap.gsg.seed && live.gsg.epochs == snap.gsg.epochs &&
      live.gsg.learning_rate == snap.gsg.learning_rate &&
      live.gsg.batch_size == snap.gsg.batch_size &&
      live.gsg.grad_clip == snap.gsg.grad_clip &&
      live.ldg.node_feature_dim == snap.ldg.node_feature_dim &&
      live.ldg.hidden_dim == snap.ldg.hidden_dim &&
      live.ldg.num_time_slices == snap.ldg.num_time_slices &&
      live.ldg.num_pooling_layers == snap.ldg.num_pooling_layers &&
      live.ldg.first_level_clusters == snap.ldg.first_level_clusters &&
      live.ldg.num_classes == snap.ldg.num_classes &&
      live.ldg.seed == snap.ldg.seed && live.ldg.epochs == snap.ldg.epochs &&
      live.ldg.learning_rate == snap.ldg.learning_rate &&
      live.ldg.batch_size == snap.ldg.batch_size &&
      live.ldg.grad_clip == snap.ldg.grad_clip;
  if (!same) {
    return Status::InvalidArgument(
        "training snapshot was taken under a different model or training "
        "configuration; resume with the exact configuration of the "
        "preempted run (only num_threads may differ)");
  }
  return Status::OK();
}

}  // namespace

Status Dbg4Eth::WriteTrainState(
    std::ostream* os, const ml::SplitIndices& split,
    const GsgEncoder::TrainSession* gsg_session,
    const LdgEncoder::TrainSession* ldg_session) const {
  BinaryWriter writer(os);
  writer.WriteString("dbg4eth_train_state");
  writer.WriteU32(kTrainStateVersion);
  WriteConfig(&writer, config_);
  WriteTrainHparams(&writer, config_);
  writer.WriteString("split");
  writer.WriteIntVector(split.train);
  writer.WriteIntVector(split.val);
  writer.WriteIntVector(split.test);
  writer.WriteDoubleVector(normalizer_.means());
  writer.WriteDoubleVector(normalizer_.stds());
  if (config_.use_gsg) {
    ag::WriteParameters(&writer, gsg_->Parameters());
    gsg_session->SaveState(&writer);
  }
  if (config_.use_ldg) {
    ag::WriteParameters(&writer, ldg_->Parameters());
    ldg_session->SaveState(&writer);
  }
  writer.WriteString("end");
  if (!writer.ok()) return Status::Internal("training snapshot write failed");
  return Status::OK();
}

Result<TrainProgress> Dbg4Eth::ResumeTrain(eth::SubgraphDataset* dataset,
                                           const TrainSnapshotOptions& options) {
  if (options.store == nullptr) {
    return Status::InvalidArgument("ResumeTrain requires a checkpoint store");
  }
  DBG4ETH_ASSIGN_OR_RETURN(std::string payload,
                           options.store->LoadLatestValid());
  std::istringstream body(payload);
  BinaryReader reader(&body);
  DBG4ETH_RETURN_NOT_OK(reader.ExpectTag("dbg4eth_train_state"));
  uint32_t version = 0;
  DBG4ETH_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kTrainStateVersion) {
    return Status::InvalidArgument("unsupported training snapshot version");
  }
  // Start from the live config so fields a TrainState does not carry
  // (gbdt, calibration, fractions) keep the caller's values when compared.
  Dbg4EthConfig snap = config_;
  DBG4ETH_RETURN_NOT_OK(ReadConfig(&reader, &snap));
  DBG4ETH_RETURN_NOT_OK(ReadTrainHparams(&reader, &snap));
  // Sync the live slice count from the dataset exactly as a fresh Train
  // would before comparing — the snapshot stores the synced value.
  if (config_.use_ldg && !dataset->instances.empty()) {
    config_.ldg.num_time_slices =
        static_cast<int>(dataset->instances.front().ldg.size());
  }
  DBG4ETH_RETURN_NOT_OK(CheckResumeCompatible(config_, snap));

  ml::SplitIndices split;
  DBG4ETH_RETURN_NOT_OK(reader.ExpectTag("split"));
  DBG4ETH_RETURN_NOT_OK(reader.ReadIntVector(&split.train));
  DBG4ETH_RETURN_NOT_OK(reader.ReadIntVector(&split.val));
  DBG4ETH_RETURN_NOT_OK(reader.ReadIntVector(&split.test));
  if (split.train.empty() || split.val.empty()) {
    return Status::DataLoss("training snapshot holds an empty split");
  }
  const int n = static_cast<int>(dataset->instances.size());
  for (const std::vector<int>* part : {&split.train, &split.val, &split.test}) {
    for (int idx : *part) {
      if (idx < 0 || idx >= n) {
        return Status::InvalidArgument(
            "training snapshot split indexes past this dataset; resume with "
            "the dataset the preempted run trained on");
      }
    }
  }

  std::vector<double> means, stds;
  DBG4ETH_RETURN_NOT_OK(reader.ReadDoubleVector(&means));
  DBG4ETH_RETURN_NOT_OK(reader.ReadDoubleVector(&stds));
  normalizer_.Restore(means, stds);
  // The snapshot was taken against the standardized dataset; the caller
  // hands the raw one (re-materialized after the crash). Standardize with
  // the restored statistics — not refit — so resumed epochs see inputs
  // bit-identical to the preempted run's.
  for (eth::GraphInstance& inst : dataset->instances) {
    eth::StandardizeInstance(normalizer_, &inst);
  }
  return RunTrainLoop(dataset, split, options, &reader);
}

Status Dbg4Eth::Save(std::ostream* os) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained model");
  }
  // The model body is serialized into a payload buffer and committed as a
  // framed (magic + version + length + CRC32) checkpoint, so truncation
  // and bit corruption are detected before parsing on reload.
  std::ostringstream payload;
  DBG4ETH_RETURN_NOT_OK(SaveRaw(&payload));
  return WriteFramedCheckpoint(os, payload.str());
}

Status Dbg4Eth::SaveRaw(std::ostream* os) const {
  BinaryWriter writer(os);
  writer.WriteString("dbg4eth_checkpoint");
  writer.WriteU32(kCheckpointVersion);
  WriteConfig(&writer, config_);

  // Feature normalizer.
  writer.WriteDoubleVector(normalizer_.means());
  writer.WriteDoubleVector(normalizer_.stds());

  // Branch encoders + confidence scalers.
  if (config_.use_gsg) {
    ag::WriteParameters(&writer, gsg_->Parameters());
    writer.WriteDouble(gsg_scaler_.mean);
    writer.WriteDouble(gsg_scaler_.stddev);
  }
  if (config_.use_ldg) {
    ag::WriteParameters(&writer, ldg_->Parameters());
    writer.WriteDouble(ldg_scaler_.mean);
    writer.WriteDouble(ldg_scaler_.stddev);
  }

  // Calibration.
  if (config_.use_calibration) {
    if (config_.use_gsg) gsg_calibrator_->Save(&writer);
    if (config_.use_ldg) ldg_calibrator_->Save(&writer);
  }

  // Classifier head.
  head_->Save(&writer);
  writer.WriteString("end");
  if (!writer.ok()) return Status::Internal("checkpoint write failed");
  return Status::OK();
}

Result<std::unique_ptr<Dbg4Eth>> Dbg4Eth::Load(std::istream* is) {
  if (LooksFramed(is)) {
    DBG4ETH_ASSIGN_OR_RETURN(std::string payload, ReadFramedCheckpoint(is));
    std::istringstream body(payload);
    return LoadRaw(&body);
  }
  // Legacy unframed stream (pre-framing checkpoints) — parse directly;
  // the section tags still catch gross corruption.
  return LoadRaw(is);
}

Result<std::unique_ptr<Dbg4Eth>> Dbg4Eth::LoadRaw(std::istream* is) {
  BinaryReader reader(is);
  DBG4ETH_RETURN_NOT_OK(reader.ExpectTag("dbg4eth_checkpoint"));
  uint32_t version = 0;
  DBG4ETH_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kCheckpointVersion) {
    return Status::Internal("unsupported checkpoint version");
  }
  Dbg4EthConfig config;
  DBG4ETH_RETURN_NOT_OK(ReadConfig(&reader, &config));
  auto model = std::make_unique<Dbg4Eth>(config);

  std::vector<double> means, stds;
  DBG4ETH_RETURN_NOT_OK(reader.ReadDoubleVector(&means));
  DBG4ETH_RETURN_NOT_OK(reader.ReadDoubleVector(&stds));
  model->normalizer_.Restore(means, stds);

  if (config.use_gsg) {
    model->gsg_ = std::make_unique<GsgEncoder>(config.gsg);
    std::vector<ag::Tensor> params = model->gsg_->Parameters();
    DBG4ETH_RETURN_NOT_OK(ag::ReadParameters(&reader, &params));
    DBG4ETH_RETURN_NOT_OK(reader.ReadDouble(&model->gsg_scaler_.mean));
    DBG4ETH_RETURN_NOT_OK(reader.ReadDouble(&model->gsg_scaler_.stddev));
  }
  if (config.use_ldg) {
    model->ldg_ = std::make_unique<LdgEncoder>(config.ldg);
    std::vector<ag::Tensor> params = model->ldg_->Parameters();
    DBG4ETH_RETURN_NOT_OK(ag::ReadParameters(&reader, &params));
    DBG4ETH_RETURN_NOT_OK(reader.ReadDouble(&model->ldg_scaler_.mean));
    DBG4ETH_RETURN_NOT_OK(reader.ReadDouble(&model->ldg_scaler_.stddev));
  }
  if (config.use_calibration) {
    if (config.use_gsg) {
      model->gsg_calibrator_ =
          std::make_unique<calib::AdaptiveCalibrator>(config.calibration);
      DBG4ETH_RETURN_NOT_OK(model->gsg_calibrator_->Load(&reader));
    }
    if (config.use_ldg) {
      model->ldg_calibrator_ =
          std::make_unique<calib::AdaptiveCalibrator>(config.calibration);
      DBG4ETH_RETURN_NOT_OK(model->ldg_calibrator_->Load(&reader));
    }
  }
  model->head_ = MakeHead(config.head, config.gbdt);
  DBG4ETH_RETURN_NOT_OK(model->head_->Load(&reader));
  DBG4ETH_RETURN_NOT_OK(reader.ExpectTag("end"));
  model->trained_ = true;
  return model;
}

Result<EvaluationReport> Dbg4Eth::EvaluateWithHead(
    HeadKind kind, const eth::SubgraphDataset& dataset,
    const std::vector<int>& val_indices,
    const std::vector<int>& test_indices) const {
  if (!trained_) {
    return Status::FailedPrecondition("model has not been trained");
  }
  const int dim = (config_.use_gsg ? 1 : 0) + (config_.use_ldg ? 1 : 0);
  Matrix head_x(static_cast<int>(val_indices.size()), dim);
  std::vector<int> val_labels;
  for (size_t r = 0; r < val_indices.size(); ++r) {
    const auto features = HeadFeatures(dataset.instances[val_indices[r]]);
    for (size_t c = 0; c < features.size(); ++c) {
      head_x.At(static_cast<int>(r), static_cast<int>(c)) = features[c];
    }
    val_labels.push_back(dataset.instances[val_indices[r]].label);
  }
  std::unique_ptr<ml::BinaryClassifier> head =
      MakeHead(kind, AdjustedGbdt(static_cast<int>(val_indices.size())));
  DBG4ETH_RETURN_NOT_OK(head->Train(head_x, val_labels));

  EvaluationReport report;
  for (int idx : test_indices) {
    const auto features = HeadFeatures(dataset.instances[idx]);
    report.test_labels.push_back(dataset.instances[idx].label);
    report.test_probs.push_back(head->PredictProba(features.data()));
  }
  report.metrics = ml::ComputeBinaryMetrics(
      report.test_labels, ml::ThresholdPredictions(report.test_probs));
  report.auc = ml::RocAuc(report.test_labels, report.test_probs);
  return report;
}

Result<EvaluationReport> Dbg4Eth::TrainAndEvaluate(
    eth::SubgraphDataset* dataset) {
  Rng rng(config_.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      dataset->labels(), config_.train_fraction, config_.val_fraction, &rng);
  if (split.test.empty()) {
    return Status::InvalidArgument("test split is empty");
  }
  DBG4ETH_RETURN_NOT_OK(Train(dataset, split));
  return Evaluate(*dataset, split.test);
}

}  // namespace core
}  // namespace dbg4eth
