#include "core/gsg_encoder.h"

#include <algorithm>
#include <cmath>

#include "augment/contrastive.h"
#include "common/logging.h"
#include "core/parallel_trainer.h"
#include "graph/pack.h"
#include "obs/metrics.h"
#include "tensor/inference.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace dbg4eth {
namespace core {

namespace {

constexpr int kEdgeAggregateDim = 2;

obs::Histogram* TrainHistogram(const char* name, const char* help) {
  return obs::MetricsRegistry::Global()->HistogramAt(name, help,
                                                     {{"encoder", "gsg"}});
}

}  // namespace

GsgEncoder::GsgEncoder(const GsgEncoderConfig& config)
    : config_(config), rng_(config.seed) {
  DBG4ETH_CHECK_GE(config.num_gat_layers, 1);
  DBG4ETH_CHECK_EQ(config.hidden_dim % config.num_heads, 0);
  const int per_head = config.hidden_dim / config.num_heads;
  align_ = std::make_unique<gnn::Linear>(
      config.node_feature_dim + kEdgeAggregateDim, config.hidden_dim, &rng_);
  for (int l = 0; l < config.num_gat_layers; ++l) {
    gat_layers_.push_back(std::make_unique<gnn::GatConv>(
        config.hidden_dim, per_head, config.num_heads, &rng_));
  }
  readout_ = std::make_unique<gnn::GraphAttentionReadout>(config.hidden_dim,
                                                          &rng_);
  head_ = std::make_unique<gnn::Linear>(config.hidden_dim,
                                        config.num_classes, &rng_);
}

Matrix GsgEncoder::BuildNodeInput(const graph::Graph& g) {
  DBG4ETH_CHECK(!g.node_features.empty());
  Matrix input(g.num_nodes, g.node_features.cols() + kEdgeAggregateDim);
  for (int v = 0; v < g.num_nodes; ++v) {
    for (int c = 0; c < g.node_features.cols(); ++c) {
      input.At(v, c) = g.node_features.At(v, c);
    }
  }
  // Incident-edge aggregates (Eq. 6's r_ij, pooled per node): log1p of the
  // summed edge value and transaction count over all incident merged edges.
  const int base = g.node_features.cols();
  for (int m = 0; m < g.num_edges(); ++m) {
    const graph::Edge& e = g.edges[m];
    const double w =
        g.edge_features.empty() ? 1.0 : g.edge_features.At(m, 0);
    const double t = g.edge_features.cols() > 1 ? g.edge_features.At(m, 1)
                                                : 1.0;
    for (int endpoint : {e.src, e.dst}) {
      input.At(endpoint, base + 0) += w;
      input.At(endpoint, base + 1) += t;
      if (e.src == e.dst) break;
    }
  }
  for (int v = 0; v < g.num_nodes; ++v) {
    input.At(v, base + 0) = std::log1p(std::max(0.0, input.At(v, base + 0)));
    input.At(v, base + 1) = std::log1p(std::max(0.0, input.At(v, base + 1)));
  }
  return input;
}

ag::Tensor GsgEncoder::EmbedGraph(const graph::Graph& g, bool training,
                                  Rng* rng) const {
  const Matrix& mask = g.AttentionMask();
  const auto support = g.AttentionMaskSparse();
  ag::Tensor h = ag::Tensor::Constant(BuildNodeInput(g));
  // Eq. 6: linear alignment + LeakyReLU.
  h = ag::LeakyRelu(align_->Forward(h));
  for (const auto& gat : gat_layers_) {
    h = ag::Elu(gat->Forward(h, mask, support));
    if (training && config_.dropout > 0.0) {
      h = ag::Dropout(h, config_.dropout, rng, training);
    }
  }
  return readout_->Forward(h);
}

ag::Tensor GsgEncoder::Logits(const ag::Tensor& embedding) const {
  return head_->Forward(embedding);
}

double GsgEncoder::PredictScore(const graph::Graph& g) const {
  // The eval path never draws randomness (Dropout is a no-op when
  // !training); passing nullptr keeps inference free of the mutable
  // training RNG so concurrent PredictScore calls are race-free.
  const Matrix logits =
      Logits(EmbedGraph(g, /*training=*/false, /*rng=*/nullptr)).value();
  return logits.At(0, 1) - logits.At(0, 0);
}

std::vector<double> GsgEncoder::PredictScoreBatch(
    const std::vector<const graph::Graph*>& graphs) const {
  if (graphs.empty()) return {};
  ag::InferenceScope scope;
  std::vector<int> block_nodes;
  block_nodes.reserve(graphs.size());
  std::vector<std::shared_ptr<const SparseMatrix>> supports;
  supports.reserve(graphs.size());
  std::vector<Matrix> inputs;
  inputs.reserve(graphs.size());
  std::vector<const Matrix*> input_ptrs;
  input_ptrs.reserve(graphs.size());
  for (const graph::Graph* g : graphs) {
    DBG4ETH_CHECK(g != nullptr);
    block_nodes.push_back(g->num_nodes);
    supports.push_back(g->AttentionMaskSparse());
    inputs.push_back(BuildNodeInput(*g));
    input_ptrs.push_back(&inputs.back());
  }
  const graph::PackedBlocks pack = graph::MakePackedBlocks(block_nodes);
  const auto packed_support = graph::ConcatBlockDiagonal(pack, supports);

  // One fused pass over the disjoint union: align + GAT stack are
  // block-local, so each graph's rows match its solo forward bit for bit.
  ag::Tensor h = ag::Tensor::Constant(graph::StackBlockRows(input_ptrs));
  h = ag::LeakyRelu(align_->Forward(h));
  for (const auto& gat : gat_layers_) {
    h = ag::Elu(gat->ForwardPacked(h, packed_support));
  }

  std::vector<double> scores;
  scores.reserve(graphs.size());
  for (int b = 0; b < pack.num_blocks(); ++b) {
    ag::Tensor block_h = ag::SliceRows(h, pack.begin(b), pack.end(b));
    const Matrix logits = Logits(readout_->Forward(block_h)).value();
    scores.push_back(logits.At(0, 1) - logits.At(0, 0));
  }
  return scores;
}

std::vector<ag::Tensor> GsgEncoder::Parameters() const {
  std::vector<ag::Tensor> params = align_->Parameters();
  for (const auto& gat : gat_layers_) {
    for (const auto& p : gat->Parameters()) params.push_back(p);
  }
  for (const auto& p : readout_->Parameters()) params.push_back(p);
  for (const auto& p : head_->Parameters()) params.push_back(p);
  return params;
}

GsgEncoder::TrainSession::TrainSession(GsgEncoder* encoder,
                                       const eth::SubgraphDataset* dataset,
                                       std::vector<int> train_indices)
    : encoder_(encoder),
      dataset_(dataset),
      order_(std::move(train_indices)),
      opt_(encoder->Parameters(), encoder->config_.learning_rate),
      pool_(MakeTrainerPool(ResolveNumThreads(encoder->config_.num_threads))) {
}

GsgEncoder::TrainSession::~TrainSession() = default;

bool GsgEncoder::TrainSession::done() const {
  return epoch_ >= encoder_->config_.epochs;
}

Status GsgEncoder::TrainSession::RunEpoch() {
  GsgEncoder& enc = *encoder_;
  const GsgEncoderConfig& config = enc.config_;
  const eth::SubgraphDataset& dataset = *dataset_;

  // Timing only observes the loop — it draws no randomness and reorders
  // nothing, so the bit-identical determinism guarantees are untouched.
  static obs::Histogram* epoch_hist = TrainHistogram(
      "train_epoch_us", "Wall time of one training epoch by encoder");
  static obs::Histogram* forward_hist = TrainHistogram(
      "train_forward_us", "Per-instance forward-pass wall time by encoder");
  static obs::Histogram* backward_hist = TrainHistogram(
      "train_backward_us", "Per-instance backward-pass wall time by encoder");
  static obs::Histogram* step_hist = TrainHistogram(
      "train_step_us",
      "Optimizer clip+step wall time per batch by encoder");
  static obs::Counter* epochs_total = obs::MetricsRegistry::Global()->CounterAt(
      "train_epochs_total", "Completed training epochs by encoder",
      {{"encoder", "gsg"}});

  obs::ScopedTimer epoch_timer(epoch_hist);
  enc.rng_.Shuffle(&order_);
  for (size_t start = 0; start < order_.size(); start += config.batch_size) {
    const size_t end = std::min(order_.size(), start + config.batch_size);
    const int batch_count = static_cast<int>(end - start);
    opt_.ZeroGrad();

    // One RNG per instance, forked from the trainer stream on this
    // thread in instance order: the randomness each instance sees
    // (dropout masks, augmentation draws) does not depend on the thread
    // count or on scheduling.
    std::vector<Rng> rngs;
    rngs.reserve(batch_count);
    for (int bi = 0; bi < batch_count; ++bi) rngs.push_back(enc.rng_.Fork());

    // Per-instance slots for the contrastive view embeddings; the tapes
    // built on worker threads stay alive until the NT-Xent backward
    // below.
    std::vector<ag::Tensor> view1_embs(batch_count);
    std::vector<ag::Tensor> view2_embs(batch_count);

    // Classification term: each instance backwards its 1/B-scaled loss
    // into a private gradient buffer (same mean-loss gradient as the
    // seed's sum-then-scale, accumulated per instance).
    ParallelBatchBackward(
        pool_.get(), batch_count,
        [&](int bi, ag::GradientBuffer* buffer) {
          const eth::GraphInstance& inst =
              dataset.instances[order_[start + bi]];
          Rng* rng = &rngs[bi];
          obs::ScopedTimer forward_timer(forward_hist);
          ag::Tensor emb = enc.EmbedGraph(inst.gsg, /*training=*/true, rng);
          ag::Tensor loss =
              ag::SoftmaxCrossEntropy(enc.Logits(emb), {inst.label});
          ag::Tensor scaled = ag::ScalarMul(loss, 1.0 / batch_count);
          forward_timer.Stop();
          {
            obs::ScopedTimer backward_timer(backward_hist);
            scaled.Backward(buffer);
          }
          if (config.use_contrastive) {
            const graph::Graph v1 =
                augment::AugmentGraph(inst.gsg, config.view1, rng);
            const graph::Graph v2 =
                augment::AugmentGraph(inst.gsg, config.view2, rng);
            view1_embs[bi] = enc.EmbedGraph(v1, /*training=*/true, rng);
            view2_embs[bi] = enc.EmbedGraph(v2, /*training=*/true, rng);
          }
        });

    // NT-Xent couples all views of the batch, so it runs (and backwards,
    // unbuffered) on this thread after the join. It needs at least two
    // graphs in the batch to have negatives.
    if (config.use_contrastive && batch_count >= 2) {
      ag::Tensor z1 = ag::ConcatRowsList(view1_embs);
      ag::Tensor z2 = ag::ConcatRowsList(view2_embs);
      ag::Tensor contrastive =
          augment::NtXentLoss(z1, z2, config.temperature);
      ag::ScalarMul(contrastive, config.contrastive_weight).Backward();
    }
    obs::ScopedTimer step_timer(step_hist);
    opt_.ClipGradNorm(config.grad_clip);
    opt_.Step();
  }
  ++epoch_;
  epochs_total->Inc();
  return Status::OK();
}

void GsgEncoder::TrainSession::SaveState(BinaryWriter* writer) const {
  writer->WriteString("gsg_train_session");
  writer->WriteU32(static_cast<uint32_t>(epoch_));
  writer->WriteIntVector(order_);
  WriteRngState(writer, encoder_->rng_);
  opt_.SaveState(writer);
}

Status GsgEncoder::TrainSession::LoadState(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("gsg_train_session"));
  uint32_t epoch = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&epoch));
  if (static_cast<int>(epoch) > encoder_->config_.epochs) {
    return Status::InvalidArgument(
        "GSG training session snapshot is ahead of the configured epochs");
  }
  std::vector<int> order;
  DBG4ETH_RETURN_NOT_OK(reader->ReadIntVector(&order));
  if (order.size() != order_.size()) {
    return Status::InvalidArgument(
        "GSG training session snapshot covers a different index count");
  }
  // Stage the RNG so a corrupt tail (e.g. mismatched optimizer state)
  // cannot leave the session half-restored.
  Rng staged(0);
  DBG4ETH_RETURN_NOT_OK(ReadRngState(reader, &staged));
  DBG4ETH_RETURN_NOT_OK(opt_.LoadState(reader));
  encoder_->rng_.SetState(staged.State());
  order_ = std::move(order);
  epoch_ = static_cast<int>(epoch);
  return Status::OK();
}

Status GsgEncoder::ValidateTrainingInputs(
    const eth::SubgraphDataset& dataset,
    const std::vector<int>& train_indices) const {
  (void)dataset;
  if (train_indices.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  return Status::OK();
}

Status GsgEncoder::Train(const eth::SubgraphDataset& dataset,
                         const std::vector<int>& train_indices) {
  DBG4ETH_RETURN_NOT_OK(ValidateTrainingInputs(dataset, train_indices));
  TrainSession session(this, &dataset, train_indices);
  while (!session.done()) {
    DBG4ETH_RETURN_NOT_OK(session.RunEpoch());
  }
  return Status::OK();
}

}  // namespace core
}  // namespace dbg4eth
