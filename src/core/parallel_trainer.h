#ifndef DBG4ETH_CORE_PARALLEL_TRAINER_H_
#define DBG4ETH_CORE_PARALLEL_TRAINER_H_

#include <functional>
#include <memory>

#include "common/parallel_for.h"
#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace dbg4eth {
namespace core {

/// Worker pool for a trainer configured with `num_threads` (already
/// resolved via ResolveNumThreads). Returns null for num_threads <= 1 — the
/// serial path needs no pool. The pool holds num_threads - 1 workers
/// because ParallelFor's calling thread participates in the loop.
std::unique_ptr<ThreadPool> MakeTrainerPool(int num_threads);

/// \brief Intra-batch data parallelism for the gradient-descent trainers.
///
/// Runs `body(bi, buffer)` for every instance bi of the batch, fanned out
/// over `pool` (inline when null). `body` builds the instance's forward
/// pass and calls `loss.Backward(buffer)`, so each worker accumulates leaf
/// (parameter) gradients into its private GradientBuffer; afterwards the
/// buffers are reduced into the shared parameter gradients in instance
/// order on the calling thread.
///
/// Determinism: because each instance's gradient is accumulated privately
/// and the reduction order is fixed, the summed gradient is bit-identical
/// for every thread count (given per-instance RNG streams — fork them from
/// the trainer RNG on the calling thread before fanning out). `body` must
/// only touch per-instance state besides the (read-only) shared parameters.
void ParallelBatchBackward(
    ThreadPool* pool, int batch_count,
    const std::function<void(int, ag::GradientBuffer*)>& body);

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_PARALLEL_TRAINER_H_
