#ifndef DBG4ETH_CORE_MULTICLASS_H_
#define DBG4ETH_CORE_MULTICLASS_H_

#include <memory>
#include <vector>

#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger_base.h"

namespace dbg4eth {
namespace core {

/// \brief One-vs-rest account identifier over multiple identity classes.
///
/// The paper evaluates one binary task per class; this wrapper composes
/// them into the de-anonymization primitive a downstream user actually
/// wants: "which class is this address?". One Dbg4Eth model is trained per
/// class; Identify returns the argmax class, or kNormal when no model is
/// confident.
class MultiClassIdentifier {
 public:
  struct Config {
    Dbg4EthConfig model;
    std::vector<eth::AccountClass> classes = {
        eth::AccountClass::kExchange,  eth::AccountClass::kIcoWallet,
        eth::AccountClass::kMining,    eth::AccountClass::kPhishHack,
        eth::AccountClass::kBridge,    eth::AccountClass::kDefi};
    /// Minimum probability for a positive identification.
    double decision_threshold = 0.5;
    eth::DatasetConfig dataset;
  };

  explicit MultiClassIdentifier(const Config& config);

  MultiClassIdentifier(const MultiClassIdentifier&) = delete;
  MultiClassIdentifier& operator=(const MultiClassIdentifier&) = delete;

  /// Builds one dataset and trains one binary model per configured class.
  /// Classes whose dataset cannot be built (e.g. absent from the ledger)
  /// fail the whole call.
  Status Train(const eth::Ledger& ledger);

  /// Per-class probability for an account, ordered like config().classes.
  /// Samples and materializes the account's subgraph internally.
  Result<std::vector<double>> ClassProbabilities(const eth::Ledger& ledger,
                                                 eth::AccountId account) const;

  /// Argmax identification; kNormal when every class probability is below
  /// the decision threshold.
  Result<eth::AccountClass> Identify(const eth::Ledger& ledger,
                                     eth::AccountId account) const;

  const Config& config() const { return config_; }
  bool trained() const { return !models_.empty(); }

 private:
  Config config_;
  std::vector<std::unique_ptr<Dbg4Eth>> models_;  ///< Parallel to classes.
};

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_MULTICLASS_H_
