#include "core/multiclass.h"

#include "common/logging.h"
#include "features/node_features.h"
#include "graph/build.h"
#include "graph/sampling.h"
#include "ml/split.h"

namespace dbg4eth {
namespace core {

MultiClassIdentifier::MultiClassIdentifier(const Config& config)
    : config_(config) {
  DBG4ETH_CHECK(!config.classes.empty());
}

Status MultiClassIdentifier::Train(const eth::Ledger& ledger) {
  models_.clear();
  for (size_t c = 0; c < config_.classes.size(); ++c) {
    eth::DatasetConfig ds_config = config_.dataset;
    ds_config.target = config_.classes[c];
    ds_config.seed = config_.dataset.seed + c;
    auto ds_result = eth::BuildDataset(ledger, ds_config);
    if (!ds_result.ok()) {
      models_.clear();
      return ds_result.status();
    }
    eth::SubgraphDataset dataset = std::move(ds_result).ValueOrDie();

    Dbg4EthConfig model_config = config_.model;
    model_config.seed += c;
    auto model = std::make_unique<Dbg4Eth>(model_config);
    Rng rng(model_config.seed);
    const ml::SplitIndices split = ml::StratifiedSplit(
        dataset.labels(), model_config.train_fraction,
        model_config.val_fraction, &rng);
    Status st = model->Train(&dataset, split);
    if (!st.ok()) {
      models_.clear();
      return st;
    }
    models_.push_back(std::move(model));
  }
  return Status::OK();
}

Result<std::vector<double>> MultiClassIdentifier::ClassProbabilities(
    const eth::Ledger& ledger, eth::AccountId account) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("identifier has not been trained");
  }
  DBG4ETH_ASSIGN_OR_RETURN(
      eth::TxSubgraph sub,
      graph::SampleSubgraph(ledger, account, config_.dataset.sampling));
  eth::GraphInstance base;
  base.gsg = graph::BuildGlobalStaticGraph(sub);
  base.ldg =
      graph::BuildLocalDynamicGraphs(sub, config_.dataset.num_time_slices);
  const Matrix feats =
      features::LogScaleFeatures(features::ComputeNodeFeatures(sub));
  base.gsg.node_features = feats;
  for (graph::Graph& slice : base.ldg) slice.node_features = feats;
  base.subgraph = std::move(sub);

  std::vector<double> probs;
  probs.reserve(models_.size());
  for (const auto& model : models_) {
    eth::GraphInstance inst = base;  // each model has its own normalizer
    model->Normalize(&inst);
    probs.push_back(model->PredictProba(inst));
  }
  return probs;
}

Result<eth::AccountClass> MultiClassIdentifier::Identify(
    const eth::Ledger& ledger, eth::AccountId account) const {
  DBG4ETH_ASSIGN_OR_RETURN(std::vector<double> probs,
                           ClassProbabilities(ledger, account));
  int best = -1;
  double best_p = config_.decision_threshold;
  for (size_t c = 0; c < probs.size(); ++c) {
    if (probs[c] >= best_p) {
      best_p = probs[c];
      best = static_cast<int>(c);
    }
  }
  if (best < 0) return eth::AccountClass::kNormal;
  return config_.classes[best];
}

}  // namespace core
}  // namespace dbg4eth
