#ifndef DBG4ETH_CORE_DBG4ETH_H_
#define DBG4ETH_CORE_DBG4ETH_H_

#include <memory>
#include <vector>

#include "calib/adaptive.h"
#include "common/checkpoint_store.h"
#include "common/result.h"
#include "core/gsg_encoder.h"
#include "core/ldg_encoder.h"
#include "eth/dataset.h"
#include "ml/classifier.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/split.h"

namespace dbg4eth {
namespace core {

/// Classifier head choices of the paper's Fig. 7 / Table IV.
enum class HeadKind { kLightGbm, kXgboost, kMlp, kRandomForest, kAdaBoost };

const char* HeadKindName(HeadKind kind);

/// \brief End-to-end DBG4ETH configuration. The boolean toggles implement
/// every Table IV ablation row.
struct Dbg4EthConfig {
  GsgEncoderConfig gsg;
  LdgEncoderConfig ldg;
  calib::AdaptiveCalibratorConfig calibration;

  bool use_gsg = true;          ///< false = "w/o GSG".
  bool use_ldg = true;          ///< false = "w/o LDG".
  bool use_calibration = true;  ///< false = "w/o calibration".
  /// When true (default) the branch encoders train on train+val — the same
  /// data budget the baselines get — while calibration and the head are
  /// still fitted on the validation split. Set false for a strictly
  /// held-out calibration protocol.
  bool encoders_use_validation = true;
  HeadKind head = HeadKind::kLightGbm;  ///< kMlp = "w/o LightGBM".
  ml::GbdtConfig gbdt;

  double train_fraction = 0.6;
  double val_fraction = 0.2;
  uint64_t seed = 7;
};

/// Outcome of a budgeted resumable training call.
enum class TrainProgress {
  kComplete,   ///< All stages finished; the model is ready to serve.
  kPreempted,  ///< Epoch budget ran out; state was snapshotted for resume.
};

/// \brief Durability and preemption knobs for resumable training.
struct TrainSnapshotOptions {
  /// Destination of the durable TrainState snapshots (model parameters,
  /// optimizer moments, RNG streams, shuffle orders, split indices).
  /// Null disables snapshotting — plain uninterruptible training.
  CheckpointStore* store = nullptr;
  /// Snapshot cadence, counted in completed encoder epochs (GSG and LDG
  /// epochs both count). Values < 1 behave as 1.
  int snapshot_every_epochs = 1;
  /// Preemption budget: once this many epochs have run in THIS call, the
  /// loop snapshots and returns kPreempted at the epoch boundary — a
  /// fixed-allocation (SLURM-style) stop, taken even when the budgeted
  /// epoch was the last one (the follow-up ResumeTrain then only re-runs
  /// the cheap deterministic post-encoder stages). <= 0 means unlimited.
  int max_epochs_this_run = 0;
};

/// \brief Evaluation output of one train/evaluate run.
struct EvaluationReport {
  ml::BinaryMetrics metrics;
  double auc = 0.0;
  std::vector<int> test_labels;
  std::vector<double> test_probs;
  /// Adaptive calibration introspection per branch (empty when the branch
  /// or calibration is disabled) — the data behind Fig. 6.
  std::vector<calib::AdaptiveCalibrator::MethodInfo> gsg_calibration;
  std::vector<calib::AdaptiveCalibrator::MethodInfo> ldg_calibration;
};

/// \brief The double-graph de-anonymization model (paper Sec. IV).
///
/// Pipeline: GSG + LDG branch encoders -> confidence generation (z-scored
/// branch scores through a sigmoid) -> adaptive six-method calibration per
/// branch (Eq. 24-25) -> LightGBM on the calibrated pair.
class Dbg4Eth {
 public:
  explicit Dbg4Eth(const Dbg4EthConfig& config);

  Dbg4Eth(const Dbg4Eth&) = delete;
  Dbg4Eth& operator=(const Dbg4Eth&) = delete;

  /// Trains encoders on the train split, fits calibrators and the head on
  /// the validation split. The dataset is standardized in place using the
  /// train split statistics. Equivalent to TrainWithSnapshots with default
  /// options (no snapshots, unlimited budget).
  Status Train(eth::SubgraphDataset* dataset, const ml::SplitIndices& split);

  /// \brief Crash-safe training: the Train pipeline run as a resumable
  /// epoch loop.
  ///
  /// Every `snapshot_every_epochs` completed encoder epochs (and always at
  /// a preemption stop) a versioned TrainState frame — model parameters,
  /// Adam moments and step counts, each encoder's full RNG stream, the
  /// cumulative shuffle orders, the epoch indices, the split and the
  /// feature normalizer — is committed durably through `options.store`.
  /// A run killed at ANY epoch boundary and continued with ResumeTrain
  /// produces a model bit-identical to an uninterrupted Train, for both
  /// the sequential and data-parallel (num_threads > 1) trainers.
  Result<TrainProgress> TrainWithSnapshots(eth::SubgraphDataset* dataset,
                                           const ml::SplitIndices& split,
                                           const TrainSnapshotOptions& options);

  /// \brief Continues a preempted TrainWithSnapshots run from the newest
  /// valid snapshot in `options.store` (corrupt newest generations are
  /// skipped).
  ///
  /// `dataset` must be the same dataset in its RAW form, exactly as it was
  /// first passed to TrainWithSnapshots (after a crash the dataset is
  /// re-materialized fresh); it is standardized here with the snapshot's
  /// restored statistics, not refit. The model must be configured exactly
  /// as the preempted run (validated against the snapshot; only
  /// num_threads may differ — the trainers are bit-identical for every
  /// thread count). The split is restored from the snapshot.
  Result<TrainProgress> ResumeTrain(eth::SubgraphDataset* dataset,
                                    const TrainSnapshotOptions& options);

  /// P(target class) for one instance. Requires Train. The instance must
  /// carry node features standardized with this model's statistics —
  /// dataset instances passed to Train already are; instances materialized
  /// elsewhere must go through Normalize first.
  double PredictProba(const eth::GraphInstance& instance) const;

  /// Batched P(target class): each branch scores all instances through one
  /// fused block-diagonal forward (GsgEncoder/LdgEncoder::PredictScoreBatch,
  /// tape-free under an InferenceScope); calibration and the classifier
  /// head then run per instance. Every probability is bit-identical to
  /// PredictProba(*instances[i]). Requires Train and normalized instances,
  /// same as PredictProba.
  std::vector<double> PredictProbaBatch(
      const std::vector<const eth::GraphInstance*>& instances) const;

  /// Standardizes a freshly materialized instance (raw log-scaled
  /// features) with the train-split feature statistics so PredictProba can
  /// score it. Requires Train.
  void Normalize(eth::GraphInstance* instance) const;

  /// Writes the full trained model (config, encoders, scalers, calibrators,
  /// normalizer, classifier head) to a binary checkpoint. Requires Train.
  /// The stream is framed (magic, format version, payload length, CRC32
  /// trailer — see common/checkpoint_store.h) so Load can reject truncated
  /// or bit-flipped checkpoints before parsing.
  Status Save(std::ostream* os) const;

  /// Restores a model saved with Save; the result is ready for
  /// PredictProba / Evaluate without retraining. Accepts both framed
  /// checkpoints (validated against their CRC, corruption -> kDataLoss)
  /// and legacy unframed streams from before the framing change.
  static Result<std::unique_ptr<Dbg4Eth>> Load(std::istream* is);

  /// Metrics over the given instances.
  EvaluationReport Evaluate(const eth::SubgraphDataset& dataset,
                            const std::vector<int>& indices) const;

  /// Convenience: stratified split + Train + Evaluate on the test split.
  Result<EvaluationReport> TrainAndEvaluate(eth::SubgraphDataset* dataset);

  /// Trains an alternative classifier head on `val_indices` (branch
  /// encoders and calibrators unchanged) and evaluates it on
  /// `test_indices` — the Fig. 7 classifier comparison. Requires Train.
  Result<EvaluationReport> EvaluateWithHead(
      HeadKind kind, const eth::SubgraphDataset& dataset,
      const std::vector<int>& val_indices,
      const std::vector<int>& test_indices) const;

  const Dbg4EthConfig& config() const { return config_; }

 private:
  /// Unframed serialization body shared by Save (which frames it) and the
  /// legacy-stream path of Load.
  Status SaveRaw(std::ostream* os) const;
  static Result<std::unique_ptr<Dbg4Eth>> LoadRaw(std::istream* is);

  /// The epoch-granular training loop behind Train / TrainWithSnapshots /
  /// ResumeTrain. When `resume` is non-null it is positioned at the
  /// per-encoder state of a TrainState frame and restored before looping.
  Result<TrainProgress> RunTrainLoop(eth::SubgraphDataset* dataset,
                                     const ml::SplitIndices& split,
                                     const TrainSnapshotOptions& options,
                                     BinaryReader* resume);

  /// Serializes one TrainState frame (see TrainWithSnapshots).
  Status WriteTrainState(std::ostream* os, const ml::SplitIndices& split,
                         const GsgEncoder::TrainSession* gsg_session,
                         const LdgEncoder::TrainSession* ldg_session) const;

  struct BranchScaler {
    double mean = 0.0;
    double stddev = 1.0;
    double ToConfidence(double score) const;
  };

  double BranchConfidenceGsg(const eth::GraphInstance& inst) const;
  double BranchConfidenceLdg(const eth::GraphInstance& inst) const;
  /// GBDT config with the leaf-size floor adapted to `num_samples` so tiny
  /// validation splits still produce a non-degenerate head.
  ml::GbdtConfig AdjustedGbdt(int num_samples) const;
  /// Head feature row for one instance (calibrated branch probabilities).
  std::vector<double> HeadFeatures(const eth::GraphInstance& inst) const;

  Dbg4EthConfig config_;
  features::FeatureNormalizer normalizer_;
  std::unique_ptr<GsgEncoder> gsg_;
  std::unique_ptr<LdgEncoder> ldg_;
  BranchScaler gsg_scaler_;
  BranchScaler ldg_scaler_;
  std::unique_ptr<calib::AdaptiveCalibrator> gsg_calibrator_;
  std::unique_ptr<calib::AdaptiveCalibrator> ldg_calibrator_;
  std::unique_ptr<ml::BinaryClassifier> head_;
  bool trained_ = false;
};

/// Instantiates a classifier head.
std::unique_ptr<ml::BinaryClassifier> MakeHead(HeadKind kind,
                                               const ml::GbdtConfig& gbdt);

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_DBG4ETH_H_
