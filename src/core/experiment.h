#ifndef DBG4ETH_CORE_EXPERIMENT_H_
#define DBG4ETH_CORE_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/baselines.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"

namespace dbg4eth {
namespace core {

/// \brief Shared workload setup of the benchmark harness.
///
/// The paper's dataset counts (Table II) are scaled down so the full bench
/// suite reproduces every table/figure on one laptop core in minutes; set
/// the DBG4ETH_SCALE environment variable (e.g. 0.5 or 2.0) to shrink or
/// grow every dataset proportionally.
struct ExperimentConfig {
  eth::LedgerConfig ledger;
  /// Positive-center caps per class, pre-scaling.
  int positives_exchange = 48;
  int positives_ico_wallet = 44;
  int positives_mining = 36;
  int positives_phish_hack = 56;
  int positives_bridge = 36;
  int positives_defi = 36;
  graph::SamplingConfig sampling = {.hops = 2, .top_k = 7, .max_nodes = 72};
  int num_time_slices = 8;
  double scale = 1.0;  ///< Multiplies the positive caps.
  uint64_t seed = 2024;
};

/// Default configuration with DBG4ETH_SCALE applied.
ExperimentConfig DefaultExperimentConfig();

/// \brief Result of k-fold cross-validation of one model configuration.
struct CrossValidationResult {
  std::vector<EvaluationReport> folds;
  ml::BinaryMetrics mean;     ///< Averaged over folds.
  double mean_auc = 0.0;
  double f1_stddev = 0.0;     ///< Across folds — the headline stability number.
};

/// Stratified k-fold cross-validation: each fold serves once as the test
/// set while the remainder is split into encoder-train and
/// calibration/head-validation portions per `config`'s fractions. A fresh
/// model is trained per fold on a copy of the dataset.
Result<CrossValidationResult> CrossValidate(const Dbg4EthConfig& config,
                                            const eth::SubgraphDataset& dataset,
                                            int num_folds, uint64_t seed);

/// Model hyperparameters shared by the bench harness (kept small for the
/// single-core target; the library defaults support the paper's sizes).
Dbg4EthConfig DefaultModelConfig(uint64_t seed = 7);
BaselineConfig DefaultBaselineConfig(uint64_t seed = 11);

/// \brief Lazily generated ledger + per-class datasets for the benches.
class ExperimentWorkload {
 public:
  explicit ExperimentWorkload(
      const ExperimentConfig& config = DefaultExperimentConfig());

  ExperimentWorkload(const ExperimentWorkload&) = delete;
  ExperimentWorkload& operator=(const ExperimentWorkload&) = delete;

  /// Generates the ledger on first use.
  Status EnsureLedger();

  const eth::LedgerSimulator& ledger() const { return *ledger_; }
  const ExperimentConfig& config() const { return config_; }

  /// Builds (fresh each call — training standardizes in place) the binary
  /// dataset of one account class.
  Result<eth::SubgraphDataset> BuildDataset(eth::AccountClass target);

  /// The four main evaluation classes of Table III.
  static std::vector<eth::AccountClass> MainClasses();
  /// The novel classes of Tables V/VI.
  static std::vector<eth::AccountClass> NovelClasses();

 private:
  int PositiveCap(eth::AccountClass target) const;

  ExperimentConfig config_;
  std::unique_ptr<eth::LedgerSimulator> ledger_;
};

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_EXPERIMENT_H_
