#include "core/experiment.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/math_util.h"
#include "ml/split.h"

namespace dbg4eth {
namespace core {

ExperimentConfig DefaultExperimentConfig() {
  ExperimentConfig config;
  if (const char* scale_env = std::getenv("DBG4ETH_SCALE")) {
    const double parsed = std::atof(scale_env);
    if (parsed > 0.01 && parsed <= 100.0) {
      config.scale = parsed;
    } else {
      DBG4ETH_LOG(Warning) << "ignoring invalid DBG4ETH_SCALE=" << scale_env;
    }
  }
  return config;
}

Dbg4EthConfig DefaultModelConfig(uint64_t seed) {
  Dbg4EthConfig config;
  config.seed = seed;
  config.gsg.hidden_dim = 24;
  config.gsg.num_heads = 2;
  config.gsg.epochs = 10;
  config.gsg.seed = seed + 1;
  config.ldg.hidden_dim = 24;
  config.ldg.epochs = 8;
  config.ldg.seed = seed + 2;
  config.gbdt.num_trees = 40;
  config.gbdt.tree.max_leaves = 6;
  config.gbdt.tree.min_samples_leaf = 3;
  config.train_fraction = 0.55;
  config.val_fraction = 0.25;
  return config;
}

BaselineConfig DefaultBaselineConfig(uint64_t seed) {
  BaselineConfig config;
  config.hidden_dim = 24;
  config.epochs = 6;
  config.seed = seed;
  return config;
}

Result<CrossValidationResult> CrossValidate(
    const Dbg4EthConfig& config, const eth::SubgraphDataset& dataset,
    int num_folds, uint64_t seed) {
  if (num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  if (dataset.num_graphs() < 2 * num_folds) {
    return Status::InvalidArgument("dataset too small for the fold count");
  }
  Rng rng(seed);
  const std::vector<int> labels = dataset.labels();
  const std::vector<int> fold_of = ml::StratifiedFolds(labels, num_folds,
                                                       &rng);

  CrossValidationResult result;
  std::vector<double> fold_f1;
  for (int fold = 0; fold < num_folds; ++fold) {
    ml::SplitIndices split;
    std::vector<int> rest;
    for (int i = 0; i < dataset.num_graphs(); ++i) {
      (fold_of[i] == fold ? split.test : rest).push_back(i);
    }
    // Split the remainder into encoder-train and calibration/validation,
    // stratified on the remainder's labels.
    std::vector<int> rest_labels;
    for (int i : rest) rest_labels.push_back(labels[i]);
    const double val_share =
        config.val_fraction / (config.train_fraction + config.val_fraction);
    const ml::SplitIndices inner = ml::StratifiedSplit(
        rest_labels, 1.0 - val_share - 1e-9, val_share, &rng);
    for (int i : inner.train) split.train.push_back(rest[i]);
    for (int i : inner.val) split.val.push_back(rest[i]);
    for (int i : inner.test) split.val.push_back(rest[i]);  // remainder

    eth::SubgraphDataset fold_dataset = dataset;  // Train mutates features
    Dbg4EthConfig fold_config = config;
    fold_config.seed = config.seed + fold;
    Dbg4Eth model(fold_config);
    DBG4ETH_RETURN_NOT_OK(model.Train(&fold_dataset, split));
    EvaluationReport report = model.Evaluate(fold_dataset, split.test);
    result.mean.precision += report.metrics.precision / num_folds;
    result.mean.recall += report.metrics.recall / num_folds;
    result.mean.f1 += report.metrics.f1 / num_folds;
    result.mean.accuracy += report.metrics.accuracy / num_folds;
    result.mean_auc += report.auc / num_folds;
    fold_f1.push_back(report.metrics.f1);
    result.folds.push_back(std::move(report));
  }
  result.f1_stddev = StdDev(fold_f1);
  return result;
}

ExperimentWorkload::ExperimentWorkload(const ExperimentConfig& config)
    : config_(config) {}

Status ExperimentWorkload::EnsureLedger() {
  if (ledger_) return Status::OK();
  ledger_ = std::make_unique<eth::LedgerSimulator>(config_.ledger);
  return ledger_->Generate();
}

int ExperimentWorkload::PositiveCap(eth::AccountClass target) const {
  int base = 0;
  switch (target) {
    case eth::AccountClass::kExchange:
      base = config_.positives_exchange;
      break;
    case eth::AccountClass::kIcoWallet:
      base = config_.positives_ico_wallet;
      break;
    case eth::AccountClass::kMining:
      base = config_.positives_mining;
      break;
    case eth::AccountClass::kPhishHack:
      base = config_.positives_phish_hack;
      break;
    case eth::AccountClass::kBridge:
      base = config_.positives_bridge;
      break;
    case eth::AccountClass::kDefi:
      base = config_.positives_defi;
      break;
    case eth::AccountClass::kNormal:
      base = 0;
      break;
  }
  return std::max(6, static_cast<int>(base * config_.scale));
}

Result<eth::SubgraphDataset> ExperimentWorkload::BuildDataset(
    eth::AccountClass target) {
  DBG4ETH_RETURN_NOT_OK(EnsureLedger());
  eth::DatasetConfig config;
  config.target = target;
  config.max_positives = PositiveCap(target);
  config.sampling = config_.sampling;
  config.num_time_slices = config_.num_time_slices;
  config.seed = config_.seed + static_cast<uint64_t>(target);
  return eth::BuildDataset(*ledger_, config);
}

std::vector<eth::AccountClass> ExperimentWorkload::MainClasses() {
  return {eth::AccountClass::kExchange, eth::AccountClass::kIcoWallet,
          eth::AccountClass::kMining, eth::AccountClass::kPhishHack};
}

std::vector<eth::AccountClass> ExperimentWorkload::NovelClasses() {
  return {eth::AccountClass::kBridge, eth::AccountClass::kDefi};
}

}  // namespace core
}  // namespace dbg4eth
