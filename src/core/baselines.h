#ifndef DBG4ETH_CORE_BASELINES_H_
#define DBG4ETH_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"

namespace dbg4eth {
namespace core {

/// The 14 baselines of Table III (plus the "w/o node feature" variants of
/// GCN/GAT/GIN/I2BGNN, rows 3/5/7/13).
enum class BaselineKind {
  kDeepWalk,
  kNode2Vec,
  kGcnNoFeatures,
  kGcn,
  kGatNoFeatures,
  kGat,
  kGinNoFeatures,
  kGin,
  kGraphSage,
  kAppnp,
  kGrit,
  kTrans2Vec,
  kI2bgnnNoFeatures,
  kI2bgnn,
  kTsgn,
  kEthident,
  kTegDetector,
  kBert4Eth,
};

/// Display name matching the paper's table rows.
const char* BaselineName(BaselineKind kind);

/// All baselines in Table III row order.
std::vector<BaselineKind> AllBaselines();

/// \brief Shared baseline hyperparameters (paper Sec. V-A4, scaled to the
/// synthetic substrate).
struct BaselineConfig {
  int hidden_dim = 32;
  int num_heads = 2;
  int epochs = 8;
  double learning_rate = 0.01;
  double train_fraction = 0.6;
  double val_fraction = 0.2;
  /// BERT4ETH stand-in: number of most recent center transactions encoded.
  int sequence_length = 32;
  /// Graph-embedding baselines.
  int embedding_dim = 32;
  int walks_per_node = 6;
  int walk_length = 20;
  uint64_t seed = 11;

  /// Instances per optimizer step of the autograd graph baselines. The
  /// default of 1 reproduces the original per-instance SGD exactly; larger
  /// batches average per-instance gradients.
  int batch_size = 1;
  /// Worker threads for intra-batch data parallelism; effective only with
  /// batch_size > 1. 0 = one per hardware thread.
  int num_threads = 1;
};

/// Trains the baseline on train+val and evaluates on the test split of a
/// stratified split (baselines have no calibration stage, so validation
/// data joins training as in the paper's protocol). The dataset is
/// standardized in place with train-split statistics.
Result<EvaluationReport> RunBaseline(BaselineKind kind,
                                     eth::SubgraphDataset* dataset,
                                     const BaselineConfig& config);

}  // namespace core
}  // namespace dbg4eth

#endif  // DBG4ETH_CORE_BASELINES_H_
