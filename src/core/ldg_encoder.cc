#include "core/ldg_encoder.h"

#include <algorithm>

#include "common/logging.h"
#include "core/parallel_trainer.h"
#include "graph/pack.h"
#include "obs/metrics.h"
#include "tensor/inference.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace dbg4eth {
namespace core {

namespace {

obs::Histogram* TrainHistogram(const char* name, const char* help) {
  return obs::MetricsRegistry::Global()->HistogramAt(name, help,
                                                     {{"encoder", "ldg"}});
}

}  // namespace

LdgEncoder::LdgEncoder(const LdgEncoderConfig& config)
    : config_(config), rng_(config.seed) {
  DBG4ETH_CHECK_GE(config.num_time_slices, 1);
  DBG4ETH_CHECK_GE(config.num_pooling_layers, 1);
  DBG4ETH_CHECK_LE(config.num_pooling_layers, 3);
  input_proj_ = std::make_unique<gnn::Linear>(config.node_feature_dim,
                                              config.hidden_dim, &rng_);
  topo_gcn_ = std::make_unique<gnn::GcnConv>(config.hidden_dim,
                                             config.hidden_dim, &rng_);
  gru_ = std::make_unique<gnn::GruCell>(config.hidden_dim, &rng_);
  // Pooling pyramid: first_level_clusters, then quarters, ending at 1.
  int clusters = config.first_level_clusters;
  for (int level = 0; level < config.num_pooling_layers; ++level) {
    const bool last = level + 1 == config.num_pooling_layers;
    const int c = last ? 1 : std::max(2, clusters);
    pools_.push_back(
        std::make_unique<gnn::DiffPool>(config.hidden_dim, c, &rng_));
    clusters = std::max(2, clusters / 4);
  }
  slice_weights_ =
      ag::Tensor::Parameter(Matrix(config.num_time_slices, 1));
  head_ = std::make_unique<gnn::Linear>(config.hidden_dim,
                                        config.num_classes, &rng_);
}

ag::Tensor LdgEncoder::EmbedSlices(
    const std::vector<graph::Graph>& slices) const {
  DBG4ETH_CHECK_EQ(static_cast<int>(slices.size()), config_.num_time_slices);
  DBG4ETH_CHECK(!slices.empty());
  DBG4ETH_CHECK(!slices[0].node_features.empty());

  // h_0: projected node features.
  ag::Tensor h = ag::Tanh(input_proj_->Forward(
      ag::Tensor::Constant(slices[0].node_features)));

  std::vector<ag::Tensor> pooled_per_slice;
  pooled_per_slice.reserve(slices.size());
  for (const graph::Graph& slice : slices) {
    // Eq. 14: U_t = GCN(h_{t-1}, A_t) on the value-weighted slice topology.
    // The slice adjacency is a constant, so message passing runs on the
    // cached CSR form (bit-identical to the dense product).
    const auto adj = slice.WeightedAdjacencySparse();
    ag::Tensor u_t = ag::Relu(topo_gcn_->Forward(adj, h));
    // Eq. 15-18: evolutionary update.
    h = gru_->Forward(u_t, h);

    // Eq. 19-21: DiffPool pyramid down to one node for this slice. The
    // first level pools the constant sparse adjacency; deeper levels pool
    // the differentiable dense output of the previous level.
    gnn::DiffPool::Output pooled = pools_.front()->Forward(adj, h);
    for (size_t level = 1; level < pools_.size(); ++level) {
      pooled = pools_[level]->Forward(pooled.adjacency, pooled.features);
    }
    pooled_per_slice.push_back(pooled.features);  // 1 x hidden
  }

  // Eq. 22: adaptive time-slice weights.
  ag::Tensor alphas = ag::SoftmaxColVector(slice_weights_);  // T x 1
  ag::Tensor stacked = ag::ConcatRowsList(pooled_per_slice);  // T x hidden
  return ag::MatMul(ag::Transpose(alphas), stacked);          // 1 x hidden
}

ag::Tensor LdgEncoder::Logits(const ag::Tensor& embedding) const {
  // Eq. 23 applies a ReLU-gated linear map before classification.
  return head_->Forward(ag::Relu(embedding));
}

double LdgEncoder::PredictScore(
    const std::vector<graph::Graph>& slices) const {
  const Matrix logits = Logits(EmbedSlices(slices)).value();
  return logits.At(0, 1) - logits.At(0, 0);
}

std::vector<double> LdgEncoder::PredictScoreBatch(
    const std::vector<const std::vector<graph::Graph>*>& instances) const {
  if (instances.empty()) return {};
  ag::InferenceScope scope;
  const int num_slices = config_.num_time_slices;
  std::vector<int> block_nodes;
  block_nodes.reserve(instances.size());
  for (const std::vector<graph::Graph>* slices : instances) {
    DBG4ETH_CHECK(slices != nullptr);
    DBG4ETH_CHECK_EQ(static_cast<int>(slices->size()), num_slices);
    DBG4ETH_CHECK(!(*slices)[0].node_features.empty());
    const int n = (*slices)[0].num_nodes;
    for (const graph::Graph& slice : *slices) {
      DBG4ETH_CHECK_EQ(slice.num_nodes, n);
    }
    block_nodes.push_back(n);
  }
  const graph::PackedBlocks pack = graph::MakePackedBlocks(block_nodes);

  // Per-instance, per-timestep slice operators: the same cached CSR
  // adjacencies the solo forward uses, reused both block-shifted (packed
  // GCN pass) and standalone (per-instance DiffPool).
  std::vector<std::vector<std::shared_ptr<const SparseMatrix>>> slice_adjs(
      num_slices);
  for (int t = 0; t < num_slices; ++t) {
    slice_adjs[t].reserve(instances.size());
    for (const std::vector<graph::Graph>* slices : instances) {
      slice_adjs[t].push_back((*slices)[t].WeightedAdjacencySparse());
    }
  }

  // h_0: projected stacked node features (input projection is row-local).
  std::vector<const Matrix*> features;
  features.reserve(instances.size());
  for (const std::vector<graph::Graph>* slices : instances) {
    features.push_back(&(*slices)[0].node_features);
  }
  ag::Tensor h = ag::Tanh(input_proj_->Forward(
      ag::Tensor::Constant(graph::StackBlockRows(features))));

  std::vector<std::vector<ag::Tensor>> pooled_per_slice(instances.size());
  for (auto& pooled : pooled_per_slice) pooled.reserve(num_slices);
  for (int t = 0; t < num_slices; ++t) {
    // Eq. 14 + Eq. 15-18 advance every instance's evolutionary state in
    // one fused pass over the block-diagonal slice topology.
    const auto packed_adj = graph::ConcatBlockDiagonal(pack, slice_adjs[t]);
    ag::Tensor u_t = ag::Relu(topo_gcn_->Forward(packed_adj, h));
    h = gru_->Forward(u_t, h);
    // DiffPool couples all rows of a graph (cluster assignment), so the
    // pyramid runs per instance on its row slice with its own adjacency.
    for (size_t b = 0; b < instances.size(); ++b) {
      ag::Tensor block_h = ag::SliceRows(h, pack.begin(static_cast<int>(b)),
                                         pack.end(static_cast<int>(b)));
      gnn::DiffPool::Output pooled =
          pools_.front()->Forward(slice_adjs[t][b], block_h);
      for (size_t level = 1; level < pools_.size(); ++level) {
        pooled = pools_[level]->Forward(pooled.adjacency, pooled.features);
      }
      pooled_per_slice[b].push_back(pooled.features);  // 1 x hidden
    }
  }

  // Eq. 22-23 per instance; the slice weights are shared, so the softmax
  // runs once.
  ag::Tensor alphas_t = ag::Transpose(ag::SoftmaxColVector(slice_weights_));
  std::vector<double> scores;
  scores.reserve(instances.size());
  for (size_t b = 0; b < instances.size(); ++b) {
    ag::Tensor stacked = ag::ConcatRowsList(pooled_per_slice[b]);
    const Matrix logits = Logits(ag::MatMul(alphas_t, stacked)).value();
    scores.push_back(logits.At(0, 1) - logits.At(0, 0));
  }
  return scores;
}

std::vector<ag::Tensor> LdgEncoder::Parameters() const {
  std::vector<ag::Tensor> params = input_proj_->Parameters();
  for (const auto& p : topo_gcn_->Parameters()) params.push_back(p);
  for (const auto& p : gru_->Parameters()) params.push_back(p);
  for (const auto& pool : pools_) {
    for (const auto& p : pool->Parameters()) params.push_back(p);
  }
  params.push_back(slice_weights_);
  for (const auto& p : head_->Parameters()) params.push_back(p);
  return params;
}

LdgEncoder::TrainSession::TrainSession(LdgEncoder* encoder,
                                       const eth::SubgraphDataset* dataset,
                                       std::vector<int> train_indices)
    : encoder_(encoder),
      dataset_(dataset),
      order_(std::move(train_indices)),
      opt_(encoder->Parameters(), encoder->config_.learning_rate),
      pool_(MakeTrainerPool(ResolveNumThreads(encoder->config_.num_threads))) {
}

LdgEncoder::TrainSession::~TrainSession() = default;

bool LdgEncoder::TrainSession::done() const {
  return epoch_ >= encoder_->config_.epochs;
}

Status LdgEncoder::TrainSession::RunEpoch() {
  LdgEncoder& enc = *encoder_;
  const LdgEncoderConfig& config = enc.config_;
  const eth::SubgraphDataset& dataset = *dataset_;
  const size_t batch_size = static_cast<size_t>(std::max(1, config.batch_size));

  // Timing only observes the loop; shuffles, forks and reduction order are
  // untouched, so determinism guarantees hold.
  static obs::Histogram* epoch_hist = TrainHistogram(
      "train_epoch_us", "Wall time of one training epoch by encoder");
  static obs::Histogram* forward_hist = TrainHistogram(
      "train_forward_us", "Per-instance forward-pass wall time by encoder");
  static obs::Histogram* backward_hist = TrainHistogram(
      "train_backward_us", "Per-instance backward-pass wall time by encoder");
  static obs::Histogram* step_hist = TrainHistogram(
      "train_step_us",
      "Optimizer clip+step wall time per batch by encoder");
  static obs::Counter* epochs_total = obs::MetricsRegistry::Global()->CounterAt(
      "train_epochs_total", "Completed training epochs by encoder",
      {{"encoder", "ldg"}});

  obs::ScopedTimer epoch_timer(epoch_hist);
  enc.rng_.Shuffle(&order_);
  for (size_t start = 0; start < order_.size(); start += batch_size) {
    const size_t end = std::min(order_.size(), start + batch_size);
    const int batch_count = static_cast<int>(end - start);
    opt_.ZeroGrad();
    // The LDG forward pass draws no randomness, so instances need no
    // forked RNG streams; the batch mean gradient is reduced in instance
    // order (thread-count independent). batch_size=1 reproduces the
    // original per-instance SGD bit-for-bit.
    ParallelBatchBackward(
        pool_.get(), batch_count,
        [&](int bi, ag::GradientBuffer* buffer) {
          const eth::GraphInstance& inst =
              dataset.instances[order_[start + bi]];
          obs::ScopedTimer forward_timer(forward_hist);
          ag::Tensor loss = ag::SoftmaxCrossEntropy(
              enc.Logits(enc.EmbedSlices(inst.ldg)), {inst.label});
          if (batch_count > 1) {
            loss = ag::ScalarMul(loss, 1.0 / batch_count);
          }
          forward_timer.Stop();
          obs::ScopedTimer backward_timer(backward_hist);
          loss.Backward(buffer);
        });
    obs::ScopedTimer step_timer(step_hist);
    opt_.ClipGradNorm(config.grad_clip);
    opt_.Step();
  }
  ++epoch_;
  epochs_total->Inc();
  return Status::OK();
}

void LdgEncoder::TrainSession::SaveState(BinaryWriter* writer) const {
  writer->WriteString("ldg_train_session");
  writer->WriteU32(static_cast<uint32_t>(epoch_));
  writer->WriteIntVector(order_);
  WriteRngState(writer, encoder_->rng_);
  opt_.SaveState(writer);
}

Status LdgEncoder::TrainSession::LoadState(BinaryReader* reader) {
  DBG4ETH_RETURN_NOT_OK(reader->ExpectTag("ldg_train_session"));
  uint32_t epoch = 0;
  DBG4ETH_RETURN_NOT_OK(reader->ReadU32(&epoch));
  if (static_cast<int>(epoch) > encoder_->config_.epochs) {
    return Status::InvalidArgument(
        "LDG training session snapshot is ahead of the configured epochs");
  }
  std::vector<int> order;
  DBG4ETH_RETURN_NOT_OK(reader->ReadIntVector(&order));
  if (order.size() != order_.size()) {
    return Status::InvalidArgument(
        "LDG training session snapshot covers a different index count");
  }
  // Stage the RNG so a corrupt tail cannot leave the session
  // half-restored.
  Rng staged(0);
  DBG4ETH_RETURN_NOT_OK(ReadRngState(reader, &staged));
  DBG4ETH_RETURN_NOT_OK(opt_.LoadState(reader));
  encoder_->rng_.SetState(staged.State());
  order_ = std::move(order);
  epoch_ = static_cast<int>(epoch);
  return Status::OK();
}

Status LdgEncoder::ValidateTrainingInputs(
    const eth::SubgraphDataset& dataset,
    const std::vector<int>& train_indices) const {
  if (train_indices.empty()) {
    return Status::InvalidArgument("empty training split");
  }
  for (int idx : train_indices) {
    if (static_cast<int>(dataset.instances[idx].ldg.size()) !=
        config_.num_time_slices) {
      return Status::InvalidArgument(
          "dataset time slices do not match encoder configuration");
    }
  }
  return Status::OK();
}

Status LdgEncoder::Train(const eth::SubgraphDataset& dataset,
                         const std::vector<int>& train_indices) {
  DBG4ETH_RETURN_NOT_OK(ValidateTrainingInputs(dataset, train_indices));
  TrainSession session(this, &dataset, train_indices);
  while (!session.done()) {
    DBG4ETH_RETURN_NOT_OK(session.RunEpoch());
  }
  return Status::OK();
}

}  // namespace core
}  // namespace dbg4eth
