#ifndef DBG4ETH_FEATURES_NODE_FEATURES_H_
#define DBG4ETH_FEATURES_NODE_FEATURES_H_

#include <array>
#include <string>
#include <vector>

#include "eth/types.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace features {

/// Indices of the 15-dimensional deep account features (paper Table I).
enum FeatureIndex {
  kNts = 0,     ///< Number of transactions sent.
  kStv,         ///< Send total value.
  kSav,         ///< Send average value.
  kMinSti,      ///< Minimum send time interval (Eq. 4).
  kMaxSti,      ///< Maximum send time interval (Eq. 3).
  kNtr,         ///< Number of transactions received.
  kRtv,         ///< Receive total value.
  kRav,         ///< Receive average value.
  kMinRti,      ///< Minimum receive time interval.
  kMaxRti,      ///< Maximum receive time interval.
  kSetf,        ///< Send Ether transaction fee (Eq. 5).
  kRetf,        ///< Receive Ether transaction fee.
  kSaetf,       ///< Send average Ether transaction fee.
  kRaetf,       ///< Receive average Ether transaction fee.
  kNc,          ///< Number of contract calls involving the account.
  kNumFeatures  // = 15
};

inline constexpr int kFeatureDim = kNumFeatures;

/// Abbreviated names in Table I order ("NTS", "STV", ...).
const std::array<std::string, kFeatureDim>& FeatureNames();

/// Four feature categories of Table I.
enum class FeatureCategory { kSender, kReceiver, kFee, kContract };

/// Category of each feature index.
FeatureCategory CategoryOf(int feature_index);

/// Computes the 15-dimensional deep features for every node of a subgraph
/// from its retained transactions (Section III-B2). Returns an
/// n x 15 matrix in FeatureIndex order. Accounts with fewer than two
/// sends/receives get zero time-interval features.
Matrix ComputeNodeFeatures(const eth::TxSubgraph& subgraph);

/// log1p on every entry: all 15 features are non-negative magnitudes with
/// heavy tails, so this is the standard variance-stabilizing transform
/// applied before dataset-level standardization.
Matrix LogScaleFeatures(const Matrix& features);

/// \brief Dataset-level per-dimension standardizer (z-score), fitted on the
/// training split and applied to all splits.
class FeatureNormalizer {
 public:
  /// Fits mean/std per column over the rows of all matrices.
  void Fit(const std::vector<const Matrix*>& feature_matrices);

  /// (x - mean) / std per column; columns with zero variance pass through
  /// centered only.
  Matrix Apply(const Matrix& features) const;

  bool fitted() const { return fitted_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  /// Restores a previously fitted state (checkpoint loading).
  void Restore(std::vector<double> means, std::vector<double> stds);

 private:
  bool fitted_ = false;
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace features
}  // namespace dbg4eth

#endif  // DBG4ETH_FEATURES_NODE_FEATURES_H_
