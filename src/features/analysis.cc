#include "features/analysis.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace dbg4eth {
namespace features {

Matrix FeatureCorrelationMatrix(const std::vector<const Matrix*>& features) {
  DBG4ETH_CHECK(!features.empty());
  const int dim = features.front()->cols();
  // Flatten columns.
  std::vector<std::vector<double>> cols(dim);
  for (const Matrix* m : features) {
    DBG4ETH_CHECK_EQ(m->cols(), dim);
    for (int r = 0; r < m->rows(); ++r) {
      for (int c = 0; c < dim; ++c) cols[c].push_back(m->At(r, c));
    }
  }
  Matrix corr(dim, dim);
  for (int i = 0; i < dim; ++i) {
    corr.At(i, i) = 1.0;
    for (int j = i + 1; j < dim; ++j) {
      const double rho = PearsonCorrelation(cols[i], cols[j]);
      corr.At(i, j) = rho;
      corr.At(j, i) = rho;
    }
  }
  return corr;
}

std::vector<CategoryFeatures> ComputeCategoryFeatures(
    const std::vector<const Matrix*>& features) {
  DBG4ETH_CHECK(!features.empty());
  const int dim = features.front()->cols();
  DBG4ETH_CHECK_EQ(dim, kFeatureDim);

  int64_t total_rows = 0;
  for (const Matrix* m : features) total_rows += m->rows();

  // Per-dimension min-max over the population.
  std::vector<double> min_v(dim, 1e300), max_v(dim, -1e300);
  for (const Matrix* m : features) {
    for (int r = 0; r < m->rows(); ++r) {
      for (int c = 0; c < dim; ++c) {
        min_v[c] = std::min(min_v[c], m->At(r, c));
        max_v[c] = std::max(max_v[c], m->At(r, c));
      }
    }
  }

  auto norm_dim = [&](double v, int c) {
    const double span = max_v[c] - min_v[c];
    return span > 0.0 ? (v - min_v[c]) / span : 0.0;
  };

  std::vector<CategoryFeatures> out;
  out.reserve(total_rows);
  for (const Matrix* m : features) {
    for (int r = 0; r < m->rows(); ++r) {
      double sums[4] = {0, 0, 0, 0};
      int counts[4] = {0, 0, 0, 0};
      for (int c = 0; c < dim; ++c) {
        const int cat = static_cast<int>(CategoryOf(c));
        sums[cat] += norm_dim(m->At(r, c), c);
        ++counts[cat];
      }
      CategoryFeatures cf;
      cf.saf = sums[0] / counts[0];
      cf.raf = sums[1] / counts[1];
      cf.tff = sums[2] / counts[2];
      cf.cf = sums[3] / counts[3];
      out.push_back(cf);
    }
  }

  // Second min-max pass over the four aggregates.
  auto minmax_field = [&](auto getter, auto setter) {
    double lo = 1e300, hi = -1e300;
    for (const auto& cf : out) {
      lo = std::min(lo, getter(cf));
      hi = std::max(hi, getter(cf));
    }
    const double span = hi - lo;
    for (auto& cf : out) {
      setter(cf, span > 0.0 ? (getter(cf) - lo) / span : 0.0);
    }
  };
  minmax_field([](const CategoryFeatures& c) { return c.saf; },
               [](CategoryFeatures& c, double v) { c.saf = v; });
  minmax_field([](const CategoryFeatures& c) { return c.raf; },
               [](CategoryFeatures& c, double v) { c.raf = v; });
  minmax_field([](const CategoryFeatures& c) { return c.tff; },
               [](CategoryFeatures& c, double v) { c.tff = v; });
  minmax_field([](const CategoryFeatures& c) { return c.cf; },
               [](CategoryFeatures& c, double v) { c.cf = v; });
  return out;
}

}  // namespace features
}  // namespace dbg4eth
