#include "features/node_features.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace features {

namespace {

constexpr double kWeiPerEth = 1e18;

}  // namespace

const std::array<std::string, kFeatureDim>& FeatureNames() {
  static const std::array<std::string, kFeatureDim> kNames = {
      "NTS",     "STV",   "SAV",   "min_STI", "max_STI",
      "NTR",     "RTV",   "RAV",   "min_RTI", "max_RTI",
      "SETF",    "RETF",  "SAETF", "RAETF",   "NC"};
  return kNames;
}

FeatureCategory CategoryOf(int feature_index) {
  DBG4ETH_CHECK(feature_index >= 0 && feature_index < kFeatureDim);
  if (feature_index <= kMaxSti) return FeatureCategory::kSender;
  if (feature_index <= kMaxRti) return FeatureCategory::kReceiver;
  if (feature_index <= kRaetf) return FeatureCategory::kFee;
  return FeatureCategory::kContract;
}

Matrix ComputeNodeFeatures(const eth::TxSubgraph& subgraph) {
  const int n = subgraph.num_nodes();
  Matrix f(n, kFeatureDim);
  // Transactions are sorted by timestamp, so per-node send/receive
  // timestamp sequences collected in order are already sorted.
  std::vector<std::vector<double>> send_times(n);
  std::vector<std::vector<double>> recv_times(n);

  for (const eth::LocalTransaction& tx : subgraph.txs) {
    const double fee = tx.gas_price * tx.gas_used / kWeiPerEth;
    // Sender side.
    f.At(tx.src, kNts) += 1.0;
    f.At(tx.src, kStv) += tx.value;
    f.At(tx.src, kSetf) += fee;
    send_times[tx.src].push_back(tx.timestamp);
    // Receiver side.
    f.At(tx.dst, kNtr) += 1.0;
    f.At(tx.dst, kRtv) += tx.value;
    f.At(tx.dst, kRetf) += fee;
    recv_times[tx.dst].push_back(tx.timestamp);
    // Contract feature: contract calls involving either endpoint.
    if (tx.is_contract_call) {
      f.At(tx.src, kNc) += 1.0;
      if (tx.dst != tx.src) f.At(tx.dst, kNc) += 1.0;
    }
  }

  for (int i = 0; i < n; ++i) {
    const double nts = f.At(i, kNts);
    const double ntr = f.At(i, kNtr);
    if (nts > 0) {
      f.At(i, kSav) = f.At(i, kStv) / nts;
      f.At(i, kSaetf) = f.At(i, kSetf) / nts;
    }
    if (ntr > 0) {
      f.At(i, kRav) = f.At(i, kRtv) / ntr;
      f.At(i, kRaetf) = f.At(i, kRetf) / ntr;
    }
    auto intervals = [](const std::vector<double>& times, double* min_out,
                        double* max_out) {
      if (times.size() < 2) return;
      double min_v = times[1] - times[0];
      double max_v = min_v;
      for (size_t k = 1; k + 1 < times.size(); ++k) {
        const double d = times[k + 1] - times[k];
        min_v = std::min(min_v, d);
        max_v = std::max(max_v, d);
      }
      *min_out = std::fabs(min_v);
      *max_out = std::fabs(max_v);
    };
    double min_sti = 0.0, max_sti = 0.0, min_rti = 0.0, max_rti = 0.0;
    intervals(send_times[i], &min_sti, &max_sti);
    intervals(recv_times[i], &min_rti, &max_rti);
    f.At(i, kMinSti) = min_sti;
    f.At(i, kMaxSti) = max_sti;
    f.At(i, kMinRti) = min_rti;
    f.At(i, kMaxRti) = max_rti;
  }
  return f;
}

Matrix LogScaleFeatures(const Matrix& features) {
  Matrix out = features;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out.At(r, c) = std::log1p(std::max(0.0, out.At(r, c)));
    }
  }
  return out;
}

void FeatureNormalizer::Fit(
    const std::vector<const Matrix*>& feature_matrices) {
  DBG4ETH_CHECK(!feature_matrices.empty());
  const int dim = feature_matrices.front()->cols();
  means_.assign(dim, 0.0);
  stds_.assign(dim, 0.0);
  int64_t total_rows = 0;
  for (const Matrix* m : feature_matrices) {
    DBG4ETH_CHECK_EQ(m->cols(), dim);
    total_rows += m->rows();
    for (int r = 0; r < m->rows(); ++r) {
      for (int c = 0; c < dim; ++c) means_[c] += m->At(r, c);
    }
  }
  DBG4ETH_CHECK_GT(total_rows, 0);
  for (int c = 0; c < dim; ++c) means_[c] /= static_cast<double>(total_rows);
  for (const Matrix* m : feature_matrices) {
    for (int r = 0; r < m->rows(); ++r) {
      for (int c = 0; c < dim; ++c) {
        const double d = m->At(r, c) - means_[c];
        stds_[c] += d * d;
      }
    }
  }
  for (int c = 0; c < dim; ++c) {
    stds_[c] = std::sqrt(stds_[c] / static_cast<double>(total_rows));
  }
  fitted_ = true;
}

void FeatureNormalizer::Restore(std::vector<double> means,
                                std::vector<double> stds) {
  DBG4ETH_CHECK_EQ(means.size(), stds.size());
  means_ = std::move(means);
  stds_ = std::move(stds);
  fitted_ = true;
}

Matrix FeatureNormalizer::Apply(const Matrix& features) const {
  DBG4ETH_CHECK(fitted_);
  DBG4ETH_CHECK_EQ(features.cols(), static_cast<int>(means_.size()));
  Matrix out = features;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      out.At(r, c) -= means_[c];
      if (stds_[c] > 1e-12) out.At(r, c) /= stds_[c];
    }
  }
  return out;
}

}  // namespace features
}  // namespace dbg4eth
