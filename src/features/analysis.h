#ifndef DBG4ETH_FEATURES_ANALYSIS_H_
#define DBG4ETH_FEATURES_ANALYSIS_H_

#include <vector>

#include "features/node_features.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace features {

/// Pearson correlation matrix (15 x 15) between the feature columns over
/// all rows of the given matrices (paper Fig. 4).
Matrix FeatureCorrelationMatrix(const std::vector<const Matrix*>& features);

/// \brief Row of the paper's Fig. 5 scatter data: the four account category
/// features of one node.
struct CategoryFeatures {
  double saf = 0.0;  ///< Sender account feature.
  double raf = 0.0;  ///< Receiver account feature.
  double tff = 0.0;  ///< Transaction fee feature.
  double cf = 0.0;   ///< Contract feature.
};

/// Computes category features per node: each of the 15 dims is min-max
/// normalized over the population, dims are averaged within their Table I
/// category, and the four aggregates are min-max normalized again
/// (Section V-B1). `features` rows from all graphs are treated as one
/// population; the result is parallel to the concatenated rows.
std::vector<CategoryFeatures> ComputeCategoryFeatures(
    const std::vector<const Matrix*>& features);

}  // namespace features
}  // namespace dbg4eth

#endif  // DBG4ETH_FEATURES_ANALYSIS_H_
