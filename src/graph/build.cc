#include "graph/build.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace dbg4eth {
namespace graph {

namespace {

struct MergedEdge {
  double total_value = 0.0;
  int count = 0;
};

}  // namespace

Graph BuildGlobalStaticGraph(const eth::TxSubgraph& subgraph) {
  Graph g;
  g.num_nodes = subgraph.num_nodes();
  g.center = subgraph.center_index;
  g.label = subgraph.label;

  std::map<std::pair<int, int>, MergedEdge> merged;
  for (const eth::LocalTransaction& tx : subgraph.txs) {
    MergedEdge& e = merged[{tx.src, tx.dst}];
    e.total_value += tx.value;
    ++e.count;
  }
  g.edges.reserve(merged.size());
  g.edge_features = Matrix(static_cast<int>(merged.size()), 2);
  int m = 0;
  for (const auto& [key, e] : merged) {
    g.edges.push_back(Edge{key.first, key.second});
    g.edge_features.At(m, 0) = e.total_value;
    g.edge_features.At(m, 1) = static_cast<double>(e.count);
    ++m;
  }
  return g;
}

std::vector<double> EvolutionTimes(const eth::TxSubgraph& subgraph) {
  std::vector<double> times(subgraph.txs.size(), 0.0);
  if (subgraph.txs.empty()) return times;
  double t_min = subgraph.txs.front().timestamp;
  double t_max = subgraph.txs.front().timestamp;
  for (const auto& tx : subgraph.txs) {
    t_min = std::min(t_min, tx.timestamp);
    t_max = std::max(t_max, tx.timestamp);
  }
  const double span = t_max - t_min;
  if (span <= 0.0) return times;
  for (size_t i = 0; i < subgraph.txs.size(); ++i) {
    times[i] = (subgraph.txs[i].timestamp - t_min) / span;
  }
  return times;
}

std::vector<Graph> BuildLocalDynamicGraphs(const eth::TxSubgraph& subgraph,
                                           int num_slices) {
  DBG4ETH_CHECK_GE(num_slices, 1);
  const std::vector<double> times = EvolutionTimes(subgraph);

  std::vector<std::map<std::pair<int, int>, MergedEdge>> merged(num_slices);
  for (size_t i = 0; i < subgraph.txs.size(); ++i) {
    int slice = static_cast<int>(times[i] * num_slices);
    slice = std::min(slice, num_slices - 1);
    MergedEdge& e = merged[slice][{subgraph.txs[i].src, subgraph.txs[i].dst}];
    e.total_value += subgraph.txs[i].value;
    ++e.count;
  }

  std::vector<Graph> slices(num_slices);
  for (int k = 0; k < num_slices; ++k) {
    Graph& g = slices[k];
    g.num_nodes = subgraph.num_nodes();
    g.center = subgraph.center_index;
    g.label = subgraph.label;
    g.edges.reserve(merged[k].size());
    g.edge_features = Matrix(static_cast<int>(merged[k].size()), 1);
    int m = 0;
    for (const auto& [key, e] : merged[k]) {
      g.edges.push_back(Edge{key.first, key.second});
      g.edge_features.At(m, 0) = e.total_value;
      ++m;
    }
  }
  return slices;
}

}  // namespace graph
}  // namespace dbg4eth
