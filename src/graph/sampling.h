#ifndef DBG4ETH_GRAPH_SAMPLING_H_
#define DBG4ETH_GRAPH_SAMPLING_H_

#include "common/result.h"
#include "eth/ledger.h"
#include "eth/types.h"

namespace dbg4eth {
namespace graph {

/// \brief Top-K average-transaction-value neighbor sampling (Eq. 2).
///
/// The paper uses hops = 2 and K = 2000 over the full mainnet crawl; on the
/// synthetic ledger the real degree bound is what caps subgraphs, so K
/// defaults to a value that yields subgraphs of roughly the paper's Table II
/// size (~80-120 nodes).
struct SamplingConfig {
  int hops = 2;
  int top_k = 10;
  int max_nodes = 512;  ///< Hard cap on subgraph size.
};

/// Samples the account-centred transaction subgraph of `center`:
/// iteratively keeps each frontier node's top-K counterparties ranked by
/// average transaction value (ties broken by total value, Eq. 2), then
/// retains every ledger transaction between selected nodes.
///
/// Fails with InvalidArgument for bad config and NotFound when `center`
/// has no transactions at all.
Result<eth::TxSubgraph> SampleSubgraph(const eth::Ledger& ledger,
                                       eth::AccountId center,
                                       const SamplingConfig& config);

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_SAMPLING_H_
