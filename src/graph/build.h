#ifndef DBG4ETH_GRAPH_BUILD_H_
#define DBG4ETH_GRAPH_BUILD_H_

#include <vector>

#include "eth/types.h"
#include "graph/graph.h"

namespace dbg4eth {
namespace graph {

/// Builds the Global Static Graph: transactions from v_i to v_j merge into
/// one edge with feature r_ij = [total value w, tx count t] (Sec. III-B3).
/// Node features are left empty; callers attach them (see features/).
Graph BuildGlobalStaticGraph(const eth::TxSubgraph& subgraph);

/// Normalized transaction evolution time of Eq. 1: (t - t_min)/(t_max -
/// t_min) over the subgraph's transactions. Returns 0 for all when the
/// subgraph spans a single instant.
std::vector<double> EvolutionTimes(const eth::TxSubgraph& subgraph);

/// Builds the Local Dynamic Graph: the subgraph's transactions are split
/// into `num_slices` discrete-time graphs by evolution time; per slice,
/// interactions merge into edges with feature [w^k]. Every slice shares the
/// node set (and later the node feature matrix) of the subgraph.
std::vector<Graph> BuildLocalDynamicGraphs(const eth::TxSubgraph& subgraph,
                                           int num_slices);

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_BUILD_H_
