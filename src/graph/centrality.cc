#include "graph/centrality.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace graph {

std::vector<double> DegreeCentrality(const Graph& g) {
  std::vector<double> c(g.num_nodes, 0.0);
  const auto deg = g.UndirectedDegrees();
  const double denom = g.num_nodes > 1 ? g.num_nodes - 1.0 : 1.0;
  for (int i = 0; i < g.num_nodes; ++i) {
    c[i] = deg[i] / denom;
  }
  return c;
}

std::vector<double> EigenvectorCentrality(const Graph& g, int max_iters,
                                          double tol) {
  const int n = g.num_nodes;
  const Matrix adj = g.DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) acc += adj.At(i, j) * x[j];
      next[i] = acc;
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm <= 0.0) break;
    double delta = 0.0;
    for (int i = 0; i < n; ++i) {
      next[i] /= norm;
      delta = std::max(delta, std::fabs(next[i] - x[i]));
    }
    x = next;
    if (delta < tol) break;
  }
  return x;
}

std::vector<double> PageRankCentrality(const Graph& g, double damping,
                                       int max_iters, double tol) {
  const int n = g.num_nodes;
  DBG4ETH_CHECK_GT(n, 0);
  const Matrix adj = g.DenseAdjacency(/*symmetric=*/true, /*self_loops=*/false);
  std::vector<double> out_weight(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) out_weight[i] += adj.At(i, j);
  }
  std::vector<double> pr(n, 1.0 / n);
  std::vector<double> next(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    double dangling = 0.0;
    for (int i = 0; i < n; ++i) {
      if (out_weight[i] <= 0.0) dangling += pr[i];
    }
    for (int i = 0; i < n; ++i) {
      double acc = 0.0;
      for (int j = 0; j < n; ++j) {
        if (out_weight[j] > 0.0) {
          acc += adj.At(j, i) / out_weight[j] * pr[j];
        }
      }
      next[i] = (1.0 - damping) / n + damping * (acc + dangling / n);
    }
    double delta = 0.0;
    for (int i = 0; i < n; ++i) delta += std::fabs(next[i] - pr[i]);
    pr = next;
    if (delta < tol) break;
  }
  return pr;
}

std::vector<double> NodeCentrality(const Graph& g,
                                   CentralityMeasure measure) {
  switch (measure) {
    case CentralityMeasure::kDegree:
      return DegreeCentrality(g);
    case CentralityMeasure::kEigenvector:
      return EigenvectorCentrality(g);
    case CentralityMeasure::kPageRank:
      return PageRankCentrality(g);
  }
  return DegreeCentrality(g);
}

std::vector<double> EdgeCentrality(const Graph& g,
                                   CentralityMeasure measure) {
  const std::vector<double> node_c = NodeCentrality(g, measure);
  std::vector<double> edge_c(g.edges.size());
  double min_c = 0.0;
  for (size_t m = 0; m < g.edges.size(); ++m) {
    const Edge& e = g.edges[m];
    edge_c[m] = std::log((node_c[e.src] + node_c[e.dst]) / 2.0 + 1e-12);
    min_c = m == 0 ? edge_c[m] : std::min(min_c, edge_c[m]);
  }
  for (double& v : edge_c) v -= min_c;
  return edge_c;
}

}  // namespace graph
}  // namespace dbg4eth
