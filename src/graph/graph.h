#ifndef DBG4ETH_GRAPH_GRAPH_H_
#define DBG4ETH_GRAPH_GRAPH_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace dbg4eth {
namespace graph {

/// Directed merged interaction edge between two subgraph nodes.
struct Edge {
  int src = 0;
  int dst = 0;
};

namespace internal {

/// \brief Lazily-computed adjacency operators of one Graph.
///
/// Every trainer epoch used to rebuild the same O(N^2) normalized
/// adjacency / attention mask from scratch per forward pass; this memoizes
/// them once per graph. Thread-safe: the mutex guards lazy initialization,
/// and entries are immutable once built, so concurrent trainer threads can
/// share the returned references.
///
/// Copying (or moving) a cache yields a cold cache: the new owner's graph
/// may diverge from the source afterwards, and recomputing is always
/// correct. This also keeps Graph cheaply movable despite the mutex.
class AdjacencyCache {
 public:
  AdjacencyCache() = default;
  AdjacencyCache(const AdjacencyCache&) {}
  AdjacencyCache& operator=(const AdjacencyCache&) {
    Reset();
    return *this;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu);
    normalized.reset();
    normalized_sparse.reset();
    attention_mask.reset();
    attention_mask_sparse.reset();
    weighted.clear();
    weighted_sparse.clear();
  }

  mutable std::mutex mu;
  mutable std::optional<Matrix> normalized;
  mutable std::shared_ptr<const SparseMatrix> normalized_sparse;
  mutable std::optional<Matrix> attention_mask;
  mutable std::shared_ptr<const SparseMatrix> attention_mask_sparse;
  mutable std::map<int, Matrix> weighted;  ///< keyed by value column
  mutable std::map<int, std::shared_ptr<const SparseMatrix>> weighted_sparse;
};

}  // namespace internal

/// \brief Account interaction graph: the input of the GNN encoders.
///
/// For the Global Static Graph (GSG) the edge feature matrix holds
/// [total value w, transaction count t] per merged edge; for a Local
/// Dynamic Graph (LDG) time slice it holds [w^k] (Section III-B3).
///
/// The derived adjacency operators (NormalizedAdjacency, AttentionMask,
/// WeightedAdjacency) are cached on first use. Code that mutates
/// `num_nodes`, `edges`, or `edge_features` after a cached accessor has
/// run must call InvalidateAdjacencyCache(); mutating `node_features`
/// alone (e.g. feature standardization) leaves the caches valid — they
/// are derived from the edge structure only.
struct Graph {
  int num_nodes = 0;
  std::vector<Edge> edges;
  Matrix node_features;  ///< num_nodes x d1 (may be empty until attached).
  Matrix edge_features;  ///< edges.size() x d2.
  int center = 0;        ///< Local index of the target account.
  int label = 0;         ///< Binary task label.

  int num_edges() const { return static_cast<int>(edges.size()); }

  /// Dense adjacency with 1.0 at connected pairs. `symmetric` unions both
  /// directions (GNNs on account graphs treat interaction as symmetric
  /// message passing); `self_loops` adds the identity. Not cached.
  Matrix DenseAdjacency(bool symmetric = true, bool self_loops = false) const;

  /// Symmetric GCN propagation matrix D^{-1/2} (A + I) D^{-1/2}. Cached.
  const Matrix& NormalizedAdjacency() const;

  /// NormalizedAdjacency in CSR form for SpMM message passing. Cached; the
  /// shared_ptr lets autograd tape nodes outlive the Graph.
  std::shared_ptr<const SparseMatrix> NormalizedAdjacencySparse() const;

  /// Adjacency + self loops, used as the attention support mask for GAT.
  /// Cached.
  const Matrix& AttentionMask() const;

  /// AttentionMask in CSR form: the support pattern for mask-sparse
  /// attention products. Cached.
  std::shared_ptr<const SparseMatrix> AttentionMaskSparse() const;

  /// Value-weighted adjacency: log1p(edge value) at connected pairs,
  /// symmetrized, with self loops of weight 1 and row normalization.
  /// `value_column` selects the edge feature column holding the value.
  /// Cached per column.
  const Matrix& WeightedAdjacency(int value_column = 0) const;

  /// WeightedAdjacency in CSR form for SpMM message passing (the LDG
  /// slice-topology path). Cached per column.
  std::shared_ptr<const SparseMatrix> WeightedAdjacencySparse(
      int value_column = 0) const;

  /// Drops all cached adjacency operators. Call after mutating the edge
  /// structure of a graph whose cached accessors have already run.
  void InvalidateAdjacencyCache() { adjacency_cache_.Reset(); }

  /// Undirected degree (in + out, counting each merged edge once).
  std::vector<int> UndirectedDegrees() const;

  /// Uncached computation behind WeightedAdjacency.
  Matrix ComputeWeightedAdjacency(int value_column) const;

  /// Cache member is public to keep Graph an aggregate; treat as private.
  internal::AdjacencyCache adjacency_cache_;
};

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_GRAPH_H_
