#ifndef DBG4ETH_GRAPH_GRAPH_H_
#define DBG4ETH_GRAPH_GRAPH_H_

#include <vector>

#include "tensor/matrix.h"

namespace dbg4eth {
namespace graph {

/// Directed merged interaction edge between two subgraph nodes.
struct Edge {
  int src = 0;
  int dst = 0;
};

/// \brief Account interaction graph: the input of the GNN encoders.
///
/// For the Global Static Graph (GSG) the edge feature matrix holds
/// [total value w, transaction count t] per merged edge; for a Local
/// Dynamic Graph (LDG) time slice it holds [w^k] (Section III-B3).
struct Graph {
  int num_nodes = 0;
  std::vector<Edge> edges;
  Matrix node_features;  ///< num_nodes x d1 (may be empty until attached).
  Matrix edge_features;  ///< edges.size() x d2.
  int center = 0;        ///< Local index of the target account.
  int label = 0;         ///< Binary task label.

  int num_edges() const { return static_cast<int>(edges.size()); }

  /// Dense adjacency with 1.0 at connected pairs. `symmetric` unions both
  /// directions (GNNs on account graphs treat interaction as symmetric
  /// message passing); `self_loops` adds the identity.
  Matrix DenseAdjacency(bool symmetric = true, bool self_loops = false) const;

  /// Symmetric GCN propagation matrix D^{-1/2} (A + I) D^{-1/2}.
  Matrix NormalizedAdjacency() const;

  /// Adjacency + self loops, used as the attention support mask for GAT.
  Matrix AttentionMask() const;

  /// Value-weighted adjacency: log1p(edge value) at connected pairs,
  /// symmetrized, with self loops of weight 1 and row normalization.
  /// `value_column` selects the edge feature column holding the value.
  Matrix WeightedAdjacency(int value_column = 0) const;

  /// Undirected degree (in + out, counting each merged edge once).
  std::vector<int> UndirectedDegrees() const;
};

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_GRAPH_H_
