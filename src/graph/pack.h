#ifndef DBG4ETH_GRAPH_PACK_H_
#define DBG4ETH_GRAPH_PACK_H_

#include <memory>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/sparse.h"

namespace dbg4eth {
namespace graph {

/// \brief Node-offset bookkeeping of a block-diagonal micro-batch.
///
/// The inference fast path scores a micro-batch of sampled subgraphs with
/// one fused forward by packing them into a single disjoint-union graph:
/// block b's nodes occupy packed rows [begin(b), end(b)), its adjacency
/// (or attention support) becomes a diagonal block of one big CSR
/// operator, and its node features a contiguous row range of one stacked
/// matrix. Because every operator is block-diagonal, each block's rows of
/// any packed product equal that block's solo product bit for bit; the
/// per-graph readouts then slice their row ranges back out.
struct PackedBlocks {
  int total_nodes = 0;
  /// Size num_blocks() + 1; block b spans [node_offsets[b],
  /// node_offsets[b + 1]).
  std::vector<int> node_offsets;

  int num_blocks() const {
    return static_cast<int>(node_offsets.empty() ? 0
                                                 : node_offsets.size() - 1);
  }
  int begin(int b) const { return node_offsets[b]; }
  int end(int b) const { return node_offsets[b + 1]; }
};

/// Offsets for blocks with the given node counts (all must be > 0).
PackedBlocks MakePackedBlocks(const std::vector<int>& block_nodes);

/// Disjoint-union (block-diagonal) concatenation of per-graph square CSR
/// operators: block b's rows and columns both shift by pack.begin(b).
/// Values are copied verbatim, so packed SpMM / masked products reproduce
/// the per-block solo results exactly. Each blocks[b] must be
/// (end(b)-begin(b)) square.
std::shared_ptr<const SparseMatrix> ConcatBlockDiagonal(
    const PackedBlocks& pack,
    const std::vector<std::shared_ptr<const SparseMatrix>>& blocks);

/// Vertically stacks per-graph node-feature matrices (equal column
/// counts) into one (sum of rows) x cols matrix.
Matrix StackBlockRows(const std::vector<const Matrix*>& blocks);

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_PACK_H_
