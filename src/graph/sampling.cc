#include "graph/sampling.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dbg4eth {
namespace graph {

namespace {

struct PeerStats {
  double total_value = 0.0;
  int count = 0;
  double avg() const { return count > 0 ? total_value / count : 0.0; }
};

/// Counterparty aggregate for one account, built from its incident txs.
std::unordered_map<eth::AccountId, PeerStats> CollectPeers(
    const eth::Ledger& ledger, eth::AccountId node) {
  std::unordered_map<eth::AccountId, PeerStats> peers;
  for (int idx : ledger.TransactionsOf(node)) {
    const eth::Transaction& tx = ledger.transactions()[idx];
    const eth::AccountId peer = tx.from == node ? tx.to : tx.from;
    if (peer == node) continue;
    PeerStats& st = peers[peer];
    st.total_value += tx.value;
    ++st.count;
  }
  return peers;
}

}  // namespace

Result<eth::TxSubgraph> SampleSubgraph(const eth::Ledger& ledger,
                                       eth::AccountId center,
                                       const SamplingConfig& config) {
  if (config.hops < 1 || config.top_k < 1 || config.max_nodes < 2) {
    return Status::InvalidArgument("invalid sampling config");
  }
  if (center < 0 ||
      center >= static_cast<eth::AccountId>(ledger.accounts().size())) {
    return Status::InvalidArgument("center id out of range");
  }
  if (ledger.TransactionsOf(center).empty()) {
    return Status::NotFound("center account has no transactions");
  }

  std::vector<eth::AccountId> nodes = {center};
  std::unordered_set<eth::AccountId> selected = {center};
  std::vector<eth::AccountId> frontier = {center};

  for (int hop = 0; hop < config.hops; ++hop) {
    std::vector<eth::AccountId> next_frontier;
    for (eth::AccountId v : frontier) {
      auto peers = CollectPeers(ledger, v);
      // Rank peers by average transaction value, ties by total value
      // (Section III-B1).
      std::vector<std::pair<eth::AccountId, PeerStats>> ranked(peers.begin(),
                                                               peers.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second.avg() != b.second.avg()) {
                    return a.second.avg() > b.second.avg();
                  }
                  if (a.second.total_value != b.second.total_value) {
                    return a.second.total_value > b.second.total_value;
                  }
                  return a.first < b.first;
                });
      int taken = 0;
      for (const auto& [peer, stats] : ranked) {
        if (taken >= config.top_k) break;
        ++taken;  // Existing members count toward the per-node budget.
        if (selected.count(peer)) continue;
        if (static_cast<int>(nodes.size()) >= config.max_nodes) break;
        selected.insert(peer);
        nodes.push_back(peer);
        next_frontier.push_back(peer);
      }
      if (static_cast<int>(nodes.size()) >= config.max_nodes) break;
    }
    frontier = std::move(next_frontier);
    if (frontier.empty()) break;
  }

  // Local index map.
  std::unordered_map<eth::AccountId, int> local;
  local.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    local[nodes[i]] = static_cast<int>(i);
  }

  // Induced transactions: every ledger tx with both endpoints selected.
  eth::TxSubgraph sub;
  sub.nodes = nodes;
  sub.center_index = 0;
  sub.center_class = ledger.accounts()[center].cls;
  sub.is_contract.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    sub.is_contract[i] =
        ledger.accounts()[nodes[i]].kind == eth::AccountKind::kContract;
  }
  std::unordered_set<int> seen_tx;
  for (eth::AccountId v : nodes) {
    for (int idx : ledger.TransactionsOf(v)) {
      if (!seen_tx.insert(idx).second) continue;
      const eth::Transaction& tx = ledger.transactions()[idx];
      auto from_it = local.find(tx.from);
      auto to_it = local.find(tx.to);
      if (from_it == local.end() || to_it == local.end()) continue;
      eth::LocalTransaction lt;
      lt.src = from_it->second;
      lt.dst = to_it->second;
      lt.value = tx.value;
      lt.timestamp = tx.timestamp;
      lt.gas_price = tx.gas_price;
      lt.gas_used = tx.gas_used;
      lt.is_contract_call = tx.is_contract_call;
      sub.txs.push_back(lt);
    }
  }
  std::sort(sub.txs.begin(), sub.txs.end(),
            [](const eth::LocalTransaction& a, const eth::LocalTransaction& b) {
              return a.timestamp < b.timestamp;
            });
  return sub;
}

}  // namespace graph
}  // namespace dbg4eth
