#include "graph/sampling.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace dbg4eth {
namespace graph {

namespace {

struct PeerStats {
  double total_value = 0.0;
  int count = 0;
  double avg() const { return count > 0 ? total_value / count : 0.0; }
};

/// Per-thread scratch reused across SampleSubgraph calls. The cold serving
/// path samples one subgraph per request, and the per-call hash sets
/// (selected nodes, local index map, induced-transaction dedup, per-node
/// peer aggregation) dominated its cost: a 48-node neighborhood around a
/// high-degree account touches thousands of incident transactions, each
/// paying hash inserts and lookups. Epoch-stamped marker arrays over the
/// ledger's account and transaction id spaces make every membership test
/// one indexed load; bumping the epoch empties a "set" in O(1), so the
/// arrays are reused across calls without clearing. Results are identical
/// to the hash-based version — only the lookup structure changed.
struct SamplingScratch {
  std::vector<uint64_t> selected_epoch;  ///< Account id -> in selected set.
  std::vector<uint64_t> local_epoch;     ///< Account id -> has local index.
  std::vector<int> local_index;
  std::vector<uint64_t> peer_epoch;  ///< Account id -> seen by CollectPeers.
  std::vector<int> peer_slot;
  std::vector<uint64_t> tx_epoch;  ///< Tx index -> already induced.
  uint64_t epoch = 0;

  /// Grows the marker arrays to the ledger's id spaces. Stale entries keep
  /// old epochs (never equal to a fresh one), so no clearing is needed.
  void Prepare(size_t num_accounts, size_t num_txs) {
    if (selected_epoch.size() < num_accounts) {
      selected_epoch.resize(num_accounts, 0);
      local_epoch.resize(num_accounts, 0);
      local_index.resize(num_accounts, 0);
      peer_epoch.resize(num_accounts, 0);
      peer_slot.resize(num_accounts, 0);
    }
    if (tx_epoch.size() < num_txs) tx_epoch.resize(num_txs, 0);
  }
};

SamplingScratch* ThreadScratch() {
  thread_local SamplingScratch scratch;
  return &scratch;
}

/// Counterparty aggregates for one account in first-touch order (the order
/// does not matter downstream: the ranking comparator is a strict total
/// order with the account id as final tiebreak).
std::vector<std::pair<eth::AccountId, PeerStats>> CollectPeers(
    const eth::Ledger& ledger, eth::AccountId node,
    SamplingScratch* scratch) {
  const uint64_t epoch = ++scratch->epoch;
  std::vector<std::pair<eth::AccountId, PeerStats>> peers;
  for (int idx : ledger.TransactionsOf(node)) {
    const eth::Transaction& tx = ledger.transactions()[idx];
    const eth::AccountId peer = tx.from == node ? tx.to : tx.from;
    if (peer == node) continue;
    if (scratch->peer_epoch[peer] != epoch) {
      scratch->peer_epoch[peer] = epoch;
      scratch->peer_slot[peer] = static_cast<int>(peers.size());
      peers.push_back({peer, PeerStats{}});
    }
    PeerStats& st = peers[scratch->peer_slot[peer]].second;
    st.total_value += tx.value;
    ++st.count;
  }
  return peers;
}

}  // namespace

Result<eth::TxSubgraph> SampleSubgraph(const eth::Ledger& ledger,
                                       eth::AccountId center,
                                       const SamplingConfig& config) {
  if (config.hops < 1 || config.top_k < 1 || config.max_nodes < 2) {
    return Status::InvalidArgument("invalid sampling config");
  }
  if (center < 0 ||
      center >= static_cast<eth::AccountId>(ledger.accounts().size())) {
    return Status::InvalidArgument("center id out of range");
  }
  if (ledger.TransactionsOf(center).empty()) {
    return Status::NotFound("center account has no transactions");
  }

  SamplingScratch* scratch = ThreadScratch();
  scratch->Prepare(ledger.accounts().size(), ledger.transactions().size());

  std::vector<eth::AccountId> nodes = {center};
  const uint64_t selected = ++scratch->epoch;
  scratch->selected_epoch[center] = selected;
  std::vector<eth::AccountId> frontier = {center};

  for (int hop = 0; hop < config.hops; ++hop) {
    std::vector<eth::AccountId> next_frontier;
    for (eth::AccountId v : frontier) {
      auto ranked = CollectPeers(ledger, v, scratch);
      // Rank peers by average transaction value, ties by total value
      // (Section III-B1).
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second.avg() != b.second.avg()) {
                    return a.second.avg() > b.second.avg();
                  }
                  if (a.second.total_value != b.second.total_value) {
                    return a.second.total_value > b.second.total_value;
                  }
                  return a.first < b.first;
                });
      int taken = 0;
      for (const auto& [peer, stats] : ranked) {
        if (taken >= config.top_k) break;
        ++taken;  // Existing members count toward the per-node budget.
        if (scratch->selected_epoch[peer] == selected) continue;
        if (static_cast<int>(nodes.size()) >= config.max_nodes) break;
        scratch->selected_epoch[peer] = selected;
        nodes.push_back(peer);
        next_frontier.push_back(peer);
      }
      if (static_cast<int>(nodes.size()) >= config.max_nodes) break;
    }
    frontier = std::move(next_frontier);
    if (frontier.empty()) break;
  }

  // Local index map.
  const uint64_t local = ++scratch->epoch;
  for (size_t i = 0; i < nodes.size(); ++i) {
    scratch->local_epoch[nodes[i]] = local;
    scratch->local_index[nodes[i]] = static_cast<int>(i);
  }

  // Induced transactions: every ledger tx with both endpoints selected.
  eth::TxSubgraph sub;
  sub.nodes = nodes;
  sub.center_index = 0;
  sub.center_class = ledger.accounts()[center].cls;
  sub.is_contract.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    sub.is_contract[i] =
        ledger.accounts()[nodes[i]].kind == eth::AccountKind::kContract;
  }
  const uint64_t seen_tx = ++scratch->epoch;
  for (eth::AccountId v : nodes) {
    for (int idx : ledger.TransactionsOf(v)) {
      if (scratch->tx_epoch[idx] == seen_tx) continue;
      scratch->tx_epoch[idx] = seen_tx;
      const eth::Transaction& tx = ledger.transactions()[idx];
      if (scratch->local_epoch[tx.from] != local ||
          scratch->local_epoch[tx.to] != local) {
        continue;
      }
      eth::LocalTransaction lt;
      lt.src = scratch->local_index[tx.from];
      lt.dst = scratch->local_index[tx.to];
      lt.value = tx.value;
      lt.timestamp = tx.timestamp;
      lt.gas_price = tx.gas_price;
      lt.gas_used = tx.gas_used;
      lt.is_contract_call = tx.is_contract_call;
      sub.txs.push_back(lt);
    }
  }
  std::sort(sub.txs.begin(), sub.txs.end(),
            [](const eth::LocalTransaction& a, const eth::LocalTransaction& b) {
              return a.timestamp < b.timestamp;
            });
  return sub;
}

}  // namespace graph
}  // namespace dbg4eth
