#include "graph/pack.h"

#include <cstring>

#include "common/logging.h"

namespace dbg4eth {
namespace graph {

PackedBlocks MakePackedBlocks(const std::vector<int>& block_nodes) {
  PackedBlocks pack;
  pack.node_offsets.reserve(block_nodes.size() + 1);
  pack.node_offsets.push_back(0);
  for (int n : block_nodes) {
    DBG4ETH_CHECK_GT(n, 0);
    pack.total_nodes += n;
    pack.node_offsets.push_back(pack.total_nodes);
  }
  return pack;
}

std::shared_ptr<const SparseMatrix> ConcatBlockDiagonal(
    const PackedBlocks& pack,
    const std::vector<std::shared_ptr<const SparseMatrix>>& blocks) {
  DBG4ETH_CHECK_EQ(static_cast<int>(blocks.size()), pack.num_blocks());
  size_t nnz = 0;
  for (const auto& block : blocks) {
    DBG4ETH_CHECK(block != nullptr);
    nnz += static_cast<size_t>(block->nnz());
  }
  std::vector<int> row_offsets;
  row_offsets.reserve(pack.total_nodes + 1);
  row_offsets.push_back(0);
  std::vector<int> col_indices;
  col_indices.reserve(nnz);
  std::vector<double> values;
  values.reserve(nnz);
  for (int b = 0; b < pack.num_blocks(); ++b) {
    const SparseMatrix& block = *blocks[b];
    const int shift = pack.begin(b);
    const int n = pack.end(b) - shift;
    DBG4ETH_CHECK_EQ(block.rows(), n);
    DBG4ETH_CHECK_EQ(block.cols(), n);
    const std::vector<int>& offsets = block.row_offsets();
    const std::vector<int>& cols = block.col_indices();
    const std::vector<double>& vals = block.values();
    for (int r = 0; r < n; ++r) {
      for (int e = offsets[r]; e < offsets[r + 1]; ++e) {
        col_indices.push_back(cols[e] + shift);
        values.push_back(vals[e]);
      }
      row_offsets.push_back(static_cast<int>(values.size()));
    }
  }
  return std::make_shared<const SparseMatrix>(
      SparseMatrix::FromCsr(pack.total_nodes, pack.total_nodes,
                            std::move(row_offsets), std::move(col_indices),
                            std::move(values)));
}

Matrix StackBlockRows(const std::vector<const Matrix*>& blocks) {
  DBG4ETH_CHECK(!blocks.empty());
  const int cols = blocks.front()->cols();
  int total_rows = 0;
  for (const Matrix* block : blocks) {
    DBG4ETH_CHECK(block != nullptr);
    DBG4ETH_CHECK_EQ(block->cols(), cols);
    total_rows += block->rows();
  }
  Matrix out(total_rows, cols);
  int off = 0;
  for (const Matrix* block : blocks) {
    if (!block->empty()) {
      std::memcpy(out.RowPtr(off), block->RowPtr(0),
                  block->size() * sizeof(double));
    }
    off += block->rows();
  }
  return out;
}

}  // namespace graph
}  // namespace dbg4eth
