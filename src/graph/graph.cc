#include "graph/graph.h"

#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace graph {

Matrix Graph::DenseAdjacency(bool symmetric, bool self_loops) const {
  Matrix adj(num_nodes, num_nodes);
  for (const Edge& e : edges) {
    DBG4ETH_CHECK(e.src >= 0 && e.src < num_nodes);
    DBG4ETH_CHECK(e.dst >= 0 && e.dst < num_nodes);
    adj.At(e.src, e.dst) = 1.0;
    if (symmetric) adj.At(e.dst, e.src) = 1.0;
  }
  if (self_loops) {
    for (int i = 0; i < num_nodes; ++i) adj.At(i, i) = 1.0;
  }
  return adj;
}

Matrix Graph::NormalizedAdjacency() const {
  Matrix adj = DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
  std::vector<double> inv_sqrt_deg(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    double deg = 0.0;
    for (int j = 0; j < num_nodes; ++j) deg += adj.At(i, j);
    inv_sqrt_deg[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = 0; j < num_nodes; ++j) {
      adj.At(i, j) *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return adj;
}

Matrix Graph::AttentionMask() const {
  return DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
}

Matrix Graph::WeightedAdjacency(int value_column) const {
  Matrix adj(num_nodes, num_nodes);
  for (int m = 0; m < num_edges(); ++m) {
    const Edge& e = edges[m];
    double w = 0.0;
    if (!edge_features.empty()) {
      DBG4ETH_CHECK_LT(value_column, edge_features.cols());
      w = std::log1p(std::max(0.0, edge_features.At(m, value_column)));
    } else {
      w = 1.0;
    }
    adj.At(e.src, e.dst) += w;
    adj.At(e.dst, e.src) += w;
  }
  for (int i = 0; i < num_nodes; ++i) adj.At(i, i) += 1.0;
  // Row normalization keeps propagation scale independent of degree.
  for (int i = 0; i < num_nodes; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < num_nodes; ++j) row_sum += adj.At(i, j);
    if (row_sum > 0.0) {
      for (int j = 0; j < num_nodes; ++j) adj.At(i, j) /= row_sum;
    }
  }
  return adj;
}

std::vector<int> Graph::UndirectedDegrees() const {
  std::vector<int> deg(num_nodes, 0);
  for (const Edge& e : edges) {
    ++deg[e.src];
    if (e.dst != e.src) ++deg[e.dst];
  }
  return deg;
}

}  // namespace graph
}  // namespace dbg4eth
