#include "graph/graph.h"

#include <cmath>

#include "common/logging.h"

namespace dbg4eth {
namespace graph {

Matrix Graph::DenseAdjacency(bool symmetric, bool self_loops) const {
  Matrix adj(num_nodes, num_nodes);
  for (const Edge& e : edges) {
    DBG4ETH_CHECK(e.src >= 0 && e.src < num_nodes);
    DBG4ETH_CHECK(e.dst >= 0 && e.dst < num_nodes);
    adj.At(e.src, e.dst) = 1.0;
    if (symmetric) adj.At(e.dst, e.src) = 1.0;
  }
  if (self_loops) {
    for (int i = 0; i < num_nodes; ++i) adj.At(i, i) = 1.0;
  }
  return adj;
}

namespace {

Matrix ComputeNormalizedAdjacency(const Graph& g) {
  Matrix adj = g.DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
  const int n = g.num_nodes;
  std::vector<double> inv_sqrt_deg(n);
  for (int i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int j = 0; j < n; ++j) deg += adj.At(i, j);
    inv_sqrt_deg[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      adj.At(i, j) *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return adj;
}

}  // namespace

const Matrix& Graph::NormalizedAdjacency() const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (!cache.normalized.has_value()) {
    cache.normalized = ComputeNormalizedAdjacency(*this);
  }
  return *cache.normalized;
}

std::shared_ptr<const SparseMatrix> Graph::NormalizedAdjacencySparse() const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.normalized_sparse == nullptr) {
    if (!cache.normalized.has_value()) {
      cache.normalized = ComputeNormalizedAdjacency(*this);
    }
    cache.normalized_sparse =
        std::make_shared<SparseMatrix>(SparseMatrix::FromDense(*cache.normalized));
  }
  return cache.normalized_sparse;
}

const Matrix& Graph::AttentionMask() const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (!cache.attention_mask.has_value()) {
    cache.attention_mask =
        DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
  }
  return *cache.attention_mask;
}

std::shared_ptr<const SparseMatrix> Graph::AttentionMaskSparse() const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.attention_mask_sparse == nullptr) {
    if (!cache.attention_mask.has_value()) {
      cache.attention_mask =
          DenseAdjacency(/*symmetric=*/true, /*self_loops=*/true);
    }
    cache.attention_mask_sparse = std::make_shared<SparseMatrix>(
        SparseMatrix::FromDense(*cache.attention_mask));
  }
  return cache.attention_mask_sparse;
}

const Matrix& Graph::WeightedAdjacency(int value_column) const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.weighted.find(value_column);
  if (it == cache.weighted.end()) {
    it = cache.weighted.emplace(value_column, ComputeWeightedAdjacency(value_column))
             .first;
  }
  return it->second;
}

std::shared_ptr<const SparseMatrix> Graph::WeightedAdjacencySparse(
    int value_column) const {
  const internal::AdjacencyCache& cache = adjacency_cache_;
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.weighted_sparse.find(value_column);
  if (it == cache.weighted_sparse.end()) {
    auto dense = cache.weighted.find(value_column);
    if (dense == cache.weighted.end()) {
      dense = cache.weighted
                  .emplace(value_column, ComputeWeightedAdjacency(value_column))
                  .first;
    }
    it = cache.weighted_sparse
             .emplace(value_column, std::make_shared<SparseMatrix>(
                                        SparseMatrix::FromDense(dense->second)))
             .first;
  }
  return it->second;
}

Matrix Graph::ComputeWeightedAdjacency(int value_column) const {
  Matrix adj(num_nodes, num_nodes);
  for (int m = 0; m < num_edges(); ++m) {
    const Edge& e = edges[m];
    double w = 0.0;
    if (!edge_features.empty()) {
      DBG4ETH_CHECK_LT(value_column, edge_features.cols());
      w = std::log1p(std::max(0.0, edge_features.At(m, value_column)));
    } else {
      w = 1.0;
    }
    adj.At(e.src, e.dst) += w;
    adj.At(e.dst, e.src) += w;
  }
  for (int i = 0; i < num_nodes; ++i) adj.At(i, i) += 1.0;
  // Row normalization keeps propagation scale independent of degree.
  for (int i = 0; i < num_nodes; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < num_nodes; ++j) row_sum += adj.At(i, j);
    if (row_sum > 0.0) {
      for (int j = 0; j < num_nodes; ++j) adj.At(i, j) /= row_sum;
    }
  }
  return adj;
}

std::vector<int> Graph::UndirectedDegrees() const {
  std::vector<int> deg(num_nodes, 0);
  for (const Edge& e : edges) {
    ++deg[e.src];
    if (e.dst != e.src) ++deg[e.dst];
  }
  return deg;
}

}  // namespace graph
}  // namespace dbg4eth
