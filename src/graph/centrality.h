#ifndef DBG4ETH_GRAPH_CENTRALITY_H_
#define DBG4ETH_GRAPH_CENTRALITY_H_

#include <vector>

#include "graph/graph.h"

namespace dbg4eth {
namespace graph {

/// Node centrality measures used by the adaptive augmentation of the GSG
/// encoder (GCA, Zhu et al. 2021). All treat the graph as undirected.
enum class CentralityMeasure { kDegree, kEigenvector, kPageRank };

/// Undirected degree centrality, normalized by (n - 1).
std::vector<double> DegreeCentrality(const Graph& g);

/// Principal-eigenvector centrality via power iteration on A + I.
std::vector<double> EigenvectorCentrality(const Graph& g,
                                          int max_iters = 100,
                                          double tol = 1e-10);

/// PageRank with the given damping factor.
std::vector<double> PageRankCentrality(const Graph& g, double damping = 0.85,
                                       int max_iters = 100,
                                       double tol = 1e-10);

std::vector<double> NodeCentrality(const Graph& g, CentralityMeasure measure);

/// Edge centrality per GCA: s_e = log((c_u + c_v) / 2), shifted so the
/// minimum is zero. Higher means more important (less likely to be dropped
/// by augmentation).
std::vector<double> EdgeCentrality(const Graph& g, CentralityMeasure measure);

}  // namespace graph
}  // namespace dbg4eth

#endif  // DBG4ETH_GRAPH_CENTRALITY_H_
