#include "obs/export.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/json_util.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace obs {

namespace {

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter:
      return "counter";
    case MetricsRegistry::Kind::kGauge:
      return "gauge";
    case MetricsRegistry::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// Shortest round-trippable rendering of a double (no trailing zeros).
std::string Num(double v) { return StrFormat("%g", v); }

/// `base{existing,le="bound"}` — merges the le label into an existing
/// label string.
std::string BucketLabels(const std::string& labels, double bound) {
  const std::string le =
      std::isinf(bound) ? "+Inf" : Num(bound);
  if (labels.empty()) return "{le=\"" + le + "\"}";
  std::string out = labels;
  out.insert(out.size() - 1, ",le=\"" + le + "\"");
  return out;
}

/// OpenMetrics exemplar suffix: ` # {trace_id="..."} value timestamp`.
/// Appended to a `_bucket` line when the bucket captured an exemplar.
std::string ExemplarSuffix(const Histogram::Exemplar& ex) {
  return " # {trace_id=\"" + EscapeLabelValue(ex.trace_id) + "\"} " +
         Num(ex.value) + " " + StrFormat("%.3f", ex.timestamp_s);
}

}  // namespace

const char* ExpositionContentType(ExpositionFormat format) {
  switch (format) {
    case ExpositionFormat::kOpenMetrics:
      return "application/openmetrics-text; version=1.0.0; charset=utf-8";
    case ExpositionFormat::kPrometheusText:
      break;
  }
  return "text/plain; version=0.0.4; charset=utf-8";
}

void AppendSpanJson(const SpanNode& node, json::JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("name");
  writer->String(node.name);
  writer->Key("start_us");
  writer->Number(node.start_us);
  writer->Key("duration_us");
  writer->Number(node.duration_us);
  if (!node.trace_id.empty()) {
    writer->Key("trace_id");
    writer->String(node.trace_id);
  }
  if (node.error) {
    writer->Key("error");
    writer->Bool(true);
  }
  if (!node.children.empty()) {
    writer->Key("children");
    writer->BeginArray();
    for (const SpanNode& child : node.children) {
      AppendSpanJson(child, writer);
    }
    writer->EndArray();
  }
  writer->EndObject();
}

std::string TextExposition(const MetricsRegistry* registry,
                           ExpositionFormat format) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  const bool openmetrics = format == ExpositionFormat::kOpenMetrics;
  std::string out;
  for (const auto& family : registry->TakeSnapshot()) {
    // OpenMetrics names the counter *family* without the `_total` suffix
    // (the sample line keeps it: `<family>_total`); the classic format
    // uses the full name in both places.
    std::string header_name = family.name;
    constexpr const char kTotal[] = "_total";
    constexpr size_t kTotalLen = sizeof(kTotal) - 1;
    if (openmetrics && family.kind == MetricsRegistry::Kind::kCounter &&
        header_name.size() > kTotalLen &&
        header_name.compare(header_name.size() - kTotalLen, kTotalLen,
                            kTotal) == 0) {
      header_name.resize(header_name.size() - kTotalLen);
    }
    out += "# HELP " + header_name + " " + family.help + "\n";
    out += "# TYPE " + header_name + " " + KindName(family.kind) + "\n";
    for (const auto& inst : family.instruments) {
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          out += family.name + inst.labels + " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       inst.counter_value)) +
                 "\n";
          break;
        case MetricsRegistry::Kind::kGauge:
          out += family.name + inst.labels + " " + Num(inst.gauge_value) +
                 "\n";
          break;
        case MetricsRegistry::Kind::kHistogram: {
          const Histogram::Snapshot& h = inst.histogram;
          uint64_t cumulative = 0;
          for (size_t b = 0; b < h.buckets.size(); ++b) {
            cumulative += h.buckets[b];
            const bool last = b + 1 == h.buckets.size();
            if (h.buckets[b] == 0 && !last) continue;  // Elide empties.
            out += family.name + "_bucket" +
                   BucketLabels(inst.labels, h.upper_bounds[b]) + " " +
                   StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative));
            // Exemplar suffixes are OpenMetrics-only: the 0.0.4 parser
            // rejects a '#' after the sample value.
            if (openmetrics) {
              if (const Histogram::Exemplar* ex =
                      h.ExemplarFor(static_cast<int>(b))) {
                out += ExemplarSuffix(*ex);
              }
            }
            out += "\n";
          }
          out += family.name + "_sum" + inst.labels + " " + Num(h.sum) + "\n";
          out += family.name + "_count" + inst.labels + " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(h.count)) +
                 "\n";
          break;
        }
      }
    }
  }
  if (openmetrics) out += "# EOF\n";
  return out;
}

std::string JsonSnapshot(const MetricsRegistry* registry,
                         const Tracer* tracer) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  if (tracer == nullptr) tracer = Tracer::Global();
  std::string out;
  json::JsonWriter writer(&out);
  writer.BeginObject();
  writer.Key("metrics");
  writer.BeginArray();
  for (const auto& family : registry->TakeSnapshot()) {
    writer.BeginObject();
    writer.Key("name");
    writer.String(family.name);
    writer.Key("kind");
    writer.String(KindName(family.kind));
    writer.Key("help");
    writer.String(family.help);
    writer.Key("instruments");
    writer.BeginArray();
    for (const auto& inst : family.instruments) {
      writer.BeginObject();
      writer.Key("labels");
      writer.String(inst.labels);
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          writer.Key("value");
          writer.UInt(inst.counter_value);
          break;
        case MetricsRegistry::Kind::kGauge:
          writer.Key("value");
          writer.Number(inst.gauge_value);
          break;
        case MetricsRegistry::Kind::kHistogram: {
          const Histogram::Snapshot& h = inst.histogram;
          writer.Key("count");
          writer.UInt(h.count);
          writer.Key("sum");
          writer.Number(h.sum);
          writer.Key("min");
          writer.Number(h.min);
          writer.Key("max");
          writer.Number(h.max);
          writer.Key("p50");
          writer.Number(h.Percentile(0.50));
          writer.Key("p95");
          writer.Number(h.Percentile(0.95));
          writer.Key("p99");
          writer.Number(h.Percentile(0.99));
          if (!h.exemplars.empty()) {
            writer.Key("exemplars");
            writer.BeginArray();
            for (const Histogram::Exemplar& ex : h.exemplars) {
              writer.BeginObject();
              const double bound = h.upper_bounds[static_cast<size_t>(ex.bucket)];
              writer.Key("bucket_le");
              writer.String(std::isinf(bound) ? "+Inf" : Num(bound));
              writer.Key("trace_id");
              writer.String(ex.trace_id);
              writer.Key("value");
              writer.Number(ex.value);
              writer.Key("timestamp_s");
              writer.Number(ex.timestamp_s);
              writer.EndObject();
            }
            writer.EndArray();
          }
          break;
        }
      }
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("spans");
  writer.BeginArray();
  for (const SpanNode& root : tracer->Snapshot()) {
    AppendSpanJson(root, &writer);
  }
  writer.EndArray();
  writer.EndObject();
  out += "\n";
  return out;
}

Status DumpJson(const std::string& path, const MetricsRegistry* registry,
                const Tracer* tracer) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << JsonSnapshot(registry, tracer);
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

std::string SummaryLine(const MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  std::string out = "obs:";
  for (const auto& family : registry->TakeSnapshot()) {
    for (const auto& inst : family.instruments) {
      out += " " + family.name + inst.labels;
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          out += StrFormat("=%llu", static_cast<unsigned long long>(
                                        inst.counter_value));
          break;
        case MetricsRegistry::Kind::kGauge:
          out += "=" + Num(inst.gauge_value);
          break;
        case MetricsRegistry::Kind::kHistogram:
          out += StrFormat(
              "[n=%llu p50=%s p95=%s]",
              static_cast<unsigned long long>(inst.histogram.count),
              Num(inst.histogram.Percentile(0.50)).c_str(),
              Num(inst.histogram.Percentile(0.95)).c_str());
          break;
      }
    }
  }
  return out;
}

StatsLogger::StatsLogger(const StatsLoggerConfig& config) : config_(config) {
  if (config_.registry == nullptr) config_.registry = MetricsRegistry::Global();
  if (!config_.formatter) {
    config_.formatter = [](const MetricsRegistry* r) {
      return SummaryLine(r);
    };
  }
  thread_ = std::thread([this] { Loop(); });
}

StatsLogger::~StatsLogger() { Stop(); }

void StatsLogger::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitOnce();  // Final line: short-lived runs still get one summary.
}

void StatsLogger::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

void StatsLogger::EmitOnce() {
  DBG4ETH_LOG(Info) << config_.formatter(config_.registry);
}

}  // namespace obs
}  // namespace dbg4eth
