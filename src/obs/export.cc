#include "obs/export.h"

#include <chrono>
#include <cmath>
#include <fstream>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace obs {

namespace {

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter:
      return "counter";
    case MetricsRegistry::Kind::kGauge:
      return "gauge";
    case MetricsRegistry::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// Shortest round-trippable rendering of a double (no trailing zeros).
std::string Num(double v) { return StrFormat("%g", v); }

/// `base{existing,le="bound"}` — merges the le label into an existing
/// label string.
std::string BucketLabels(const std::string& labels, double bound) {
  const std::string le =
      std::isinf(bound) ? "+Inf" : Num(bound);
  if (labels.empty()) return "{le=\"" + le + "\"}";
  std::string out = labels;
  out.insert(out.size() - 1, ",le=\"" + le + "\"");
  return out;
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      out->push_back(c);
    }
  }
}

void AppendSpanJson(const SpanNode& node, int indent, std::string* out) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  *out += pad + "{\"name\": \"";
  AppendJsonEscaped(node.name, out);
  *out += StrFormat("\", \"start_us\": %g, \"duration_us\": %g",
                    node.start_us, node.duration_us);
  if (node.children.empty()) {
    *out += "}";
    return;
  }
  *out += ", \"children\": [\n";
  for (size_t i = 0; i < node.children.size(); ++i) {
    AppendSpanJson(node.children[i], indent + 2, out);
    if (i + 1 < node.children.size()) *out += ",";
    *out += "\n";
  }
  *out += pad + "]}";
}

}  // namespace

std::string TextExposition(const MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  std::string out;
  for (const auto& family : registry->TakeSnapshot()) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + KindName(family.kind) + "\n";
    for (const auto& inst : family.instruments) {
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          out += family.name + inst.labels + " " +
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       inst.counter_value)) +
                 "\n";
          break;
        case MetricsRegistry::Kind::kGauge:
          out += family.name + inst.labels + " " + Num(inst.gauge_value) +
                 "\n";
          break;
        case MetricsRegistry::Kind::kHistogram: {
          const Histogram::Snapshot& h = inst.histogram;
          uint64_t cumulative = 0;
          for (size_t b = 0; b < h.buckets.size(); ++b) {
            cumulative += h.buckets[b];
            const bool last = b + 1 == h.buckets.size();
            if (h.buckets[b] == 0 && !last) continue;  // Elide empties.
            out += family.name + "_bucket" +
                   BucketLabels(inst.labels, h.upper_bounds[b]) + " " +
                   StrFormat("%llu",
                             static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          out += family.name + "_sum" + inst.labels + " " + Num(h.sum) + "\n";
          out += family.name + "_count" + inst.labels + " " +
                 StrFormat("%llu",
                           static_cast<unsigned long long>(h.count)) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string JsonSnapshot(const MetricsRegistry* registry,
                         const Tracer* tracer) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  if (tracer == nullptr) tracer = Tracer::Global();
  std::string out = "{\n  \"metrics\": [\n";
  const auto families = registry->TakeSnapshot();
  for (size_t f = 0; f < families.size(); ++f) {
    const auto& family = families[f];
    out += "    {\"name\": \"";
    AppendJsonEscaped(family.name, &out);
    out += "\", \"kind\": \"";
    out += KindName(family.kind);
    out += "\", \"help\": \"";
    AppendJsonEscaped(family.help, &out);
    out += "\", \"instruments\": [\n";
    for (size_t i = 0; i < family.instruments.size(); ++i) {
      const auto& inst = family.instruments[i];
      out += "      {\"labels\": \"";
      AppendJsonEscaped(inst.labels, &out);
      out += "\", ";
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          out += StrFormat("\"value\": %llu",
                           static_cast<unsigned long long>(
                               inst.counter_value));
          break;
        case MetricsRegistry::Kind::kGauge:
          out += StrFormat("\"value\": %g", inst.gauge_value);
          break;
        case MetricsRegistry::Kind::kHistogram: {
          const Histogram::Snapshot& h = inst.histogram;
          out += StrFormat(
              "\"count\": %llu, \"sum\": %g, \"min\": %g, \"max\": %g, "
              "\"p50\": %g, \"p95\": %g, \"p99\": %g",
              static_cast<unsigned long long>(h.count), h.sum, h.min, h.max,
              h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
          break;
        }
      }
      out += i + 1 < family.instruments.size() ? "},\n" : "}\n";
    }
    out += f + 1 < families.size() ? "    ]},\n" : "    ]}\n";
  }
  out += "  ],\n  \"spans\": [\n";
  const auto roots = tracer->Snapshot();
  for (size_t r = 0; r < roots.size(); ++r) {
    AppendSpanJson(roots[r], 4, &out);
    if (r + 1 < roots.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Status DumpJson(const std::string& path, const MetricsRegistry* registry,
                const Tracer* tracer) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << JsonSnapshot(registry, tracer);
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

std::string SummaryLine(const MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  std::string out = "obs:";
  for (const auto& family : registry->TakeSnapshot()) {
    for (const auto& inst : family.instruments) {
      out += " " + family.name + inst.labels;
      switch (family.kind) {
        case MetricsRegistry::Kind::kCounter:
          out += StrFormat("=%llu", static_cast<unsigned long long>(
                                        inst.counter_value));
          break;
        case MetricsRegistry::Kind::kGauge:
          out += "=" + Num(inst.gauge_value);
          break;
        case MetricsRegistry::Kind::kHistogram:
          out += StrFormat(
              "[n=%llu p50=%s p95=%s]",
              static_cast<unsigned long long>(inst.histogram.count),
              Num(inst.histogram.Percentile(0.50)).c_str(),
              Num(inst.histogram.Percentile(0.95)).c_str());
          break;
      }
    }
  }
  return out;
}

StatsLogger::StatsLogger(const StatsLoggerConfig& config) : config_(config) {
  if (config_.registry == nullptr) config_.registry = MetricsRegistry::Global();
  if (!config_.formatter) {
    config_.formatter = [](const MetricsRegistry* r) {
      return SummaryLine(r);
    };
  }
  thread_ = std::thread([this] { Loop(); });
}

StatsLogger::~StatsLogger() { Stop(); }

void StatsLogger::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  EmitOnce();  // Final line: short-lived runs still get one summary.
}

void StatsLogger::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(config_.interval_ms),
                     [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    EmitOnce();
    lock.lock();
  }
}

void StatsLogger::EmitOnce() {
  DBG4ETH_LOG(Info) << config_.formatter(config_.registry);
}

}  // namespace obs
}  // namespace dbg4eth
