#ifndef DBG4ETH_OBS_METRICS_H_
#define DBG4ETH_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dbg4eth {
namespace obs {

/// \brief Process-wide metrics primitives (see DESIGN.md "Observability").
///
/// Three instrument kinds, all safe for concurrent update from any number
/// of threads with no mutex on the record path:
///   Counter    monotone event count (relaxed atomic add).
///   Gauge      last-written double (relaxed atomic store / CAS add).
///   Histogram  exponential-bucket distribution with stripe-sharded
///              atomic bucket counts and quantile extraction.
///
/// Instruments live in a MetricsRegistry keyed by (family name, label
/// set). Families carry a help string and a kind; instruments within a
/// family differ only in labels ("serve_latency_us{path=cold}" vs
/// "{path=hit}"). Pointers returned by the registry are stable for the
/// registry's lifetime, so call sites resolve them once (typically into a
/// function-local static) and record through the raw pointer afterwards.

/// One metric label set, e.g. {{"path", "cold"}}. Order is preserved and
/// significant: {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} are
/// distinct instruments. Keep sets small and values low-cardinality.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Renders a label set as `{k="v",k2="v2"}` (empty string for no labels);
/// used both as the registry's instrument key and in text exposition.
/// Values are escaped per the Prometheus text format (backslash, double
/// quote, newline), so address- or user-derived values can never break
/// the exposition or alias another instrument.
std::string RenderLabels(const LabelSet& labels);

/// Escapes one label *value* for the Prometheus text format:
/// `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
std::string EscapeLabelValue(const std::string& value);

/// \brief Monotonically increasing event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value instrument (queue depths, in-flight counts, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Bucket layout of a Histogram: `num_buckets` geometric buckets
/// starting at `min_value` and growing by `growth` per bucket, plus an
/// underflow bucket below `min_value` and an overflow bucket above the
/// top bound.
struct HistogramConfig {
  double min_value = 0.1;
  double growth = 1.18920711500272107;  ///< 2^(1/4): 4 buckets/doubling.
  int num_buckets = 140;                ///< 0.1 us .. ~2^35*0.1 us (~57 min).

  /// The default layout, tuned for microsecond latencies: sub-us cache
  /// hits up to ~hour-scale wall times at <= +-9% bucket error.
  static HistogramConfig LatencyUs() { return HistogramConfig(); }
};

/// \brief Exponential-bucket histogram.
///
/// Record() is wait-free: it bumps one atomic bucket slot in the calling
/// thread's stripe (threads are round-robined over a fixed stripe set, so
/// concurrent recorders rarely share a cache line) plus stripe-local
/// count/sum and global min/max CAS slots. Snapshots merge the stripes.
///
/// Quantiles are exact given the bucketization: the reported value is the
/// geometric midpoint of the nearest-rank bucket, clamped to the observed
/// [min, max], so the relative error is bounded by sqrt(growth) (~9% for
/// the default 4-buckets-per-doubling layout).
class Histogram {
 public:
  explicit Histogram(const HistogramConfig& config = HistogramConfig());

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  /// Records `value` and, when `trace_id` is non-empty, tries to attach an
  /// OpenMetrics exemplar (trace_id, value, unix timestamp) to the bucket
  /// the value landed in. Exemplar capture is best-effort and never
  /// blocks: each bucket has one try-lock slot; if another thread holds it
  /// this recording simply skips the exemplar (the count still lands).
  void Record(double value, const std::string& trace_id);

  /// One captured exemplar: the most recent trace that landed in `bucket`
  /// (same indexing as Snapshot::buckets).
  struct Exemplar {
    int bucket = 0;
    std::string trace_id;
    double value = 0.0;
    double timestamp_s = 0.0;  ///< Unix seconds at capture time.
  };

  /// \brief Point-in-time merge of all stripes.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< Smallest recorded value (0 when count == 0).
    double max = 0.0;  ///< Largest recorded value (0 when count == 0).
    /// Per-bucket counts: [0] underflow, [1..num_buckets] finite buckets,
    /// [num_buckets+1] overflow.
    std::vector<uint64_t> buckets;
    /// Inclusive upper bound of each bucket; the last is +infinity.
    std::vector<double> upper_bounds;
    /// Captured exemplars, at most one per bucket, ascending bucket order.
    std::vector<Exemplar> exemplars;

    /// The exemplar for `bucket`, or nullptr if none was captured.
    const Exemplar* ExemplarFor(int bucket) const;

    /// Nearest-rank quantile, q in [0, 1]; 0 when nothing was recorded.
    double Percentile(double q) const;
    double Mean() const { return count == 0 ? 0.0 : sum / double(count); }
  };

  Snapshot TakeSnapshot() const;

  uint64_t Count() const;
  /// Convenience single-quantile read (snapshots internally).
  double Percentile(double q) const { return TakeSnapshot().Percentile(q); }

  const HistogramConfig& config() const { return config_; }

 private:
  /// Bucket index of `value` in [0, num_buckets + 1].
  int BucketIndex(double value) const;

  static constexpr int kStripes = 16;
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  /// One exemplar per bucket, guarded by a per-slot try-lock so Record
  /// never blocks: a writer that loses the CAS skips the exemplar, and
  /// the (rare) snapshot reader spins the handful of cycles a writer
  /// holds the lock for. 64-byte aligned so two slots never share a line.
  struct alignas(64) ExemplarSlot {
    std::atomic<uint32_t> lock{0};  ///< 0 = free, 1 = held.
    uint32_t len = 0;               ///< 0 = slot empty (no exemplar yet).
    /// Sized to the longest id the transport produces (net::ExtractTraceId
    /// caps sanitized x-request-id values at 64 chars), so an exposed
    /// exemplar id always matches the response header and retained trace;
    /// anything longer is truncated.
    char trace_id[64] = {};
    double value = 0.0;
    double timestamp_s = 0.0;
  };

  HistogramConfig config_;
  double inv_log2_growth_ = 0.0;
  std::unique_ptr<Stripe[]> stripes_;
  std::unique_ptr<ExemplarSlot[]> exemplar_slots_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// \brief Records wall time in microseconds into a histogram when the
/// scope ends. A null histogram makes the timer a no-op, so call sites
/// can instrument conditionally without branching around the timed code.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { Stop(); }

  /// Records the elapsed time now and disarms the destructor, for timed
  /// windows that end before the enclosing scope does. Idempotent.
  void Stop() {
    if (histogram_ != nullptr) histogram_->Record(elapsed_us());
    histogram_ = nullptr;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Name -> instrument-family registry behind the exporters.
///
/// FindOrCreate semantics: the first *At call for a (name, labels) pair
/// creates the instrument; later calls return the same pointer. A name
/// must keep one kind and help string for the process lifetime
/// (re-registration with a different kind aborts: that is a programming
/// error, not an operational condition). Lookup takes the registry mutex;
/// hot paths should cache the returned pointer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all library call sites record into.
  static MetricsRegistry* Global();

  Counter* CounterAt(const std::string& name, const std::string& help,
                     const LabelSet& labels = {});
  Gauge* GaugeAt(const std::string& name, const std::string& help,
                 const LabelSet& labels = {});
  Histogram* HistogramAt(
      const std::string& name, const std::string& help,
      const LabelSet& labels = {},
      const HistogramConfig& config = HistogramConfig::LatencyUs());

  enum class Kind { kCounter, kGauge, kHistogram };

  /// \brief Deep, consistent-enough copy of every family for exporters;
  /// deterministic order (families by name, instruments by label string).
  struct InstrumentSnapshot {
    std::string labels;  ///< Rendered label string ("" for none).
    uint64_t counter_value = 0;
    double gauge_value = 0.0;
    Histogram::Snapshot histogram;  ///< Only meaningful for kHistogram.
  };
  struct FamilySnapshot {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<InstrumentSnapshot> instruments;
  };
  std::vector<FamilySnapshot> TakeSnapshot() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    std::map<std::string, Instrument> instruments;  ///< By label string.
  };

  Family* FamilyAt(const std::string& name, const std::string& help,
                   Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace obs
}  // namespace dbg4eth

#endif  // DBG4ETH_OBS_METRICS_H_
