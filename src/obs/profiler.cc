#include "obs/profiler.h"

#include <csignal>
#include <ctime>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

#if defined(__SANITIZE_THREAD__)
#define DBG4ETH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DBG4ETH_TSAN 1
#endif
#endif

namespace dbg4eth {
namespace obs {

namespace {

/// The instance whose Start() installed the SIGPROF handler. Plain atomic
/// pointer: the handler must read it without locks.
std::atomic<Profiler*> g_active{nullptr};

/// Best-effort symbol name for a return address: demangled function name
/// when dladdr resolves one, else the containing object's basename, else
/// the raw address. Symbolization runs only in CollectFolded — never in
/// the signal handler.
std::string SymbolizePc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      // Drop the argument list so folded frames stay one token:
      // "ns::Class::Method(int, double)" -> "ns::Class::Method".
      const size_t paren = name.find('(');
      if (paren != std::string::npos) name.resize(paren);
      return name;
    }
    return info.dli_sname;
  }
  if (dladdr(pc, &info) != 0 && info.dli_fname != nullptr) {
    const char* base = info.dli_fname;
    for (const char* p = info.dli_fname; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return StrFormat("[%s]", base);
  }
  return StrFormat("0x%zx", reinterpret_cast<size_t>(pc));
}

}  // namespace

void ProfilerSignalHandler(int /*signo*/) {
  Profiler* profiler = g_active.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler->HandleSignal();
}

void Profiler::HandleSignal() {
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (armed_.load(std::memory_order_acquire)) {
    const uint64_t idx = claimed_.fetch_add(1, std::memory_order_relaxed);
    if (idx < config_.max_samples) {
      RawSample& sample = samples_[idx];
      // backtrace() is not formally async-signal-safe because its first
      // call lazily loads libgcc; Start() forces that load before arming,
      // after which glibc's implementation only walks the stack.
      sample.depth = backtrace(sample.pcs, kMaxDepth);
      completed_.fetch_add(1, std::memory_order_release);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

Profiler::Profiler(const ProfilerConfig& config) : config_(config) {
  if (config_.sample_hz < 1) config_.sample_hz = 1;
  if (config_.max_samples < 16) config_.max_samples = 16;
  samples_ = std::make_unique<RawSample[]>(config_.max_samples);
}

Profiler::~Profiler() { Stop(); }

Profiler* Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return profiler;
}

uint64_t Profiler::samples_captured() const {
  return completed_.load(std::memory_order_acquire);
}

Status Profiler::Start() {
#ifdef DBG4ETH_TSAN
  return Status::Unavailable(
      "sampling profiler is disabled under ThreadSanitizer");
#else
  if (armed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("profiler already running");
  }
  Profiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    return Status::Unavailable("another profiler owns the SIGPROF handler");
  }

  // Force libgcc's lazy unwinder initialization (allocates) now, so the
  // signal handler's backtrace() calls never allocate.
  void* warmup[kMaxDepth];
  backtrace(warmup, kMaxDepth);

  claimed_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  struct sigaction action = {};
  action.sa_handler = &ProfilerSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;  // Don't fail syscalls in sampled threads.
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return Status::Internal("sigaction(SIGPROF) failed");
  }

  // A CLOCK_MONOTONIC timer ticks on wall time, so sampling keeps going
  // even when the process is blocked (ITIMER_PROF would only tick while
  // on-CPU). Caveat: SIGEV_SIGNAL is a *process-directed* signal — the
  // kernel delivers each expiry to ONE arbitrary eligible thread, in
  // practice often the same one, NOT to every thread and not
  // proportionally to their wall time. The folded output is therefore
  // "what the process is doing over wall time" with best-effort,
  // delivery-biased per-thread attribution; a proportional multi-thread
  // wall profile would need one SIGEV_THREAD_ID timer per thread.
  struct sigevent event = {};
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  timer_t timer;
  if (timer_create(CLOCK_MONOTONIC, &event, &timer) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return Status::Internal("timer_create(CLOCK_MONOTONIC) failed");
  }
  timer_ = timer;
  timer_created_ = true;

  armed_.store(true, std::memory_order_release);

  const long interval_ns = 1'000'000'000L / config_.sample_hz;
  struct itimerspec spec = {};
  spec.it_interval.tv_sec = interval_ns / 1'000'000'000L;
  spec.it_interval.tv_nsec = interval_ns % 1'000'000'000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer, 0, &spec, nullptr) != 0) {
    Stop();
    return Status::Internal("timer_settime failed");
  }
  return Status::OK();
#endif
}

void Profiler::Stop() {
  if (timer_created_) {
    timer_t timer = static_cast<timer_t>(timer_);
    struct itimerspec disarm = {};
    timer_settime(timer, 0, &disarm, nullptr);
    timer_delete(timer);
    timer_created_ = false;
    timer_ = nullptr;
  }
  armed_.store(false, std::memory_order_release);
  // A signal delivered just before disarming may still be executing its
  // handler; wait it out so CollectFolded never races a writer.
  while (inflight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  if (g_active.load(std::memory_order_acquire) == this) {
    g_active.store(nullptr, std::memory_order_release);
  }
}

std::string Profiler::CollectFolded() const {
  const uint64_t n = std::min<uint64_t>(
      completed_.load(std::memory_order_acquire), config_.max_samples);
  std::unordered_map<void*, std::string> symbol_cache;
  std::map<std::string, uint64_t> folded;
  for (uint64_t i = 0; i < n; ++i) {
    const RawSample& sample = samples_[i];
    // Frames [0] and [1] are the handler and the kernel's signal
    // trampoline (__restore_rt) — not part of the interrupted stack.
    const int skip = std::min(sample.depth, 2);
    std::string line;
    for (int f = sample.depth - 1; f >= skip; --f) {
      auto [it, inserted] = symbol_cache.try_emplace(sample.pcs[f]);
      if (inserted) it->second = SymbolizePc(sample.pcs[f]);
      if (!line.empty()) line += ';';
      line += it->second;
    }
    if (line.empty()) continue;
    folded[line] += 1;
  }
  std::vector<std::pair<std::string, uint64_t>> lines(folded.begin(),
                                                      folded.end());
  std::stable_sort(lines.begin(), lines.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::string out;
  for (const auto& [stack, count] : lines) {
    out += stack;
    out += StrFormat(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

Status Profiler::ProfileFor(double seconds, std::string* folded_out) {
  std::unique_lock<std::mutex> lock(capture_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return Status::Unavailable("a profile capture is already in progress");
  }
  const double clamped = std::min(60.0, std::max(0.05, seconds));
  Status started = Start();
  if (!started.ok()) return started;
  std::this_thread::sleep_for(std::chrono::duration<double>(clamped));
  Stop();
  *folded_out = CollectFolded();
  return Status::OK();
}

}  // namespace obs
}  // namespace dbg4eth
