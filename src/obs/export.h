#ifndef DBG4ETH_OBS_EXPORT_H_
#define DBG4ETH_OBS_EXPORT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbg4eth {
namespace json {
class JsonWriter;
}  // namespace json

namespace obs {

/// Dialects of the text exposition. Exemplars are only legal in
/// OpenMetrics: the classic Prometheus 0.0.4 parser treats a `#` after
/// the sample value as a parse error and fails the whole scrape, so the
/// default dialect never emits them. Serve kOpenMetrics only to scrapers
/// that negotiated it (`Accept: application/openmetrics-text`).
enum class ExpositionFormat {
  kPrometheusText,  ///< Classic 0.0.4 text format; no exemplars.
  kOpenMetrics,     ///< Exemplar suffixes + the mandatory `# EOF` trailer.
};

/// The Content-Type header value matching `format`.
const char* ExpositionContentType(ExpositionFormat format);

/// \brief Prometheus-style text exposition of a registry (null = Global).
///
/// Families render as `# HELP` / `# TYPE` headers followed by one sample
/// line per instrument. Histograms expose cumulative `_bucket{le="..."}`
/// lines (empty buckets are elided to keep dumps readable; `le="+Inf"` is
/// always present) plus `_sum` and `_count`.
///
/// In the kOpenMetrics dialect, buckets that captured an exemplar carry
/// an exemplar suffix:
///   `name_bucket{le="256"} 4 # {trace_id="<32hex>"} 211.8 1754600000.123`
/// counter families named `*_total` drop the suffix on their HELP/TYPE
/// lines (OpenMetrics defines the sample as `<family>_total`), and the
/// output ends with the mandatory `# EOF` line.
std::string TextExposition(
    const MetricsRegistry* registry = nullptr,
    ExpositionFormat format = ExpositionFormat::kPrometheusText);

/// Renders one span tree as a JSON object ({"name","start_us",
/// "duration_us","trace_id"?,"error"?,"children"?}) through the shared
/// writer. Used by JsonSnapshot and the HTTP `/debug/traces` route.
void AppendSpanJson(const SpanNode& node, json::JsonWriter* writer);

/// \brief JSON snapshot of a registry plus the tracer's retained span
/// trees (nulls = globals). Shape:
///   { "metrics": [ {"name","kind","help","instruments":[...]} ],
///     "spans":   [ {"name","start_us","duration_us","children":[...]} ] }
std::string JsonSnapshot(const MetricsRegistry* registry = nullptr,
                         const Tracer* tracer = nullptr);

/// Writes JsonSnapshot to `path` (truncating).
Status DumpJson(const std::string& path,
                const MetricsRegistry* registry = nullptr,
                const Tracer* tracer = nullptr);

/// One-line operational digest of a registry: every counter/gauge value
/// and p50/p95 of every histogram. Default formatter of StatsLogger.
std::string SummaryLine(const MetricsRegistry* registry = nullptr);

struct StatsLoggerConfig {
  int64_t interval_ms = 2000;
  /// Registry summarized each interval; null = Global.
  MetricsRegistry* registry = nullptr;
  /// Line producer; null = SummaryLine(registry).
  std::function<std::string(const MetricsRegistry*)> formatter;
};

/// \brief Background thread emitting one summary line per interval
/// through the logging layer (Info level). Starts on construction; Stop
/// (or destruction) emits one final line so short runs still log.
class StatsLogger {
 public:
  explicit StatsLogger(const StatsLoggerConfig& config = {});
  ~StatsLogger();

  StatsLogger(const StatsLogger&) = delete;
  StatsLogger& operator=(const StatsLogger&) = delete;

  /// Stops the thread after a final emission. Idempotent.
  void Stop();

 private:
  void Loop();
  void EmitOnce();

  StatsLoggerConfig config_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace dbg4eth

#endif  // DBG4ETH_OBS_EXPORT_H_
