#include "obs/trace.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

/// One active (not yet finished) span on this thread.
struct Frame {
  const char* name = nullptr;
  Clock::time_point start;
  Tracer* tracer = nullptr;  ///< Destination; set by the root frame.
  SpanNode node;             ///< Finished children accumulate here.
};

/// Per-thread active-span stack. Spans are strictly scoped, so LIFO order
/// is guaranteed by construction; no synchronization is needed until a
/// root finishes.
thread_local std::vector<Frame> t_stack;
thread_local Clock::time_point t_root_start;

void AppendTree(const SpanNode& node, int depth, double parent_start,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%-*s %12.1fus", 28 - 2 * depth, node.name.c_str(),
                    node.duration_us);
  if (depth > 0) {
    *out += StrFormat("  (+%.1fus)", node.start_us - parent_start);
  }
  *out += "\n";
  for (const SpanNode& child : node.children) {
    AppendTree(child, depth + 1, node.start_us, out);
  }
}

}  // namespace

const SpanNode* FindSpan(const SpanNode& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const SpanNode& child : root.children) {
    if (const SpanNode* found = FindSpan(child, name)) return found;
  }
  return nullptr;
}

std::vector<std::string> SpanNames(const SpanNode& root) {
  std::vector<std::string> names;
  names.push_back(root.name);
  for (const SpanNode& child : root.children) {
    for (std::string& name : SpanNames(child)) {
      names.push_back(std::move(name));
    }
  }
  return names;
}

std::string FormatSpanTree(const SpanNode& root) {
  std::string out;
  AppendTree(root, 0, 0.0, &out);
  return out;
}

Tracer::Tracer(const TracerConfig& config)
    : config_(config), sample_every_n_(config.sample_every_n) {}

Tracer* Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  roots_finished_.store(0, std::memory_order_relaxed);
}

std::vector<SpanNode> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SpanNode>(ring_.begin(), ring_.end());
}

std::optional<SpanNode> Tracer::LatestRoot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->name == name) return *it;
  }
  return std::nullopt;
}

void Tracer::RecordRoot(SpanNode&& root) {
  const uint64_t nth = roots_finished_.fetch_add(1, std::memory_order_relaxed);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t every = sample_every_n_.load(std::memory_order_relaxed);
  if (every == 0 || nth % every != 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  while (ring_.size() >= config_.buffer_capacity) ring_.pop_front();
  ring_.push_back(std::move(root));
}

TraceSpan::TraceSpan(const char* name, Tracer* tracer) {
  start_ = Clock::now();
  Frame frame;
  frame.name = name;
  frame.start = start_;
  if (t_stack.empty()) {
    t_root_start = start_;
    frame.tracer = tracer != nullptr ? tracer : Tracer::Global();
  }
  frame.node.name = name;
  frame.node.start_us = ElapsedUs(t_root_start, start_);
  frame_index_ = t_stack.size();
  t_stack.push_back(std::move(frame));
  active_ = true;
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  DBG4ETH_CHECK_EQ(frame_index_, t_stack.size() - 1)
      << "TraceSpan finished out of stack order";
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();
  frame.node.duration_us = ElapsedUs(frame.start, Clock::now());
  if (t_stack.empty()) {
    frame.tracer->RecordRoot(std::move(frame.node));
  } else {
    t_stack.back().node.children.push_back(std::move(frame.node));
  }
}

double TraceSpan::elapsed_us() const {
  return ElapsedUs(start_, Clock::now());
}

}  // namespace obs
}  // namespace dbg4eth
