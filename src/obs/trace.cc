#include "obs/trace.h"

#include <random>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace dbg4eth {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

/// One active (not yet finished) span on this thread.
struct Frame {
  const char* name = nullptr;
  Clock::time_point start;
  Tracer* tracer = nullptr;  ///< Destination; set by the root frame.
  SpanNode node;             ///< Finished children accumulate here.
};

/// Per-thread active-span stack. Spans are strictly scoped, so LIFO order
/// is guaranteed by construction; no synchronization is needed until a
/// root finishes.
thread_local std::vector<Frame> t_stack;
thread_local Clock::time_point t_root_start;

/// Innermost ScopedTraceContext's trace id for this thread.
thread_local std::string t_trace_id;

void AppendTree(const SpanNode& node, int depth, double parent_start,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += StrFormat("%-*s %12.1fus", 28 - 2 * depth, node.name.c_str(),
                    node.duration_us);
  if (depth > 0) {
    *out += StrFormat("  (+%.1fus)", node.start_us - parent_start);
  }
  if (node.error) *out += "  [error]";
  *out += "\n";
  for (const SpanNode& child : node.children) {
    AppendTree(child, depth + 1, node.start_us, out);
  }
}

bool TreeHasError(const SpanNode& node) {
  if (node.error) return true;
  for (const SpanNode& child : node.children) {
    if (TreeHasError(child)) return true;
  }
  return false;
}

}  // namespace

const SpanNode* FindSpan(const SpanNode& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const SpanNode& child : root.children) {
    if (const SpanNode* found = FindSpan(child, name)) return found;
  }
  return nullptr;
}

std::vector<std::string> SpanNames(const SpanNode& root) {
  std::vector<std::string> names;
  names.push_back(root.name);
  for (const SpanNode& child : root.children) {
    for (std::string& name : SpanNames(child)) {
      names.push_back(std::move(name));
    }
  }
  return names;
}

std::string FormatSpanTree(const SpanNode& root) {
  std::string out;
  AppendTree(root, 0, 0.0, &out);
  return out;
}

std::string GenerateTraceId() {
  // Thread-local engine: contention-free, and distinct threads get distinct
  // random_device seeds so concurrent requests cannot collide.
  thread_local std::mt19937_64 rng = [] {
    std::random_device rd;
    std::seed_seq seed{rd(), rd(), rd(), rd()};
    return std::mt19937_64(seed);
  }();
  uint64_t hi = rng();
  uint64_t lo = rng();
  if (hi == 0 && lo == 0) lo = 1;  // all-zero is invalid per W3C
  static const char* kHex = "0123456789abcdef";
  std::string id(32, '0');
  for (int i = 0; i < 16; ++i) {
    id[15 - i] = kHex[(hi >> (4 * i)) & 0xF];
    id[31 - i] = kHex[(lo >> (4 * i)) & 0xF];
  }
  return id;
}

ScopedTraceContext::ScopedTraceContext(std::string trace_id)
    : previous_(std::move(t_trace_id)) {
  t_trace_id = std::move(trace_id);
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_id = std::move(previous_); }

const std::string& ScopedTraceContext::CurrentTraceId() { return t_trace_id; }

Tracer::Tracer(const TracerConfig& config)
    : config_(config),
      sample_every_n_(config.sample_every_n),
      retain_latency_us_(config.retain_latency_us) {}

Tracer* Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  retained_.clear();
  roots_finished_.store(0, std::memory_order_relaxed);
}

std::vector<SpanNode> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNode> out(ring_.begin(), ring_.end());
  out.insert(out.end(), retained_.begin(), retained_.end());
  return out;
}

std::optional<SpanNode> Tracer::LatestRoot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    if (it->name == name) return *it;
  }
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->name == name) return *it;
  }
  return std::nullopt;
}

std::optional<SpanNode> Tracer::FindTrace(const std::string& trace_id) const {
  if (trace_id.empty()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    if (it->trace_id == trace_id) return *it;
  }
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->trace_id == trace_id) return *it;
  }
  return std::nullopt;
}

void Tracer::RecordRoot(SpanNode&& root) {
  const uint64_t nth = roots_finished_.fetch_add(1, std::memory_order_relaxed);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (root.trace_id.empty()) root.trace_id = ScopedTraceContext::CurrentTraceId();
  if (!root.error && TreeHasError(root)) root.error = true;
  // Tail-based retention: the decision uses the *finished* root, so an
  // error or a latency outlier is kept even if head sampling would have
  // dropped it, and ordinary traffic can never evict it from `retained_`.
  const double threshold = retain_latency_us_.load(std::memory_order_relaxed);
  const bool retain =
      root.error || (threshold > 0.0 && root.duration_us >= threshold);
  std::lock_guard<std::mutex> lock(mu_);
  if (retain && config_.retained_capacity > 0) {
    while (retained_.size() >= config_.retained_capacity) retained_.pop_front();
    retained_.push_back(std::move(root));
    return;
  }
  const uint64_t every = sample_every_n_.load(std::memory_order_relaxed);
  if (every == 0 || nth % every != 0) return;
  while (ring_.size() >= config_.buffer_capacity) ring_.pop_front();
  ring_.push_back(std::move(root));
}

TraceSpan::TraceSpan(const char* name, Tracer* tracer) {
  start_ = Clock::now();
  Frame frame;
  frame.name = name;
  frame.start = start_;
  if (t_stack.empty()) {
    t_root_start = start_;
    frame.tracer = tracer != nullptr ? tracer : Tracer::Global();
  }
  frame.node.name = name;
  frame.node.start_us = ElapsedUs(t_root_start, start_);
  frame_index_ = t_stack.size();
  t_stack.push_back(std::move(frame));
  active_ = true;
}

void TraceSpan::SetError() {
  if (!active_) return;
  t_stack[frame_index_].node.error = true;
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  DBG4ETH_CHECK_EQ(frame_index_, t_stack.size() - 1)
      << "TraceSpan finished out of stack order";
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();
  frame.node.duration_us = ElapsedUs(frame.start, Clock::now());
  if (t_stack.empty()) {
    frame.tracer->RecordRoot(std::move(frame.node));
  } else {
    t_stack.back().node.children.push_back(std::move(frame.node));
  }
}

double TraceSpan::elapsed_us() const {
  return ElapsedUs(start_, Clock::now());
}

}  // namespace obs
}  // namespace dbg4eth
