#ifndef DBG4ETH_OBS_PROFILER_H_
#define DBG4ETH_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace dbg4eth {
namespace obs {

struct ProfilerConfig {
  /// Sampling frequency. Deliberately prime (97 instead of 100) so the
  /// sampler cannot phase-lock with millisecond-periodic work and keep
  /// hitting the same instant of a loop iteration.
  int sample_hz = 97;
  /// Preallocated sample capacity; signals arriving after the buffer is
  /// full are counted but dropped. 64k samples at 97 Hz is ~11 minutes.
  size_t max_samples = 65536;
};

/// \brief Sampling wall-clock profiler with a folded-stack text output.
///
/// While running, a POSIX interval timer (CLOCK_MONOTONIC) delivers
/// SIGPROF at `sample_hz`; the handler captures the interrupted thread's
/// call stack with `backtrace()` into a slot of a preallocated buffer
/// claimed by one atomic fetch_add — no locks, no allocation, nothing
/// async-signal-unsafe on the capture path. `CollectFolded()` symbolizes
/// the raw frames (dladdr + demangle, done outside the handler) and
/// aggregates them into collapsed-stack lines:
///
///   dbg4eth::serve::InferenceService::ScoreCold;...;dgemm_kernel 42
///
/// one line per unique stack, leaf last, count after the final space —
/// the format `flamegraph.pl` / speedscope / inferno consume directly.
///
/// The profiler is off by default and costs nothing until started. Only
/// one capture can run at a time (`ProfileFor` serializes and fails fast
/// with Unavailable when busy). Under ThreadSanitizer the profiler
/// refuses to start: TSan's signal interception makes `backtrace()` from
/// a handler unsafe, and a profile under TSan would measure the
/// instrumentation anyway.
class Profiler {
 public:
  explicit Profiler(const ProfilerConfig& config = {});
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler behind `GET /debug/profile`.
  static Profiler* Global();

  /// Captures for `seconds` (clamped to [0.05, 60]) and returns the
  /// folded-stack text. Unavailable if a capture is already running.
  Status ProfileFor(double seconds, std::string* folded_out);

  /// Arms the timer and starts capturing into a fresh buffer.
  /// FailedPrecondition if already running; Unavailable under TSan or if
  /// another Profiler instance holds the (process-wide) SIGPROF handler.
  Status Start();

  /// Disarms the timer and waits for in-flight handlers to drain.
  /// Idempotent.
  void Stop();

  bool running() const { return armed_.load(std::memory_order_acquire); }

  /// Samples captured into the buffer so far (excludes overflow drops).
  uint64_t samples_captured() const;

  /// Signals that arrived with the buffer already full.
  uint64_t samples_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Symbolizes and aggregates the captured samples into folded-stack
  /// lines (sorted by descending count). Call after Stop().
  std::string CollectFolded() const;

 private:
  friend void ProfilerSignalHandler(int);
  void HandleSignal();

  static constexpr int kMaxDepth = 64;
  struct RawSample {
    int depth = 0;
    void* pcs[kMaxDepth];
  };

  ProfilerConfig config_;
  std::unique_ptr<RawSample[]> samples_;
  std::atomic<uint64_t> claimed_{0};    ///< Slots handed to handlers.
  std::atomic<uint64_t> completed_{0};  ///< Slots fully written.
  std::atomic<uint64_t> dropped_{0};
  std::atomic<bool> armed_{false};
  std::atomic<int> inflight_{0};  ///< Handlers currently executing.
  std::mutex capture_mu_;         ///< Serializes ProfileFor callers.
  bool timer_created_ = false;
  // timer_t is a pointer-sized opaque handle; stored as void* to keep
  // <time.h> types out of this header.
  void* timer_ = nullptr;
};

}  // namespace obs
}  // namespace dbg4eth

#endif  // DBG4ETH_OBS_PROFILER_H_
