#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace dbg4eth {
namespace obs {

namespace {

/// Round-robin stripe assignment: each thread gets a fixed stripe index
/// on first use, shared across every histogram (contention only when two
/// assigned-alike threads record concurrently).
int ThisThreadStripe(int num_stripes) {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned assigned =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(assigned % static_cast<unsigned>(num_stripes));
}

void AtomicAddDouble(std::atomic<double>* slot, double delta) {
  double current = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(current, current + delta,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

void Gauge::Add(double delta) { AtomicAddDouble(&value_, delta); }

Histogram::Histogram(const HistogramConfig& config)
    : config_(config),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  DBG4ETH_CHECK_GT(config_.min_value, 0.0);
  DBG4ETH_CHECK_GT(config_.growth, 1.0);
  DBG4ETH_CHECK_GE(config_.num_buckets, 1);
  inv_log2_growth_ = 1.0 / std::log2(config_.growth);
  const int slots = config_.num_buckets + 2;
  stripes_ = std::make_unique<Stripe[]>(kStripes);
  for (int s = 0; s < kStripes; ++s) {
    stripes_[s].buckets = std::make_unique<std::atomic<uint64_t>[]>(slots);
    for (int b = 0; b < slots; ++b) {
      stripes_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
  exemplar_slots_ = std::make_unique<ExemplarSlot[]>(slots);
}

int Histogram::BucketIndex(double value) const {
  // NaN and anything below the first bound land in the underflow bucket.
  if (!(value >= config_.min_value)) return 0;
  const int idx =
      1 + static_cast<int>(std::log2(value / config_.min_value) *
                           inv_log2_growth_);
  return std::min(idx, config_.num_buckets + 1);
}

void Histogram::Record(double value) {
  Stripe& stripe = stripes_[ThisThreadStripe(kStripes)];
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&stripe.sum, value);
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
}

void Histogram::Record(double value, const std::string& trace_id) {
  const int bucket = BucketIndex(value);
  Stripe& stripe = stripes_[ThisThreadStripe(kStripes)];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&stripe.sum, value);
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
  if (trace_id.empty()) return;
  ExemplarSlot& slot = exemplar_slots_[bucket];
  // Try-lock: if another thread is writing or a snapshot is reading this
  // slot, just skip the exemplar — the recording path must never block.
  uint32_t expected = 0;
  if (!slot.lock.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
    return;
  }
  slot.len = static_cast<uint32_t>(
      std::min(trace_id.size(), sizeof(slot.trace_id)));
  std::memcpy(slot.trace_id, trace_id.data(), slot.len);
  slot.value = value;
  slot.timestamp_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  slot.lock.store(0, std::memory_order_release);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (int s = 0; s < kStripes; ++s) {
    total += stripes_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  const int slots = config_.num_buckets + 2;
  snap.buckets.assign(slots, 0);
  for (int s = 0; s < kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < slots; ++b) {
      snap.buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  snap.upper_bounds.resize(slots);
  double bound = config_.min_value;
  snap.upper_bounds[0] = bound;
  for (int b = 1; b <= config_.num_buckets; ++b) {
    bound *= config_.growth;
    snap.upper_bounds[b] = bound;
  }
  snap.upper_bounds[slots - 1] = std::numeric_limits<double>::infinity();
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  for (int b = 0; b < slots; ++b) {
    ExemplarSlot& slot = exemplar_slots_[b];
    // Spin-acquire: writers hold the slot lock for a handful of stores, and
    // snapshots are rare (scrapes), so waiting here is cheap and keeps the
    // record path the one that never blocks.
    uint32_t expected = 0;
    while (!slot.lock.compare_exchange_weak(expected, 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
      expected = 0;
    }
    if (slot.len > 0) {
      Exemplar ex;
      ex.bucket = b;
      ex.trace_id.assign(slot.trace_id, slot.len);
      ex.value = slot.value;
      ex.timestamp_s = slot.timestamp_s;
      snap.exemplars.push_back(std::move(ex));
    }
    slot.lock.store(0, std::memory_order_release);
  }
  return snap;
}

const Histogram::Exemplar* Histogram::Snapshot::ExemplarFor(int bucket) const {
  for (const Exemplar& ex : exemplars) {
    if (ex.bucket == bucket) return &ex;
  }
  return nullptr;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped * double(count))));
  uint64_t cumulative = 0;
  size_t bucket = buckets.size() - 1;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      bucket = b;
      break;
    }
  }
  double value;
  if (bucket == 0) {
    value = min;  // Underflow: everything here is <= the first bound.
  } else if (bucket == buckets.size() - 1) {
    value = max;  // Overflow has no finite upper bound.
  } else {
    const double upper = upper_bounds[bucket];
    const double lower = upper_bounds[bucket - 1];
    value = std::sqrt(lower * upper);  // Geometric bucket midpoint.
  }
  return std::min(max, std::max(min, value));
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Family* MetricsRegistry::FamilyAt(const std::string& name,
                                                   const std::string& help,
                                                   Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else {
    DBG4ETH_CHECK(it->second.kind == kind)
        << "metric family " << name << " re-registered with another kind";
  }
  return &it->second;
}

Counter* MetricsRegistry::CounterAt(const std::string& name,
                                    const std::string& help,
                                    const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyAt(name, help, Kind::kCounter);
  Instrument& inst = family->instruments[RenderLabels(labels)];
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return inst.counter.get();
}

Gauge* MetricsRegistry::GaugeAt(const std::string& name,
                                const std::string& help,
                                const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyAt(name, help, Kind::kGauge);
  Instrument& inst = family->instruments[RenderLabels(labels)];
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return inst.gauge.get();
}

Histogram* MetricsRegistry::HistogramAt(const std::string& name,
                                        const std::string& help,
                                        const LabelSet& labels,
                                        const HistogramConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = FamilyAt(name, help, Kind::kHistogram);
  Instrument& inst = family->instruments[RenderLabels(labels)];
  if (!inst.histogram) inst.histogram = std::make_unique<Histogram>(config);
  return inst.histogram.get();
}

std::vector<MetricsRegistry::FamilySnapshot> MetricsRegistry::TakeSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.instruments.reserve(family.instruments.size());
    for (const auto& [labels, inst] : family.instruments) {
      InstrumentSnapshot is;
      is.labels = labels;
      if (inst.counter) is.counter_value = inst.counter->Value();
      if (inst.gauge) is.gauge_value = inst.gauge->Value();
      if (inst.histogram) is.histogram = inst.histogram->TakeSnapshot();
      fs.instruments.push_back(std::move(is));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

}  // namespace obs
}  // namespace dbg4eth
