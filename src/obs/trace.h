#ifndef DBG4ETH_OBS_TRACE_H_
#define DBG4ETH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dbg4eth {
namespace obs {

/// \brief One finished span in a timing tree. Offsets and durations are
/// microseconds on the steady clock; `start_us` is relative to the root
/// span's start, so siblings order by it and a child's
/// [start_us, start_us + duration_us] interval nests inside its parent's.
struct SpanNode {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
  /// Correlation id of the request this tree belongs to ("" when the work
  /// ran outside any request context). Stamped on the root at finish time
  /// from the thread's ScopedTraceContext; FindTrace looks trees up by it.
  std::string trace_id;
  /// True when this span (or any span below it — errors bubble up to the
  /// root at finish time) covered a failed operation. Error roots are
  /// always retained by the tracer regardless of sampling.
  bool error = false;
  std::vector<SpanNode> children;
};

/// First span named `name` in a depth-first walk of `root`, or nullptr.
const SpanNode* FindSpan(const SpanNode& root, const std::string& name);

/// Depth-first span names of the tree (root first).
std::vector<std::string> SpanNames(const SpanNode& root);

/// Indented multi-line rendering, one span per line:
///   score_cold                      312845.2us
///     materialize                    88211.7us  (+0.4us)
std::string FormatSpanTree(const SpanNode& root);

/// Fresh random 128-bit trace id as 32 lowercase hex chars (the W3C
/// trace-context format). Never all-zero.
std::string GenerateTraceId();

/// \brief RAII thread-local trace context: while alive, every root span
/// finished on this thread is stamped with `trace_id` (and the context's
/// error flag). Contexts nest — the previous context is restored on
/// destruction — so a worker can process several requests' groups in one
/// batch without leaking ids between them.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::string trace_id);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  /// The innermost active context's trace id on this thread ("" if none).
  static const std::string& CurrentTraceId();

 private:
  std::string previous_;
};

struct TracerConfig {
  /// Sampled (non-error, under-threshold) finished root trees retained
  /// (ring buffer: oldest evicted first).
  size_t buffer_capacity = 64;
  /// Error and over-threshold-latency roots retained tail-based in their
  /// own ring, never displaced by ordinary traffic.
  size_t retained_capacity = 32;
  /// Keep the 1st, (n+1)th, (2n+1)th... finished root; 1 keeps every
  /// root, 0 keeps none. Sampling bounds the cost of bursty producers
  /// (training loops emitting thousands of roots) without losing the
  /// first tree of a fresh run.
  uint64_t sample_every_n = 1;
  /// Tail-based latency retention: a finished root at least this slow is
  /// always kept (into the retained ring), bypassing sampling. <= 0
  /// disables latency-based retention.
  double retain_latency_us = 1'000'000.0;
};

/// \brief Bounded buffer of sampled, finished span trees with tail-based
/// retention.
///
/// Span structure is accumulated per thread with no synchronization (see
/// TraceSpan); the tracer is only touched when a *root* span finishes,
/// under one short lock. Retention is decided *after* the root finished
/// (tail-based): error roots and roots slower than `retain_latency_us`
/// always land in a dedicated retained ring, so a burst of fast, healthy
/// traffic can never evict the one trace that explains a p99 outlier or a
/// failure. Everything else goes through head sampling into the sampled
/// ring. Snapshot copies both out.
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer all library spans record into.
  static Tracer* Global();

  /// Disabled tracers drop roots at finish time (spans still run, so
  /// nesting stays consistent across an enable flip).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void SetSampleEveryN(uint64_t n) {
    sample_every_n_.store(n, std::memory_order_relaxed);
  }

  /// Adjusts the tail-retention latency threshold at runtime (<= 0
  /// disables latency-based retention; errors are still retained).
  void SetRetainLatencyUs(double threshold_us) {
    retain_latency_us_.store(threshold_us, std::memory_order_relaxed);
  }
  double retain_latency_us() const {
    return retain_latency_us_.load(std::memory_order_relaxed);
  }

  /// Drops retained trees and resets the sampling phase (so the next
  /// finished root is kept again).
  void Clear();

  /// Root spans finished so far (sampled or not).
  uint64_t roots_finished() const {
    return roots_finished_.load(std::memory_order_relaxed);
  }

  /// Retained trees: the sampled ring (oldest first) followed by the
  /// tail-retained error/slow ring (oldest first).
  std::vector<SpanNode> Snapshot() const;

  /// Newest retained root with this name, if any (tail-retained roots are
  /// searched first — they are the interesting ones).
  std::optional<SpanNode> LatestRoot(const std::string& name) const;

  /// Newest retained root stamped with `trace_id`, if any. The lookup
  /// behind `GET /debug/traces?id=`.
  std::optional<SpanNode> FindTrace(const std::string& trace_id) const;

  /// Called by TraceSpan when a root finishes; applies tail retention
  /// then sampling. Public so tests can inject hand-built trees.
  void RecordRoot(SpanNode&& root);

 private:
  TracerConfig config_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> sample_every_n_;
  std::atomic<double> retain_latency_us_;
  std::atomic<uint64_t> roots_finished_{0};
  mutable std::mutex mu_;
  std::deque<SpanNode> ring_;      ///< Head-sampled ordinary roots.
  std::deque<SpanNode> retained_;  ///< Tail-retained error/slow roots.
};

/// \brief RAII timing scope. Spans opened while another span is active on
/// the same thread become its children; the outermost span is the root
/// and delivers the finished tree to its tracer (sampled). Spans must be
/// stack-ordered per thread — natural with scoped locals. Creation costs
/// one steady-clock read; finishing costs another plus a small tree node,
/// so spans belong on ms-scale operations, not nanosecond hot paths.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals). Null tracer = Global.
  explicit TraceSpan(const char* name, Tracer* tracer = nullptr);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Marks the span as covering a failed operation. The flag bubbles up
  /// to the root at finish time, which forces tail retention of the tree.
  void SetError();

  /// Finishes the span before scope exit (idempotent).
  void End();

  /// Microseconds since construction (live reads are fine).
  double elapsed_us() const;

 private:
  std::chrono::steady_clock::time_point start_;
  size_t frame_index_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace dbg4eth

#endif  // DBG4ETH_OBS_TRACE_H_
