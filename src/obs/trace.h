#ifndef DBG4ETH_OBS_TRACE_H_
#define DBG4ETH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dbg4eth {
namespace obs {

/// \brief One finished span in a timing tree. Offsets and durations are
/// microseconds on the steady clock; `start_us` is relative to the root
/// span's start, so siblings order by it and a child's
/// [start_us, start_us + duration_us] interval nests inside its parent's.
struct SpanNode {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
  std::vector<SpanNode> children;
};

/// First span named `name` in a depth-first walk of `root`, or nullptr.
const SpanNode* FindSpan(const SpanNode& root, const std::string& name);

/// Depth-first span names of the tree (root first).
std::vector<std::string> SpanNames(const SpanNode& root);

/// Indented multi-line rendering, one span per line:
///   score_cold                      312845.2us
///     materialize                    88211.7us  (+0.4us)
std::string FormatSpanTree(const SpanNode& root);

struct TracerConfig {
  /// Finished root trees retained (ring buffer: oldest evicted first).
  size_t buffer_capacity = 64;
  /// Keep the 1st, (n+1)th, (2n+1)th... finished root; 1 keeps every
  /// root, 0 keeps none. Sampling bounds the cost of bursty producers
  /// (training loops emitting thousands of roots) without losing the
  /// first tree of a fresh run.
  uint64_t sample_every_n = 1;
};

/// \brief Bounded buffer of sampled, finished span trees.
///
/// Span structure is accumulated per thread with no synchronization (see
/// TraceSpan); the tracer is only touched when a *root* span finishes,
/// under one short lock. Snapshot copies the retained trees out.
class Tracer {
 public:
  explicit Tracer(const TracerConfig& config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer all library spans record into.
  static Tracer* Global();

  /// Disabled tracers drop roots at finish time (spans still run, so
  /// nesting stays consistent across an enable flip).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void SetSampleEveryN(uint64_t n) {
    sample_every_n_.store(n, std::memory_order_relaxed);
  }

  /// Drops retained trees and resets the sampling phase (so the next
  /// finished root is kept again).
  void Clear();

  /// Root spans finished so far (sampled or not).
  uint64_t roots_finished() const {
    return roots_finished_.load(std::memory_order_relaxed);
  }

  /// Retained trees, oldest first.
  std::vector<SpanNode> Snapshot() const;

  /// Newest retained root with this name, if any.
  std::optional<SpanNode> LatestRoot(const std::string& name) const;

  /// Called by TraceSpan when a root finishes; applies sampling. Public
  /// so tests can inject hand-built trees.
  void RecordRoot(SpanNode&& root);

 private:
  TracerConfig config_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> sample_every_n_;
  std::atomic<uint64_t> roots_finished_{0};
  mutable std::mutex mu_;
  std::deque<SpanNode> ring_;
};

/// \brief RAII timing scope. Spans opened while another span is active on
/// the same thread become its children; the outermost span is the root
/// and delivers the finished tree to its tracer (sampled). Spans must be
/// stack-ordered per thread — natural with scoped locals. Creation costs
/// one steady-clock read; finishing costs another plus a small tree node,
/// so spans belong on ms-scale operations, not nanosecond hot paths.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals). Null tracer = Global.
  explicit TraceSpan(const char* name, Tracer* tracer = nullptr);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Finishes the span before scope exit (idempotent).
  void End();

  /// Microseconds since construction (live reads are fine).
  double elapsed_us() const;

 private:
  std::chrono::steady_clock::time_point start_;
  size_t frame_index_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace dbg4eth

#endif  // DBG4ETH_OBS_TRACE_H_
