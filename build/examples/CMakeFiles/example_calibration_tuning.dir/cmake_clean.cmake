file(REMOVE_RECURSE
  "CMakeFiles/example_calibration_tuning.dir/calibration_tuning.cpp.o"
  "CMakeFiles/example_calibration_tuning.dir/calibration_tuning.cpp.o.d"
  "example_calibration_tuning"
  "example_calibration_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_calibration_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
