# Empty dependencies file for example_calibration_tuning.
# This may be replaced when dependencies are built.
