# Empty compiler generated dependencies file for example_phishing_investigation.
# This may be replaced when dependencies are built.
