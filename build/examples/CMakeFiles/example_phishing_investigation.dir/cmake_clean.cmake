file(REMOVE_RECURSE
  "CMakeFiles/example_phishing_investigation.dir/phishing_investigation.cpp.o"
  "CMakeFiles/example_phishing_investigation.dir/phishing_investigation.cpp.o.d"
  "example_phishing_investigation"
  "example_phishing_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_phishing_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
