file(REMOVE_RECURSE
  "CMakeFiles/example_import_real_data.dir/import_real_data.cpp.o"
  "CMakeFiles/example_import_real_data.dir/import_real_data.cpp.o.d"
  "example_import_real_data"
  "example_import_real_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_import_real_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
