# Empty dependencies file for example_import_real_data.
# This may be replaced when dependencies are built.
