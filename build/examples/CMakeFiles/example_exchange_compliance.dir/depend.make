# Empty dependencies file for example_exchange_compliance.
# This may be replaced when dependencies are built.
