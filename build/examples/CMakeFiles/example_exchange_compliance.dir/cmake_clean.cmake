file(REMOVE_RECURSE
  "CMakeFiles/example_exchange_compliance.dir/exchange_compliance.cpp.o"
  "CMakeFiles/example_exchange_compliance.dir/exchange_compliance.cpp.o.d"
  "example_exchange_compliance"
  "example_exchange_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_exchange_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
