
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/augment_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/augment_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/augment_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/calib_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/calib_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/calib_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/csv_ledger_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/csv_ledger_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/csv_ledger_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/embed_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/embed_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/embed_test.cc.o.d"
  "/root/repo/tests/encoder_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/encoder_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/encoder_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/gnn_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/gnn_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/gnn_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ledger_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/ledger_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/multiclass_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/multiclass_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/multiclass_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sampling_dataset_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/sampling_dataset_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/sampling_dataset_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/tree_behavior_test.cc" "tests/CMakeFiles/dbg4eth_tests.dir/tree_behavior_test.cc.o" "gcc" "tests/CMakeFiles/dbg4eth_tests.dir/tree_behavior_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dbg4eth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
