# Empty compiler generated dependencies file for dbg4eth_tests.
# This may be replaced when dependencies are built.
