# Empty compiler generated dependencies file for dbg4eth.
# This may be replaced when dependencies are built.
