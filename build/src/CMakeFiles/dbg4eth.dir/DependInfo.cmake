
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/augment/augmentation.cc" "src/CMakeFiles/dbg4eth.dir/augment/augmentation.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/augment/augmentation.cc.o.d"
  "/root/repo/src/augment/contrastive.cc" "src/CMakeFiles/dbg4eth.dir/augment/contrastive.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/augment/contrastive.cc.o.d"
  "/root/repo/src/calib/adaptive.cc" "src/CMakeFiles/dbg4eth.dir/calib/adaptive.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/calib/adaptive.cc.o.d"
  "/root/repo/src/calib/ece.cc" "src/CMakeFiles/dbg4eth.dir/calib/ece.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/calib/ece.cc.o.d"
  "/root/repo/src/calib/nonparametric.cc" "src/CMakeFiles/dbg4eth.dir/calib/nonparametric.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/calib/nonparametric.cc.o.d"
  "/root/repo/src/calib/parametric.cc" "src/CMakeFiles/dbg4eth.dir/calib/parametric.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/calib/parametric.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dbg4eth.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/logging.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/dbg4eth.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dbg4eth.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/dbg4eth.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dbg4eth.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dbg4eth.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/dbg4eth.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/dbg4eth.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/dbg4eth.cc" "src/CMakeFiles/dbg4eth.dir/core/dbg4eth.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/dbg4eth.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/dbg4eth.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/gsg_encoder.cc" "src/CMakeFiles/dbg4eth.dir/core/gsg_encoder.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/gsg_encoder.cc.o.d"
  "/root/repo/src/core/ldg_encoder.cc" "src/CMakeFiles/dbg4eth.dir/core/ldg_encoder.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/ldg_encoder.cc.o.d"
  "/root/repo/src/core/multiclass.cc" "src/CMakeFiles/dbg4eth.dir/core/multiclass.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/core/multiclass.cc.o.d"
  "/root/repo/src/embed/graph_embedding.cc" "src/CMakeFiles/dbg4eth.dir/embed/graph_embedding.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/embed/graph_embedding.cc.o.d"
  "/root/repo/src/embed/random_walk.cc" "src/CMakeFiles/dbg4eth.dir/embed/random_walk.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/embed/random_walk.cc.o.d"
  "/root/repo/src/embed/skipgram.cc" "src/CMakeFiles/dbg4eth.dir/embed/skipgram.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/embed/skipgram.cc.o.d"
  "/root/repo/src/eth/csv_ledger.cc" "src/CMakeFiles/dbg4eth.dir/eth/csv_ledger.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/eth/csv_ledger.cc.o.d"
  "/root/repo/src/eth/dataset.cc" "src/CMakeFiles/dbg4eth.dir/eth/dataset.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/eth/dataset.cc.o.d"
  "/root/repo/src/eth/label_store.cc" "src/CMakeFiles/dbg4eth.dir/eth/label_store.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/eth/label_store.cc.o.d"
  "/root/repo/src/eth/ledger.cc" "src/CMakeFiles/dbg4eth.dir/eth/ledger.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/eth/ledger.cc.o.d"
  "/root/repo/src/eth/types.cc" "src/CMakeFiles/dbg4eth.dir/eth/types.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/eth/types.cc.o.d"
  "/root/repo/src/features/analysis.cc" "src/CMakeFiles/dbg4eth.dir/features/analysis.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/features/analysis.cc.o.d"
  "/root/repo/src/features/node_features.cc" "src/CMakeFiles/dbg4eth.dir/features/node_features.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/features/node_features.cc.o.d"
  "/root/repo/src/gnn/conv.cc" "src/CMakeFiles/dbg4eth.dir/gnn/conv.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/conv.cc.o.d"
  "/root/repo/src/gnn/diffpool.cc" "src/CMakeFiles/dbg4eth.dir/gnn/diffpool.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/diffpool.cc.o.d"
  "/root/repo/src/gnn/gru.cc" "src/CMakeFiles/dbg4eth.dir/gnn/gru.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/gru.cc.o.d"
  "/root/repo/src/gnn/hier_attention.cc" "src/CMakeFiles/dbg4eth.dir/gnn/hier_attention.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/hier_attention.cc.o.d"
  "/root/repo/src/gnn/linear.cc" "src/CMakeFiles/dbg4eth.dir/gnn/linear.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/linear.cc.o.d"
  "/root/repo/src/gnn/transformer.cc" "src/CMakeFiles/dbg4eth.dir/gnn/transformer.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/gnn/transformer.cc.o.d"
  "/root/repo/src/graph/build.cc" "src/CMakeFiles/dbg4eth.dir/graph/build.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/graph/build.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/dbg4eth.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/dbg4eth.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/CMakeFiles/dbg4eth.dir/graph/sampling.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/graph/sampling.cc.o.d"
  "/root/repo/src/ml/ensemble.cc" "src/CMakeFiles/dbg4eth.dir/ml/ensemble.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/ensemble.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/CMakeFiles/dbg4eth.dir/ml/gbdt.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/dbg4eth.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/CMakeFiles/dbg4eth.dir/ml/mlp.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/mlp.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/CMakeFiles/dbg4eth.dir/ml/split.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/split.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/CMakeFiles/dbg4eth.dir/ml/tree.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/ml/tree.cc.o.d"
  "/root/repo/src/tensor/gradcheck.cc" "src/CMakeFiles/dbg4eth.dir/tensor/gradcheck.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/gradcheck.cc.o.d"
  "/root/repo/src/tensor/init.cc" "src/CMakeFiles/dbg4eth.dir/tensor/init.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/init.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/dbg4eth.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/dbg4eth.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/optimizer.cc" "src/CMakeFiles/dbg4eth.dir/tensor/optimizer.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/optimizer.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/CMakeFiles/dbg4eth.dir/tensor/serialize.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/serialize.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/dbg4eth.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/dbg4eth.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
