file(REMOVE_RECURSE
  "libdbg4eth.a"
)
