file(REMOVE_RECURSE
  "../bench/bench_fig5_category_features"
  "../bench/bench_fig5_category_features.pdb"
  "CMakeFiles/bench_fig5_category_features.dir/bench_fig5_category_features.cc.o"
  "CMakeFiles/bench_fig5_category_features.dir/bench_fig5_category_features.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_category_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
