# Empty compiler generated dependencies file for bench_fig5_category_features.
# This may be replaced when dependencies are built.
