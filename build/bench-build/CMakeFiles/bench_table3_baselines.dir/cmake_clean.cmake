file(REMOVE_RECURSE
  "../bench/bench_table3_baselines"
  "../bench/bench_table3_baselines.pdb"
  "CMakeFiles/bench_table3_baselines.dir/bench_table3_baselines.cc.o"
  "CMakeFiles/bench_table3_baselines.dir/bench_table3_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
