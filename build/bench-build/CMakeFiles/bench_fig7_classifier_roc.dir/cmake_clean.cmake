file(REMOVE_RECURSE
  "../bench/bench_fig7_classifier_roc"
  "../bench/bench_fig7_classifier_roc.pdb"
  "CMakeFiles/bench_fig7_classifier_roc.dir/bench_fig7_classifier_roc.cc.o"
  "CMakeFiles/bench_fig7_classifier_roc.dir/bench_fig7_classifier_roc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_classifier_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
