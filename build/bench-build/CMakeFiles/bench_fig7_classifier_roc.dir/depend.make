# Empty dependencies file for bench_fig7_classifier_roc.
# This may be replaced when dependencies are built.
