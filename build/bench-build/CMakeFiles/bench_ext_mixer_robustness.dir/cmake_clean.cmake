file(REMOVE_RECURSE
  "../bench/bench_ext_mixer_robustness"
  "../bench/bench_ext_mixer_robustness.pdb"
  "CMakeFiles/bench_ext_mixer_robustness.dir/bench_ext_mixer_robustness.cc.o"
  "CMakeFiles/bench_ext_mixer_robustness.dir/bench_ext_mixer_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mixer_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
