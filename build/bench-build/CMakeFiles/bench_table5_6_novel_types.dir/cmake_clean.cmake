file(REMOVE_RECURSE
  "../bench/bench_table5_6_novel_types"
  "../bench/bench_table5_6_novel_types.pdb"
  "CMakeFiles/bench_table5_6_novel_types.dir/bench_table5_6_novel_types.cc.o"
  "CMakeFiles/bench_table5_6_novel_types.dir/bench_table5_6_novel_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_6_novel_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
