# Empty dependencies file for bench_table5_6_novel_types.
# This may be replaced when dependencies are built.
