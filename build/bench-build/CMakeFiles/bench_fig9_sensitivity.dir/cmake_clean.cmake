file(REMOVE_RECURSE
  "../bench/bench_fig9_sensitivity"
  "../bench/bench_fig9_sensitivity.pdb"
  "CMakeFiles/bench_fig9_sensitivity.dir/bench_fig9_sensitivity.cc.o"
  "CMakeFiles/bench_fig9_sensitivity.dir/bench_fig9_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
