# Empty dependencies file for bench_fig9_sensitivity.
# This may be replaced when dependencies are built.
