file(REMOVE_RECURSE
  "../bench/bench_fig6_calibration_weights"
  "../bench/bench_fig6_calibration_weights.pdb"
  "CMakeFiles/bench_fig6_calibration_weights.dir/bench_fig6_calibration_weights.cc.o"
  "CMakeFiles/bench_fig6_calibration_weights.dir/bench_fig6_calibration_weights.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_calibration_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
