# Empty dependencies file for bench_fig6_calibration_weights.
# This may be replaced when dependencies are built.
