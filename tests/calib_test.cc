#include <gtest/gtest.h>

#include <cmath>

#include "calib/adaptive.h"
#include "calib/ece.h"
#include "calib/nonparametric.h"
#include "calib/parametric.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace dbg4eth {
namespace calib {
namespace {

/// Synthetic miscalibrated data: true P(y=1|s) = sigmoid(4*(s-0.5)) but the
/// model reports s directly, so raw scores are overconfident near 0/1.
void MakeOverconfident(int n, uint64_t seed, std::vector<double>* scores,
                       std::vector<int>* labels) {
  Rng rng(seed);
  scores->clear();
  labels->clear();
  for (int i = 0; i < n; ++i) {
    const double s = rng.Uniform();
    const double true_p = Sigmoid(4.0 * (s - 0.5));
    scores->push_back(s * s * (3 - 2 * s));  // smoothstep: overconfident
    labels->push_back(rng.Bernoulli(true_p) ? 1 : 0);
  }
}

class CalibratorParamTest
    : public ::testing::TestWithParam<int> {};

TEST_P(CalibratorParamTest, ReducesEceOnMiscalibratedData) {
  auto calibrators = MakeAllCalibrators();
  ASSERT_LT(static_cast<size_t>(GetParam()), calibrators.size());
  Calibrator& cal = *calibrators[GetParam()];

  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(2000, 1234, &scores, &labels);
  ASSERT_TRUE(cal.Fit(scores, labels).ok());

  // Evaluate on held-out data from the same distribution.
  std::vector<double> test_scores;
  std::vector<int> test_labels;
  MakeOverconfident(2000, 777, &test_scores, &test_labels);
  const double before =
      ExpectedCalibrationError(test_scores, test_labels);
  const double after = ExpectedCalibrationError(
      cal.CalibrateAll(test_scores), test_labels);
  EXPECT_LT(after, before) << cal.name();
}

TEST_P(CalibratorParamTest, OutputsValidProbabilities) {
  auto calibrators = MakeAllCalibrators();
  Calibrator& cal = *calibrators[GetParam()];
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(400, 5, &scores, &labels);
  ASSERT_TRUE(cal.Fit(scores, labels).ok());
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    const double p = cal.Calibrate(s);
    EXPECT_GE(p, 0.0) << cal.name();
    EXPECT_LE(p, 1.0) << cal.name();
  }
}

TEST_P(CalibratorParamTest, RejectsBadInput) {
  auto calibrators = MakeAllCalibrators();
  Calibrator& cal = *calibrators[GetParam()];
  EXPECT_FALSE(cal.Fit({}, {}).ok());
  EXPECT_FALSE(cal.Fit({0.5, 0.6}, {1}).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSixMethods, CalibratorParamTest,
                         ::testing::Range(0, 6));

TEST(CalibratorSuiteTest, FamilySplitIsThreeAndThree) {
  auto calibrators = MakeAllCalibrators();
  ASSERT_EQ(calibrators.size(), 6u);
  int parametric = 0;
  for (const auto& c : calibrators) parametric += c->parametric() ? 1 : 0;
  EXPECT_EQ(parametric, 3);
}

TEST(TemperatureScalingTest, RecoversIdentityWhenCalibrated) {
  // Perfectly calibrated data: fitted T should stay near 1 and the map
  // near-identity.
  Rng rng(9);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    const double s = rng.Uniform();
    scores.push_back(s);
    labels.push_back(rng.Bernoulli(s) ? 1 : 0);
  }
  TemperatureScaling ts;
  ASSERT_TRUE(ts.Fit(scores, labels).ok());
  EXPECT_NEAR(ts.temperature(), 1.0, 0.25);
  EXPECT_NEAR(ts.Calibrate(0.7), 0.7, 0.05);
}

TEST(IsotonicTest, MonotonicOutput) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(600, 31, &scores, &labels);
  IsotonicRegression iso;
  ASSERT_TRUE(iso.Fit(scores, labels).ok());
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.01) {
    const double p = iso.Calibrate(s);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(HistogramBinningTest, EmptyBinUsesPrior) {
  // All training scores in [0, 0.1): other bins fall back to midpoints.
  std::vector<double> scores(50, 0.05);
  std::vector<int> labels(50, 1);
  HistogramBinning hb(10);
  ASSERT_TRUE(hb.Fit(scores, labels).ok());
  EXPECT_NEAR(hb.Calibrate(0.95), 0.95, 0.01);  // prior midpoint of last bin
  EXPECT_GT(hb.Calibrate(0.05), 0.9);           // observed all-positive bin
}

TEST(EceTest, PerfectCalibrationNearZero) {
  Rng rng(17);
  std::vector<double> probs;
  std::vector<int> labels;
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.Uniform();
    probs.push_back(p);
    labels.push_back(rng.Bernoulli(p) ? 1 : 0);
  }
  EXPECT_LT(ExpectedCalibrationError(probs, labels), 0.03);
}

TEST(EceTest, ConstantOverconfidentIsLarge) {
  // Predicts 0.99 for everything on a 50/50 dataset.
  std::vector<double> probs(1000, 0.99);
  std::vector<int> labels(1000, 0);
  for (int i = 0; i < 500; ++i) labels[i] = 1;
  EXPECT_NEAR(ExpectedCalibrationError(probs, labels), 0.49, 0.01);
}

TEST(EceTest, ReliabilityDiagramMassSumsToOne) {
  Rng rng(19);
  std::vector<double> probs;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    probs.push_back(rng.Uniform());
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  auto bins = ReliabilityDiagram(probs, labels, 10);
  double mass = 0.0;
  for (const auto& b : bins) mass += b.fraction;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(AdaptiveCalibratorTest, FitsAllSixAndNormalizesWeights) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(1500, 23, &scores, &labels);
  AdaptiveCalibrator ada;
  ASSERT_TRUE(ada.Fit(scores, labels).ok());
  ASSERT_EQ(ada.methods().size(), 6u);
  double weight_sum = 0.0;
  for (const auto& m : ada.methods()) weight_sum += m.weight;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(AdaptiveCalibratorTest, ImprovesEce) {
  std::vector<double> scores, test_scores;
  std::vector<int> labels, test_labels;
  MakeOverconfident(2000, 29, &scores, &labels);
  MakeOverconfident(2000, 31, &test_scores, &test_labels);
  AdaptiveCalibrator ada;
  ASSERT_TRUE(ada.Fit(scores, labels).ok());
  const double before = ExpectedCalibrationError(test_scores, test_labels);
  const double after = ExpectedCalibrationError(
      ada.CalibrateAll(test_scores), test_labels);
  EXPECT_LT(after, before);
}

TEST(AdaptiveCalibratorTest, FamilyToggles) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(800, 37, &scores, &labels);

  AdaptiveCalibratorConfig param_only;
  param_only.use_nonparametric = false;
  AdaptiveCalibrator ada_param(param_only);
  ASSERT_TRUE(ada_param.Fit(scores, labels).ok());
  EXPECT_EQ(ada_param.methods().size(), 3u);
  for (const auto& m : ada_param.methods()) EXPECT_TRUE(m.parametric);

  AdaptiveCalibratorConfig none;
  none.use_parametric = false;
  none.use_nonparametric = false;
  AdaptiveCalibrator ada_none(none);
  EXPECT_FALSE(ada_none.Fit(scores, labels).ok());
}

TEST(AdaptiveCalibratorTest, NonAdaptiveUniformWithinFamily) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(800, 41, &scores, &labels);
  AdaptiveCalibratorConfig config;
  config.adaptive_parametric = false;
  config.adaptive_nonparametric = false;
  AdaptiveCalibrator ada(config);
  ASSERT_TRUE(ada.Fit(scores, labels).ok());
  // Within each family all weights equal.
  double param_w = 1e300, nonparam_w = 1e300;
  for (const auto& m : ada.methods()) {
    double& ref = m.parametric ? param_w : nonparam_w;
    if (ref == 1e300) {
      ref = m.weight;
    } else {
      EXPECT_NEAR(m.weight, ref, 1e-12);
    }
  }
}

TEST(AdaptiveCalibratorTest, OutputsInUnitInterval) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeOverconfident(600, 43, &scores, &labels);
  AdaptiveCalibrator ada;
  ASSERT_TRUE(ada.Fit(scores, labels).ok());
  for (double s = 0.0; s <= 1.0; s += 0.02) {
    const double p = ada.Calibrate(s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace calib
}  // namespace dbg4eth
