#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbg4eth {
namespace obs {
namespace {

// --------------------------------------------------------------------------
// Counter / Gauge
// --------------------------------------------------------------------------

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 100000; ++i) counter.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 800000u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.0);
  gauge.Add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.5);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // Integer-valued doubles below 2^53 add exactly, so the CAS loop must
  // not lose a single increment.
  EXPECT_DOUBLE_EQ(gauge.Value(), 4000.0);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

HistogramConfig SmallConfig() {
  HistogramConfig config;
  config.min_value = 1.0;
  config.growth = 2.0;
  config.num_buckets = 4;  // Bounds 1, 2, 4, 8, 16, +Inf.
  return config;
}

TEST(HistogramTest, TracksExactCountSumMinMax) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(i);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
}

TEST(HistogramTest, PercentilesAreOrderedAndWithinBucketError) {
  Histogram histogram;  // Default latency layout: +-9% bucket error.
  for (int i = 1; i <= 100; ++i) histogram.Record(i);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  const double p50 = snap.Percentile(0.50);
  const double p95 = snap.Percentile(0.95);
  const double p99 = snap.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 50.0, 50.0 * 0.10);
  EXPECT_NEAR(p95, 95.0, 95.0 * 0.10);
  EXPECT_NEAR(p99, 99.0, 99.0 * 0.10);
  // Quantiles never escape the observed range.
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, UnderflowAndOverflowLandInEdgeBuckets) {
  Histogram histogram(SmallConfig());
  histogram.Record(0.01);  // Below min_value: underflow bucket.
  histogram.Record(1e9);   // Above the top bound: overflow bucket.
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets.front(), 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // Underflow quantile reports the observed min, overflow the observed
  // max (those buckets have no usable midpoint).
  EXPECT_DOUBLE_EQ(snap.Percentile(0.25), 0.01);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 1e9);
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 10000; ++i) {
        histogram.Record(static_cast<double>(i % 100 + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 80000u);
  // 8 threads x 100 full cycles of sum(1..100) = 8 * 100 * 5050; every
  // addend is an integer-valued double, so the striped sums are exact.
  EXPECT_DOUBLE_EQ(snap.sum, 4040000.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ScopedTimerTest, RecordsOnceIntoHistogram) {
  Histogram histogram;
  {
    ScopedTimer timer(&histogram);
    timer.Stop();
    timer.Stop();  // Idempotent: the destructor must not record again.
  }
  EXPECT_EQ(histogram.Count(), 1u);
  ScopedTimer noop(nullptr);  // Null histogram: records nowhere.
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a1 = registry.CounterAt("a_total", "help", {{"k", "1"}});
  Counter* a2 = registry.CounterAt("a_total", "help", {{"k", "1"}});
  Counter* b = registry.CounterAt("a_total", "help", {{"k", "2"}});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  Histogram* h1 = registry.HistogramAt("h_us", "help");
  Histogram* h2 = registry.HistogramAt("h_us", "help");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.CounterAt("zzz_total", "last");
  registry.GaugeAt("aaa_depth", "first");
  registry.CounterAt("mmm_total", "middle", {{"b", "2"}});
  registry.CounterAt("mmm_total", "middle", {{"a", "1"}});
  const auto families = registry.TakeSnapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aaa_depth");
  EXPECT_EQ(families[1].name, "mmm_total");
  EXPECT_EQ(families[2].name, "zzz_total");
  ASSERT_EQ(families[1].instruments.size(), 2u);
  EXPECT_LT(families[1].instruments[0].labels,
            families[1].instruments[1].labels);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndRecordsAreSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string label = std::to_string(t % 2);
      for (int i = 0; i < 1000; ++i) {
        registry.CounterAt("hammer_total", "help", {{"shard", label}})->Inc();
        registry.HistogramAt("hammer_us", "help")->Record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  for (const auto& family : registry.TakeSnapshot()) {
    if (family.name != "hammer_total") continue;
    for (const auto& inst : family.instruments) total += inst.counter_value;
  }
  EXPECT_EQ(total, 8000u);
  EXPECT_EQ(registry.HistogramAt("hammer_us", "help")->Count(), 8000u);
}

TEST(RenderLabelsTest, FormatsPrometheusStyle) {
  EXPECT_EQ(RenderLabels({}), "");
  EXPECT_EQ(RenderLabels({{"path", "cold"}}), "{path=\"cold\"}");
  EXPECT_EQ(RenderLabels({{"a", "1"}, {"b", "2"}}), "{a=\"1\",b=\"2\"}");
}

// --------------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------------

TEST(TraceSpanTest, NestedScopesBuildOrderedTree) {
  Tracer tracer;
  {
    TraceSpan root("root", &tracer);
    {
      TraceSpan a("a");
      { TraceSpan g("g"); }
    }
    { TraceSpan b("b"); }
  }
  const auto tree = tracer.LatestRoot("root");
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(SpanNames(*tree),
            (std::vector<std::string>{"root", "a", "g", "b"}));
  ASSERT_EQ(tree->children.size(), 2u);
  const SpanNode& a = tree->children[0];
  const SpanNode& b = tree->children[1];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(b.name, "b");
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].name, "g");
  // Siblings are ordered by start and nested intervals stay inside the
  // parent.
  EXPECT_GE(b.start_us, a.start_us);
  EXPECT_GE(a.duration_us, a.children[0].duration_us);
  EXPECT_LE(a.duration_us + b.duration_us, tree->duration_us + 1e-6);
  const SpanNode* g = FindSpan(*tree, "g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(FindSpan(*tree, "missing"), nullptr);
  EXPECT_FALSE(FormatSpanTree(*tree).empty());
}

TEST(TraceSpanTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  TraceSpan root("root", &tracer);
  root.End();
  root.End();
  EXPECT_EQ(tracer.roots_finished(), 1u);
  EXPECT_GE(root.elapsed_us(), 0.0);
}

TEST(TracerTest, SamplingKeepsFirstAndEveryNth) {
  TracerConfig config;
  config.buffer_capacity = 64;
  Tracer tracer(config);
  tracer.SetSampleEveryN(3);
  for (int i = 0; i < 7; ++i) {
    SpanNode node;
    node.name = "r" + std::to_string(i);
    tracer.RecordRoot(std::move(node));
  }
  EXPECT_EQ(tracer.roots_finished(), 7u);
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 3u);  // Roots 0, 3, 6.
  EXPECT_EQ(kept[0].name, "r0");
  EXPECT_EQ(kept[1].name, "r3");
  EXPECT_EQ(kept[2].name, "r6");
}

TEST(TracerTest, RingEvictsOldestBeyondCapacity) {
  TracerConfig config;
  config.buffer_capacity = 4;
  Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    SpanNode node;
    node.name = "r" + std::to_string(i);
    tracer.RecordRoot(std::move(node));
  }
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().name, "r6");  // Oldest retained first.
  EXPECT_EQ(kept.back().name, "r9");
}

TEST(TracerTest, DisabledTracerDropsRootsButCounts) {
  Tracer tracer;
  tracer.SetEnabled(false);
  SpanNode node;
  node.name = "dropped";
  tracer.RecordRoot(std::move(node));
  EXPECT_EQ(tracer.roots_finished(), 1u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.SetEnabled(true);
  SpanNode kept;
  kept.name = "kept";
  tracer.RecordRoot(std::move(kept));
  EXPECT_TRUE(tracer.LatestRoot("kept").has_value());
}

TEST(TracerTest, ClearResetsRetainedTreesAndSamplingPhase) {
  Tracer tracer;
  tracer.SetSampleEveryN(5);
  SpanNode first;
  first.name = "first";
  tracer.RecordRoot(std::move(first));
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  // The sampling phase restarted, so the very next root is kept again.
  SpanNode next;
  next.name = "next";
  tracer.RecordRoot(std::move(next));
  EXPECT_TRUE(tracer.LatestRoot("next").has_value());
}

TEST(TracerTest, ConcurrentRootsFromManyThreadsAreRetained) {
  TracerConfig config;
  config.buffer_capacity = 1024;
  Tracer tracer(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan root("worker_root", &tracer);
        TraceSpan child("worker_child");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.roots_finished(), 400u);
  EXPECT_EQ(tracer.Snapshot().size(), 400u);
}

// --------------------------------------------------------------------------
// Exporters
// --------------------------------------------------------------------------

/// A registry with one family of each kind and known contents.
void FillSampleRegistry(MetricsRegistry* registry) {
  registry->CounterAt("events_total", "Test events", {{"kind", "a"}})->Inc(3);
  registry->CounterAt("events_total", "Test events", {{"kind", "b"}})->Inc(1);
  registry->GaugeAt("queue_depth", "Depth")->Set(2.5);
  Histogram* hist =
      registry->HistogramAt("lat_us", "Latency", {}, SmallConfig());
  hist->Record(0.5);    // Underflow bucket (le="1").
  hist->Record(3.0);    // Bucket le="4".
  hist->Record(100.0);  // Overflow bucket (le="+Inf").
}

TEST(TextExpositionTest, MatchesGoldenOutput) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  const std::string expected =
      "# HELP events_total Test events\n"
      "# TYPE events_total counter\n"
      "events_total{kind=\"a\"} 3\n"
      "events_total{kind=\"b\"} 1\n"
      "# HELP lat_us Latency\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"4\"} 2\n"
      "lat_us_bucket{le=\"+Inf\"} 3\n"
      "lat_us_sum 103.5\n"
      "lat_us_count 3\n"
      "# HELP queue_depth Depth\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2.5\n";
  EXPECT_EQ(TextExposition(&registry), expected);
}

TEST(JsonSnapshotTest, ContainsMetricsAndSpans) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  Tracer tracer;
  {
    TraceSpan root("score_cold", &tracer);
    TraceSpan child("materialize");
  }
  const std::string json = JsonSnapshot(&registry, &tracer);
  EXPECT_NE(json.find("\"name\": \"events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"score_cold\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"materialize\""), std::string::npos);
}

TEST(JsonSnapshotTest, DumpJsonWritesFile) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  Tracer tracer;
  const std::string path = testing::TempDir() + "/obs_dump_test.json";
  ASSERT_TRUE(DumpJson(path, &registry, &tracer).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_EQ(contents.front(), '{');
  EXPECT_EQ(contents, JsonSnapshot(&registry, &tracer));
  std::remove(path.c_str());
}

TEST(SummaryLineTest, ListsEveryInstrument) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  const std::string line = SummaryLine(&registry);
  EXPECT_NE(line.find("events_total{kind=\"a\"}=3"), std::string::npos);
  EXPECT_NE(line.find("queue_depth=2.5"), std::string::npos);
  EXPECT_NE(line.find("lat_us[n=3"), std::string::npos);
}

TEST(StatsLoggerTest, EmitsAtLeastOnceBeforeStop) {
  MetricsRegistry registry;
  std::atomic<int> emissions{0};
  StatsLoggerConfig config;
  config.interval_ms = 5;
  config.registry = &registry;
  config.formatter = [&emissions](const MetricsRegistry*) {
    emissions.fetch_add(1);
    return std::string("test summary");
  };
  {
    StatsLogger logger(config);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Stop always emits one final line, so short runs still log.
  EXPECT_GE(emissions.load(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace dbg4eth
