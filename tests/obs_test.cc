#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace dbg4eth {
namespace obs {
namespace {

// --------------------------------------------------------------------------
// Counter / Gauge
// --------------------------------------------------------------------------

TEST(CounterTest, IncrementsMonotonically) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 100000; ++i) counter.Inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 800000u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.0);
  gauge.Add(-2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.5);
}

TEST(GaugeTest, ConcurrentAddsAreExact) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 1000; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // Integer-valued doubles below 2^53 add exactly, so the CAS loop must
  // not lose a single increment.
  EXPECT_DOUBLE_EQ(gauge.Value(), 4000.0);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

HistogramConfig SmallConfig() {
  HistogramConfig config;
  config.min_value = 1.0;
  config.growth = 2.0;
  config.num_buckets = 4;  // Bounds 1, 2, 4, 8, 16, +Inf.
  return config;
}

TEST(HistogramTest, TracksExactCountSumMinMax) {
  Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.Record(i);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 50.5);
}

TEST(HistogramTest, PercentilesAreOrderedAndWithinBucketError) {
  Histogram histogram;  // Default latency layout: +-9% bucket error.
  for (int i = 1; i <= 100; ++i) histogram.Record(i);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  const double p50 = snap.Percentile(0.50);
  const double p95 = snap.Percentile(0.95);
  const double p99 = snap.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_NEAR(p50, 50.0, 50.0 * 0.10);
  EXPECT_NEAR(p95, 95.0, 95.0 * 0.10);
  EXPECT_NEAR(p99, 99.0, 99.0 * 0.10);
  // Quantiles never escape the observed range.
  EXPECT_GE(p50, snap.min);
  EXPECT_LE(p99, snap.max);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, UnderflowAndOverflowLandInEdgeBuckets) {
  Histogram histogram(SmallConfig());
  histogram.Record(0.01);  // Below min_value: underflow bucket.
  histogram.Record(1e9);   // Above the top bound: overflow bucket.
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets.front(), 1u);
  EXPECT_EQ(snap.buckets.back(), 1u);
  // Underflow quantile reports the observed min, overflow the observed
  // max (those buckets have no usable midpoint).
  EXPECT_DOUBLE_EQ(snap.Percentile(0.25), 0.01);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 1e9);
}

TEST(HistogramTest, ConcurrentRecordsAreExact) {
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 10000; ++i) {
        histogram.Record(static_cast<double>(i % 100 + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 80000u);
  // 8 threads x 100 full cycles of sum(1..100) = 8 * 100 * 5050; every
  // addend is an integer-valued double, so the striped sums are exact.
  EXPECT_DOUBLE_EQ(snap.sum, 4040000.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ScopedTimerTest, RecordsOnceIntoHistogram) {
  Histogram histogram;
  {
    ScopedTimer timer(&histogram);
    timer.Stop();
    timer.Stop();  // Idempotent: the destructor must not record again.
  }
  EXPECT_EQ(histogram.Count(), 1u);
  ScopedTimer noop(nullptr);  // Null histogram: records nowhere.
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a1 = registry.CounterAt("a_total", "help", {{"k", "1"}});
  Counter* a2 = registry.CounterAt("a_total", "help", {{"k", "1"}});
  Counter* b = registry.CounterAt("a_total", "help", {{"k", "2"}});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  Histogram* h1 = registry.HistogramAt("h_us", "help");
  Histogram* h2 = registry.HistogramAt("h_us", "help");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.CounterAt("zzz_total", "last");
  registry.GaugeAt("aaa_depth", "first");
  registry.CounterAt("mmm_total", "middle", {{"b", "2"}});
  registry.CounterAt("mmm_total", "middle", {{"a", "1"}});
  const auto families = registry.TakeSnapshot();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0].name, "aaa_depth");
  EXPECT_EQ(families[1].name, "mmm_total");
  EXPECT_EQ(families[2].name, "zzz_total");
  ASSERT_EQ(families[1].instruments.size(), 2u);
  EXPECT_LT(families[1].instruments[0].labels,
            families[1].instruments[1].labels);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndRecordsAreSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string label = std::to_string(t % 2);
      for (int i = 0; i < 1000; ++i) {
        registry.CounterAt("hammer_total", "help", {{"shard", label}})->Inc();
        registry.HistogramAt("hammer_us", "help")->Record(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  for (const auto& family : registry.TakeSnapshot()) {
    if (family.name != "hammer_total") continue;
    for (const auto& inst : family.instruments) total += inst.counter_value;
  }
  EXPECT_EQ(total, 8000u);
  EXPECT_EQ(registry.HistogramAt("hammer_us", "help")->Count(), 8000u);
}

TEST(RenderLabelsTest, FormatsPrometheusStyle) {
  EXPECT_EQ(RenderLabels({}), "");
  EXPECT_EQ(RenderLabels({{"path", "cold"}}), "{path=\"cold\"}");
  EXPECT_EQ(RenderLabels({{"a", "1"}, {"b", "2"}}), "{a=\"1\",b=\"2\"}");
}

// --------------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------------

TEST(TraceSpanTest, NestedScopesBuildOrderedTree) {
  Tracer tracer;
  {
    TraceSpan root("root", &tracer);
    {
      TraceSpan a("a");
      { TraceSpan g("g"); }
    }
    { TraceSpan b("b"); }
  }
  const auto tree = tracer.LatestRoot("root");
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(SpanNames(*tree),
            (std::vector<std::string>{"root", "a", "g", "b"}));
  ASSERT_EQ(tree->children.size(), 2u);
  const SpanNode& a = tree->children[0];
  const SpanNode& b = tree->children[1];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(b.name, "b");
  ASSERT_EQ(a.children.size(), 1u);
  EXPECT_EQ(a.children[0].name, "g");
  // Siblings are ordered by start and nested intervals stay inside the
  // parent.
  EXPECT_GE(b.start_us, a.start_us);
  EXPECT_GE(a.duration_us, a.children[0].duration_us);
  EXPECT_LE(a.duration_us + b.duration_us, tree->duration_us + 1e-6);
  const SpanNode* g = FindSpan(*tree, "g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(FindSpan(*tree, "missing"), nullptr);
  EXPECT_FALSE(FormatSpanTree(*tree).empty());
}

TEST(TraceSpanTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  TraceSpan root("root", &tracer);
  root.End();
  root.End();
  EXPECT_EQ(tracer.roots_finished(), 1u);
  EXPECT_GE(root.elapsed_us(), 0.0);
}

TEST(TracerTest, SamplingKeepsFirstAndEveryNth) {
  TracerConfig config;
  config.buffer_capacity = 64;
  Tracer tracer(config);
  tracer.SetSampleEveryN(3);
  for (int i = 0; i < 7; ++i) {
    SpanNode node;
    node.name = "r" + std::to_string(i);
    tracer.RecordRoot(std::move(node));
  }
  EXPECT_EQ(tracer.roots_finished(), 7u);
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 3u);  // Roots 0, 3, 6.
  EXPECT_EQ(kept[0].name, "r0");
  EXPECT_EQ(kept[1].name, "r3");
  EXPECT_EQ(kept[2].name, "r6");
}

TEST(TracerTest, RingEvictsOldestBeyondCapacity) {
  TracerConfig config;
  config.buffer_capacity = 4;
  Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    SpanNode node;
    node.name = "r" + std::to_string(i);
    tracer.RecordRoot(std::move(node));
  }
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().name, "r6");  // Oldest retained first.
  EXPECT_EQ(kept.back().name, "r9");
}

TEST(TracerTest, DisabledTracerDropsRootsButCounts) {
  Tracer tracer;
  tracer.SetEnabled(false);
  SpanNode node;
  node.name = "dropped";
  tracer.RecordRoot(std::move(node));
  EXPECT_EQ(tracer.roots_finished(), 1u);
  EXPECT_TRUE(tracer.Snapshot().empty());
  tracer.SetEnabled(true);
  SpanNode kept;
  kept.name = "kept";
  tracer.RecordRoot(std::move(kept));
  EXPECT_TRUE(tracer.LatestRoot("kept").has_value());
}

TEST(TracerTest, ClearResetsRetainedTreesAndSamplingPhase) {
  Tracer tracer;
  tracer.SetSampleEveryN(5);
  SpanNode first;
  first.name = "first";
  tracer.RecordRoot(std::move(first));
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  // The sampling phase restarted, so the very next root is kept again.
  SpanNode next;
  next.name = "next";
  tracer.RecordRoot(std::move(next));
  EXPECT_TRUE(tracer.LatestRoot("next").has_value());
}

TEST(TracerTest, ConcurrentRootsFromManyThreadsAreRetained) {
  TracerConfig config;
  config.buffer_capacity = 1024;
  Tracer tracer(config);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan root("worker_root", &tracer);
        TraceSpan child("worker_child");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.roots_finished(), 400u);
  EXPECT_EQ(tracer.Snapshot().size(), 400u);
}

// --------------------------------------------------------------------------
// Exporters
// --------------------------------------------------------------------------

/// A registry with one family of each kind and known contents.
void FillSampleRegistry(MetricsRegistry* registry) {
  registry->CounterAt("events_total", "Test events", {{"kind", "a"}})->Inc(3);
  registry->CounterAt("events_total", "Test events", {{"kind", "b"}})->Inc(1);
  registry->GaugeAt("queue_depth", "Depth")->Set(2.5);
  Histogram* hist =
      registry->HistogramAt("lat_us", "Latency", {}, SmallConfig());
  hist->Record(0.5);    // Underflow bucket (le="1").
  hist->Record(3.0);    // Bucket le="4".
  hist->Record(100.0);  // Overflow bucket (le="+Inf").
}

TEST(TextExpositionTest, MatchesGoldenOutput) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  const std::string expected =
      "# HELP events_total Test events\n"
      "# TYPE events_total counter\n"
      "events_total{kind=\"a\"} 3\n"
      "events_total{kind=\"b\"} 1\n"
      "# HELP lat_us Latency\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"4\"} 2\n"
      "lat_us_bucket{le=\"+Inf\"} 3\n"
      "lat_us_sum 103.5\n"
      "lat_us_count 3\n"
      "# HELP queue_depth Depth\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2.5\n";
  EXPECT_EQ(TextExposition(&registry), expected);
}

TEST(JsonSnapshotTest, ContainsMetricsAndSpans) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  Tracer tracer;
  {
    TraceSpan root("score_cold", &tracer);
    TraceSpan child("materialize");
  }
  const std::string json = JsonSnapshot(&registry, &tracer);
  EXPECT_NE(json.find("\"name\": \"events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"score_cold\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"materialize\""), std::string::npos);
}

TEST(JsonSnapshotTest, DumpJsonWritesFile) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  Tracer tracer;
  const std::string path = testing::TempDir() + "/obs_dump_test.json";
  ASSERT_TRUE(DumpJson(path, &registry, &tracer).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_EQ(contents.front(), '{');
  EXPECT_EQ(contents, JsonSnapshot(&registry, &tracer));
  std::remove(path.c_str());
}

TEST(SummaryLineTest, ListsEveryInstrument) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  const std::string line = SummaryLine(&registry);
  EXPECT_NE(line.find("events_total{kind=\"a\"}=3"), std::string::npos);
  EXPECT_NE(line.find("queue_depth=2.5"), std::string::npos);
  EXPECT_NE(line.find("lat_us[n=3"), std::string::npos);
}

// --------------------------------------------------------------------------
// Histogram exemplars
// --------------------------------------------------------------------------

TEST(HistogramExemplarTest, CapturesExemplarInLandingBucket) {
  Histogram histogram(SmallConfig());
  histogram.Record(3.0, "abc123");  // Bucket le="4" is index 3.
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace_id, "abc123");
  EXPECT_DOUBLE_EQ(snap.exemplars[0].value, 3.0);
  EXPECT_GT(snap.exemplars[0].timestamp_s, 1e9);  // Sane unix seconds.
  const Histogram::Exemplar* ex = snap.ExemplarFor(snap.exemplars[0].bucket);
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->trace_id, "abc123");
  EXPECT_EQ(snap.ExemplarFor(0), nullptr);  // Untouched bucket: none.
}

TEST(HistogramExemplarTest, EmptyTraceIdRecordsCountButNoExemplar) {
  Histogram histogram(SmallConfig());
  histogram.Record(3.0, "");
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_TRUE(snap.exemplars.empty());
}

TEST(HistogramExemplarTest, LatestWriterWinsPerBucket) {
  Histogram histogram(SmallConfig());
  histogram.Record(3.0, "first");
  histogram.Record(3.5, "second");
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace_id, "second");
  EXPECT_DOUBLE_EQ(snap.exemplars[0].value, 3.5);
}

TEST(HistogramExemplarTest, OverlongTraceIdIsTruncatedNotCorrupted) {
  Histogram histogram(SmallConfig());
  const std::string long_id(100, 'x');
  histogram.Record(3.0, long_id);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace_id, std::string(64, 'x'));
}

TEST(HistogramExemplarTest, SlotHoldsTheLongestTransportTraceId) {
  // net::ExtractTraceId caps sanitized x-request-id values at 64 chars;
  // a slot must hold that much so the exposed exemplar id matches the
  // response header and the retained trace exactly.
  Histogram histogram(SmallConfig());
  const std::string max_id(64, 'a');
  histogram.Record(3.0, max_id);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace_id, max_id);
}

TEST(HistogramExemplarTest, ConcurrentExemplarRecordsStayConsistent) {
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&histogram, t] {
      const std::string id = "trace-" + std::to_string(t);
      for (int i = 0; i < 5000; ++i) {
        histogram.Record(static_cast<double>(i % 100 + 1), id);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 40000u);  // No count is ever lost to the try-lock.
  ASSERT_FALSE(snap.exemplars.empty());
  for (const Histogram::Exemplar& ex : snap.exemplars) {
    // Every captured exemplar is one writer's intact id, never a splice.
    EXPECT_EQ(ex.trace_id.rfind("trace-", 0), 0u) << ex.trace_id;
    EXPECT_GE(ex.value, 1.0);
    EXPECT_LE(ex.value, 100.0);
  }
}

// --------------------------------------------------------------------------
// Label-value escaping
// --------------------------------------------------------------------------

TEST(EscapeLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  // Order matters: the backslash introduced by escaping is not re-escaped.
  EXPECT_EQ(EscapeLabelValue("\\\""), "\\\\\\\"");
}

TEST(RenderLabelsTest, EscapesHostileValues) {
  EXPECT_EQ(RenderLabels({{"path", "a\"b\nc\\d"}}),
            "{path=\"a\\\"b\\nc\\\\d\"}");
}

TEST(TextExpositionTest, EscapedLabelGolden) {
  MetricsRegistry registry;
  registry.CounterAt("hostile_total", "Hostile labels",
                     {{"src", "quo\"te\\slash\nnewline"}})
      ->Inc(1);
  const std::string expected =
      "# HELP hostile_total Hostile labels\n"
      "# TYPE hostile_total counter\n"
      "hostile_total{src=\"quo\\\"te\\\\slash\\nnewline\"} 1\n";
  EXPECT_EQ(TextExposition(&registry), expected);
}

TEST(TextExpositionTest, RendersExemplarSuffixOnlyInOpenMetrics) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.HistogramAt("lat_us", "Latency", {}, SmallConfig());
  hist->Record(0.5);  // Underflow bucket, recorded without a trace id.
  hist->Record(3.0, "4bf92f3577b34da6a3ce929d0e0e4736");

  // The classic 0.0.4 dialect must stay exemplar-free: its parser treats
  // a '#' after the sample value as a parse error, failing the scrape.
  const std::string classic = TextExposition(&registry);
  EXPECT_EQ(classic.find(" # {"), std::string::npos) << classic;
  EXPECT_EQ(classic.find("# EOF"), std::string::npos) << classic;
  EXPECT_NE(classic.find("lat_us_bucket{le=\"4\"} 2\n"), std::string::npos)
      << classic;

  // OpenMetrics exemplar: `bucket-line # {labels} value timestamp`
  // (bucket counts are cumulative, so le="4" covers both records).
  const std::string text =
      TextExposition(&registry, ExpositionFormat::kOpenMetrics);
  const size_t pos = text.find(
      "lat_us_bucket{le=\"4\"} 2 "
      "# {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 3");
  EXPECT_NE(pos, std::string::npos) << text;
  // Buckets without a captured exemplar stay bare.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
}

TEST(TextExpositionTest, OpenMetricsGolden) {
  MetricsRegistry registry;
  FillSampleRegistry(&registry);
  // Counter families drop the `_total` suffix on HELP/TYPE (the sample
  // line keeps it, per the OpenMetrics abnf) and the stream ends with
  // the mandatory `# EOF` marker.
  const std::string expected =
      "# HELP events Test events\n"
      "# TYPE events counter\n"
      "events_total{kind=\"a\"} 3\n"
      "events_total{kind=\"b\"} 1\n"
      "# HELP lat_us Latency\n"
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"4\"} 2\n"
      "lat_us_bucket{le=\"+Inf\"} 3\n"
      "lat_us_sum 103.5\n"
      "lat_us_count 3\n"
      "# HELP queue_depth Depth\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2.5\n"
      "# EOF\n";
  EXPECT_EQ(TextExposition(&registry, ExpositionFormat::kOpenMetrics),
            expected);
}

TEST(TextExpositionTest, ContentTypesMatchDialects) {
  EXPECT_EQ(
      std::string(ExpositionContentType(ExpositionFormat::kPrometheusText)),
      "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(
      std::string(ExpositionContentType(ExpositionFormat::kOpenMetrics)),
      "application/openmetrics-text; version=1.0.0; charset=utf-8");
}

TEST(JsonSnapshotTest, HistogramExemplarsAppearInJson) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.HistogramAt("lat_us", "Latency", {}, SmallConfig());
  hist->Record(3.0, "deadbeef");
  hist->Record(1e9, "overflowid");
  Tracer tracer;
  const std::string json = JsonSnapshot(&registry, &tracer);
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"deadbeef\""), std::string::npos);
  // The overflow bucket's bound serializes as the string "+Inf", never as
  // a bare inf token (which would not be JSON).
  EXPECT_NE(json.find("\"bucket_le\": \"+Inf\""), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
}

// --------------------------------------------------------------------------
// Trace ids, context propagation, tail retention
// --------------------------------------------------------------------------

TEST(GenerateTraceIdTest, ProducesDistinctLowercaseHexIds) {
  const std::string a = GenerateTraceId();
  const std::string b = GenerateTraceId();
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);
  EXPECT_NE(a, std::string(32, '0'));
  for (char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

TEST(ScopedTraceContextTest, StampsRootAndRestoresPreviousContext) {
  Tracer tracer;
  EXPECT_EQ(ScopedTraceContext::CurrentTraceId(), "");
  {
    ScopedTraceContext outer("outer-id");
    EXPECT_EQ(ScopedTraceContext::CurrentTraceId(), "outer-id");
    {
      ScopedTraceContext inner("inner-id");
      EXPECT_EQ(ScopedTraceContext::CurrentTraceId(), "inner-id");
      TraceSpan root("inner_root", &tracer);
    }
    EXPECT_EQ(ScopedTraceContext::CurrentTraceId(), "outer-id");
    TraceSpan root("outer_root", &tracer);
  }
  EXPECT_EQ(ScopedTraceContext::CurrentTraceId(), "");
  const auto inner = tracer.LatestRoot("inner_root");
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->trace_id, "inner-id");
  const auto outer = tracer.LatestRoot("outer_root");
  ASSERT_TRUE(outer.has_value());
  EXPECT_EQ(outer->trace_id, "outer-id");
}

TEST(TracerTest, ErrorRootBypassesSamplingIntoRetainedRing) {
  Tracer tracer;
  tracer.SetSampleEveryN(1000);  // Ordinary roots are all dropped...
  SpanNode dropped;
  dropped.name = "ok1";
  tracer.RecordRoot(std::move(dropped));  // Root 0: the one sampled root.
  SpanNode dropped2;
  dropped2.name = "ok2";
  tracer.RecordRoot(std::move(dropped2));  // Root 1: sampled away.
  SpanNode failed;
  failed.name = "failed";
  failed.error = true;
  tracer.RecordRoot(std::move(failed));  // Root 2: error -> retained.
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].name, "ok1");
  EXPECT_EQ(kept[1].name, "failed");
  EXPECT_TRUE(kept[1].error);
}

TEST(TracerTest, ChildErrorBubblesToRootAndForcesRetention) {
  Tracer tracer;
  tracer.SetSampleEveryN(0);  // Keep nothing by sampling.
  {
    TraceSpan root("req", &tracer);
    TraceSpan child("stage");
    child.SetError();
  }
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept[0].error);  // Bubbled from the child.
  ASSERT_EQ(kept[0].children.size(), 1u);
  EXPECT_TRUE(kept[0].children[0].error);
}

TEST(TracerTest, SlowRootIsTailRetainedDespiteSampling) {
  Tracer tracer;
  tracer.SetSampleEveryN(0);
  tracer.SetRetainLatencyUs(500.0);
  EXPECT_DOUBLE_EQ(tracer.retain_latency_us(), 500.0);
  SpanNode fast;
  fast.name = "fast";
  fast.duration_us = 100.0;
  tracer.RecordRoot(std::move(fast));
  SpanNode slow;
  slow.name = "slow";
  slow.duration_us = 900.0;
  tracer.RecordRoot(std::move(slow));
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].name, "slow");
}

TEST(TracerTest, RetainedRingIsNotEvictedByOrdinaryTraffic) {
  TracerConfig config;
  config.buffer_capacity = 2;  // Tiny sampled ring.
  config.retained_capacity = 8;
  Tracer tracer(config);
  SpanNode failed;
  failed.name = "the_failure";
  failed.error = true;
  tracer.RecordRoot(std::move(failed));
  // A burst of healthy traffic churns the sampled ring far past capacity.
  for (int i = 0; i < 100; ++i) {
    SpanNode node;
    node.name = "healthy";
    tracer.RecordRoot(std::move(node));
  }
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 3u);  // 2 sampled + the retained failure.
  EXPECT_EQ(kept.back().name, "the_failure");
}

TEST(TracerTest, RetainedRingEvictsOldestAmongRetained) {
  TracerConfig config;
  config.retained_capacity = 2;
  Tracer tracer(config);
  tracer.SetSampleEveryN(0);
  for (int i = 0; i < 4; ++i) {
    SpanNode node;
    node.name = "err" + std::to_string(i);
    node.error = true;
    tracer.RecordRoot(std::move(node));
  }
  const auto kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].name, "err2");
  EXPECT_EQ(kept[1].name, "err3");
}

TEST(TracerTest, FindTraceLooksUpRetainedAndSampledRoots) {
  Tracer tracer;
  SpanNode sampled;
  sampled.name = "sampled";
  sampled.trace_id = "id-sampled";
  tracer.RecordRoot(std::move(sampled));
  SpanNode retained;
  retained.name = "retained";
  retained.trace_id = "id-retained";
  retained.error = true;
  tracer.RecordRoot(std::move(retained));
  const auto hit = tracer.FindTrace("id-retained");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "retained");
  const auto sampled_hit = tracer.FindTrace("id-sampled");
  ASSERT_TRUE(sampled_hit.has_value());
  EXPECT_EQ(sampled_hit->name, "sampled");
  EXPECT_FALSE(tracer.FindTrace("no-such-id").has_value());
  EXPECT_FALSE(tracer.FindTrace("").has_value());
}

// --------------------------------------------------------------------------
// Profiler
// --------------------------------------------------------------------------

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

TEST(ProfilerTest, RefusesToStartUnderTsanOtherwiseCaptures) {
  Profiler profiler;
  if (kUnderTsan) {
    std::string folded;
    const Status status = profiler.ProfileFor(0.05, &folded);
    EXPECT_EQ(status.code(), StatusCode::kUnavailable)
        << status.ToString();
    return;
  }
  // Keep a thread busy so wall-clock samples land somewhere real.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::thread burner([&stop, &sink] {
    while (!stop.load(std::memory_order_relaxed)) {
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::string folded;
  const Status status = profiler.ProfileFor(0.3, &folded);
  stop.store(true);
  burner.join();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profiler.samples_captured(), 0u);
  ASSERT_FALSE(folded.empty());
  // Every folded line is `frame;frame;... count` with a positive count.
  std::istringstream lines(folded);
  std::string line;
  uint64_t total = 0;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GT(count, 0u) << line;
    total += count;
  }
  EXPECT_EQ(total, profiler.samples_captured());
}

TEST(ProfilerTest, StartTwiceFailsStopIsIdempotent) {
  if (kUnderTsan) GTEST_SKIP() << "profiler disabled under TSan";
  Profiler profiler;
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.running());
  const Status again = profiler.Start();
  EXPECT_FALSE(again.ok());
  profiler.Stop();
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
}

TEST(ProfilerTest, SecondProfilerCannotStealTheSignalHandler) {
  if (kUnderTsan) GTEST_SKIP() << "profiler disabled under TSan";
  Profiler first;
  ASSERT_TRUE(first.Start().ok());
  Profiler second;
  const Status status = second.Start();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  first.Stop();
}

TEST(ProfilerTest, CollectFoldedOnEmptyCaptureIsEmpty) {
  Profiler profiler;
  EXPECT_EQ(profiler.samples_captured(), 0u);
  EXPECT_TRUE(profiler.CollectFolded().empty());
}

TEST(StatsLoggerTest, EmitsAtLeastOnceBeforeStop) {
  MetricsRegistry registry;
  std::atomic<int> emissions{0};
  StatsLoggerConfig config;
  config.interval_ms = 5;
  config.registry = &registry;
  config.formatter = [&emissions](const MetricsRegistry*) {
    emissions.fetch_add(1);
    return std::string("test summary");
  };
  {
    StatsLogger logger(config);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Stop always emits one final line, so short runs still log.
  EXPECT_GE(emissions.load(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace dbg4eth
