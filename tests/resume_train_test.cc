// Crash-safe resumable training: a run killed at ANY epoch boundary and
// continued with ResumeTrain must produce a model bit-identical to an
// uninterrupted Train — for both the sequential and data-parallel
// trainers, and even when the newest snapshot on disk is corrupt.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/checkpoint_store.h"
#include "common/rng.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"
#include "ml/split.h"

namespace dbg4eth {
namespace core {
namespace {

namespace fs = std::filesystem;

class ResumeTrainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eth::LedgerConfig lc;
    lc.num_normal = 400;
    lc.num_exchange = 12;
    lc.num_ico_wallet = 8;
    lc.num_mining = 6;
    lc.num_phish_hack = 12;
    lc.num_bridge = 6;
    lc.num_defi = 6;
    lc.duration_days = 90.0;
    lc.seed = 77;
    ledger_ = new eth::LedgerSimulator(lc);
    ASSERT_TRUE(ledger_->Generate().ok());

    eth::DatasetConfig dc;
    dc.target = eth::AccountClass::kExchange;
    dc.max_positives = 10;
    dc.sampling.top_k = 4;
    dc.sampling.max_nodes = 30;
    dc.num_time_slices = 4;
    dc.seed = 5;
    auto built = eth::BuildDataset(*ledger_, dc);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    raw_dataset_ = new eth::SubgraphDataset(std::move(built).ValueOrDie());

    Rng split_rng(123);
    split_ = new ml::SplitIndices(
        ml::StratifiedSplit(raw_dataset_->labels(), 0.6, 0.2, &split_rng));
  }

  static void TearDownTestSuite() {
    delete split_;
    split_ = nullptr;
    delete raw_dataset_;
    raw_dataset_ = nullptr;
    delete ledger_;
    ledger_ = nullptr;
  }

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("dbg4eth_resume_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Tiny but complete model: 3 GSG + 2 LDG epochs = 5 epoch boundaries.
  static Dbg4EthConfig TinyConfig(int num_threads) {
    Dbg4EthConfig config;
    config.gsg.hidden_dim = 12;
    config.gsg.num_heads = 2;
    config.gsg.epochs = 3;
    config.gsg.batch_size = 8;
    config.gsg.num_threads = num_threads;
    config.ldg.hidden_dim = 12;
    config.ldg.num_time_slices = 4;
    config.ldg.first_level_clusters = 4;
    config.ldg.epochs = 2;
    config.ldg.num_threads = num_threads;
    config.gbdt.num_trees = 10;
    config.gbdt.tree.min_samples_leaf = 2;
    return config;
  }

  static constexpr int kTotalEpochs = 5;  // gsg.epochs + ldg.epochs

  CheckpointStoreConfig StoreConfig() {
    CheckpointStoreConfig config;
    config.directory = dir_.string();
    config.retain = 50;  // Keep everything; retention is tested elsewhere.
    config.sync = false;
    return config;
  }

  /// Full serialized model: byte equality here is bit-identity of every
  /// parameter, scaler, calibrator and the classifier head at once.
  static std::string SaveBytes(const Dbg4Eth& model) {
    std::ostringstream os;
    EXPECT_TRUE(model.Save(&os).ok());
    return os.str();
  }

  /// Reference: one uninterrupted run on a fresh raw copy of the dataset.
  static std::string UninterruptedBytes(int num_threads) {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth model(TinyConfig(num_threads));
    Status st = model.Train(&ds, *split_);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return SaveBytes(model);
  }

  static eth::LedgerSimulator* ledger_;
  static eth::SubgraphDataset* raw_dataset_;
  static ml::SplitIndices* split_;
  fs::path dir_;
};

eth::LedgerSimulator* ResumeTrainTest::ledger_ = nullptr;
eth::SubgraphDataset* ResumeTrainTest::raw_dataset_ = nullptr;
ml::SplitIndices* ResumeTrainTest::split_ = nullptr;

// The tentpole guarantee: kill after epoch 1 / mid-run / after the last
// epoch, under the sequential and the 4-thread data-parallel trainer, and
// the resumed model is byte-for-byte the uninterrupted one.
TEST_F(ResumeTrainTest, KillAndResumeMatrixIsBitIdentical) {
  for (const int num_threads : {1, 4}) {
    const std::string reference = UninterruptedBytes(num_threads);
    for (const int kill_after : {1, 3, kTotalEpochs}) {
      fs::remove_all(dir_);
      auto store = CheckpointStore::Open(StoreConfig());
      ASSERT_TRUE(store.ok()) << store.status().ToString();

      // Preempted first run: the budget stops it at `kill_after` epochs.
      TrainSnapshotOptions options;
      options.store = store.ValueOrDie().get();
      options.snapshot_every_epochs = 1;
      options.max_epochs_this_run = kill_after;
      {
        eth::SubgraphDataset ds = *raw_dataset_;
        Dbg4Eth interrupted(TinyConfig(num_threads));
        auto progress = interrupted.TrainWithSnapshots(&ds, *split_, options);
        ASSERT_TRUE(progress.ok()) << progress.status().ToString();
        EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
      }

      // Fresh process: new model object, new RAW dataset copy, unlimited
      // budget. Must finish and match the reference bit for bit.
      options.max_epochs_this_run = 0;
      eth::SubgraphDataset ds = *raw_dataset_;
      Dbg4Eth resumed(TinyConfig(num_threads));
      auto progress = resumed.ResumeTrain(&ds, options);
      ASSERT_TRUE(progress.ok())
          << "threads=" << num_threads << " kill_after=" << kill_after
          << ": " << progress.status().ToString();
      EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kComplete);
      EXPECT_EQ(SaveBytes(resumed), reference)
          << "threads=" << num_threads << " kill_after=" << kill_after;
    }
  }
}

// The data-parallel trainers are bit-identical across thread counts, so
// resuming on a different machine shape (1 thread -> 4 threads) is the one
// config change that is allowed — and it still matches the reference.
TEST_F(ResumeTrainTest, ResumeWithDifferentThreadCountIsBitIdentical) {
  const std::string reference = UninterruptedBytes(/*num_threads=*/1);
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.max_epochs_this_run = 2;
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth interrupted(TinyConfig(/*num_threads=*/1));
    auto progress = interrupted.TrainWithSnapshots(&ds, *split_, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
  }

  options.max_epochs_this_run = 0;
  eth::SubgraphDataset ds = *raw_dataset_;
  Dbg4Eth resumed(TinyConfig(/*num_threads=*/4));
  auto progress = resumed.ResumeTrain(&ds, options);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kComplete);
  EXPECT_EQ(SaveBytes(resumed), reference);
}

// A multi-allocation schedule (budget 2 per run, like back-to-back SLURM
// slices): preempt, resume, preempt, resume ... until complete.
TEST_F(ResumeTrainTest, ChainedPreemptionsConvergeToTheSameModel) {
  const std::string reference = UninterruptedBytes(/*num_threads=*/1);
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.max_epochs_this_run = 2;
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth first(TinyConfig(/*num_threads=*/1));
    auto progress = first.TrainWithSnapshots(&ds, *split_, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
  }

  std::string final_bytes;
  bool complete = false;
  for (int attempt = 0; attempt < 10 && !complete; ++attempt) {
    eth::SubgraphDataset ds = *raw_dataset_;  // fresh raw copy per process
    Dbg4Eth model(TinyConfig(/*num_threads=*/1));
    auto progress = model.ResumeTrain(&ds, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    if (progress.ValueOrDie() == TrainProgress::kComplete) {
      complete = true;
      final_bytes = SaveBytes(model);
    }
  }
  ASSERT_TRUE(complete) << "did not converge within 10 allocations";
  EXPECT_EQ(final_bytes, reference);
}

// One bad byte in the newest snapshot costs one epoch of recomputation,
// not the run: resume falls back to the previous valid generation and the
// final model is still bit-identical.
TEST_F(ResumeTrainTest, ResumeSkipsCorruptNewestSnapshot) {
  const std::string reference = UninterruptedBytes(/*num_threads=*/1);
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.snapshot_every_epochs = 1;
  options.max_epochs_this_run = 3;
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth interrupted(TinyConfig(/*num_threads=*/1));
    auto progress = interrupted.TrainWithSnapshots(&ds, *split_, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
  }

  // Flip one byte in the middle of the newest snapshot (a torn or
  // bit-rotted write that survived the rename).
  const auto generations = store.ValueOrDie()->ListGenerations();
  ASSERT_GE(generations.size(), 2u);
  {
    fs::path newest = generations.front().path;
    std::fstream file(newest, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    const auto size = fs::file_size(newest);
    file.seekp(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(size / 2));
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }

  options.max_epochs_this_run = 0;
  eth::SubgraphDataset ds = *raw_dataset_;
  Dbg4Eth resumed(TinyConfig(/*num_threads=*/1));
  auto progress = resumed.ResumeTrain(&ds, options);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kComplete);
  EXPECT_EQ(SaveBytes(resumed), reference);
}

// Cadence: with snapshot_every_epochs = 2 and 5 epoch boundaries, exactly
// the boundaries at 2 and 4 completed epochs commit a generation.
TEST_F(ResumeTrainTest, SnapshotCadenceIsRespected) {
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.snapshot_every_epochs = 2;
  eth::SubgraphDataset ds = *raw_dataset_;
  Dbg4Eth model(TinyConfig(/*num_threads=*/1));
  auto progress = model.TrainWithSnapshots(&ds, *split_, options);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kComplete);
  EXPECT_EQ(store.ValueOrDie()->ListGenerations().size(), 2u);
}

// The resume gate: every architecture or hyperparameter difference from
// the snapshot is rejected with a clear error; only num_threads may vary.
TEST_F(ResumeTrainTest, ResumeRejectsConfigMismatch) {
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.max_epochs_this_run = 2;
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth interrupted(TinyConfig(/*num_threads=*/1));
    auto progress = interrupted.TrainWithSnapshots(&ds, *split_, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
  }
  options.max_epochs_this_run = 0;

  {
    Dbg4EthConfig changed = TinyConfig(/*num_threads=*/1);
    changed.gsg.learning_rate *= 2.0;
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth model(changed);
    auto progress = model.ResumeTrain(&ds, options);
    ASSERT_FALSE(progress.ok());
    EXPECT_EQ(progress.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Dbg4EthConfig changed = TinyConfig(/*num_threads=*/1);
    changed.gsg.hidden_dim = 16;
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth model(changed);
    auto progress = model.ResumeTrain(&ds, options);
    ASSERT_FALSE(progress.ok());
    EXPECT_EQ(progress.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Dbg4EthConfig changed = TinyConfig(/*num_threads=*/1);
    changed.gsg.epochs += 1;
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth model(changed);
    auto progress = model.ResumeTrain(&ds, options);
    ASSERT_FALSE(progress.ok());
    EXPECT_EQ(progress.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ResumeTrainTest, ResumeRequiresAStoreWithASnapshot) {
  TrainSnapshotOptions options;  // no store
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth model(TinyConfig(/*num_threads=*/1));
    EXPECT_FALSE(model.ResumeTrain(&ds, options).ok());
  }

  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  options.store = store.ValueOrDie().get();
  eth::SubgraphDataset ds = *raw_dataset_;
  Dbg4Eth model(TinyConfig(/*num_threads=*/1));
  auto progress = model.ResumeTrain(&ds, options);
  ASSERT_FALSE(progress.ok());
  EXPECT_EQ(progress.status().code(), StatusCode::kNotFound);
}

// A model completed through the preempt-at-last-epoch path must serve:
// the snapshot at the final boundary carries everything stages 3-4 need.
TEST_F(ResumeTrainTest, PreemptAtLastEpochThenResumeServes) {
  auto store = CheckpointStore::Open(StoreConfig());
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  TrainSnapshotOptions options;
  options.store = store.ValueOrDie().get();
  options.max_epochs_this_run = kTotalEpochs;
  {
    eth::SubgraphDataset ds = *raw_dataset_;
    Dbg4Eth interrupted(TinyConfig(/*num_threads=*/1));
    auto progress = interrupted.TrainWithSnapshots(&ds, *split_, options);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    // All epochs ran, but the budget stop lands before calibration and
    // the head are fitted — the model is NOT complete yet.
    EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kPreempted);
  }

  options.max_epochs_this_run = 0;
  eth::SubgraphDataset ds = *raw_dataset_;
  Dbg4Eth resumed(TinyConfig(/*num_threads=*/1));
  auto progress = resumed.ResumeTrain(&ds, options);
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress.ValueOrDie(), TrainProgress::kComplete);
  for (const int idx : split_->test) {
    const double p = resumed.PredictProba(ds.instances[idx]);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace dbg4eth
