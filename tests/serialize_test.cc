// Checkpointing round-trip tests: every serializable component must
// reproduce its predictions exactly after Save + Load, and corrupted
// streams must fail with an error instead of yielding garbage.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "calib/adaptive.h"
#include "common/checkpoint_store.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/dbg4eth.h"
#include "eth/dataset.h"
#include "eth/ledger.h"
#include "ml/ensemble.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/serialize.h"

namespace dbg4eth {
namespace {

TEST(BinarySerializeTest, PrimitivesRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(42);
  writer.WriteU64(1ull << 60);
  writer.WriteI32(-7);
  writer.WriteDouble(3.14159);
  writer.WriteBool(true);
  writer.WriteString("hello");
  writer.WriteDoubleVector({1.5, -2.5});
  writer.WriteIntVector({3, -4, 5});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(&stream);
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  double d;
  bool b;
  std::string s;
  std::vector<double> dv;
  std::vector<int> iv;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI32(&i32).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadBool(&b).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  ASSERT_TRUE(reader.ReadDoubleVector(&dv).ok());
  ASSERT_TRUE(reader.ReadIntVector(&iv).ok());
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i32, -7);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(iv, (std::vector<int>{3, -4, 5}));
}

TEST(BinarySerializeTest, TruncatedStreamFails) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(10);  // promises 10 doubles, delivers none
  BinaryReader reader(&stream);
  std::vector<double> v;
  EXPECT_FALSE(reader.ReadDoubleVector(&v).ok());
}

TEST(BinarySerializeTest, TagMismatchFails) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteString("alpha");
  BinaryReader reader(&stream);
  EXPECT_FALSE(reader.ExpectTag("beta").ok());
}

TEST(BinarySerializeTest, MatrixRoundTrip) {
  Rng rng(1);
  Matrix m = Matrix::Random(4, 7, &rng);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  WriteMatrix(&writer, m);
  BinaryReader reader(&stream);
  Matrix restored;
  ASSERT_TRUE(ReadMatrix(&reader, &restored).ok());
  EXPECT_TRUE(AlmostEqual(m, restored, 0.0));
}

TEST(BinarySerializeTest, ParameterShapeMismatchFails) {
  Rng rng(2);
  ag::Tensor a = ag::Tensor::Parameter(Matrix::Random(2, 3, &rng));
  std::stringstream stream;
  BinaryWriter writer(&stream);
  ag::WriteParameters(&writer, {a});
  BinaryReader reader(&stream);
  ag::Tensor wrong = ag::Tensor::Parameter(Matrix::Random(3, 3, &rng));
  std::vector<ag::Tensor> params = {wrong};
  EXPECT_FALSE(ag::ReadParameters(&reader, &params).ok());
}

void MakeCalibrationData(int n, uint64_t seed, std::vector<double>* scores,
                         std::vector<int>* labels) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double s = rng.Uniform();
    scores->push_back(s);
    labels->push_back(rng.Bernoulli(0.2 + 0.6 * s) ? 1 : 0);
  }
}

TEST(CalibratorSerializeTest, EveryMethodRoundTrips) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeCalibrationData(400, 3, &scores, &labels);
  for (auto& original : calib::MakeAllCalibrators()) {
    ASSERT_TRUE(original->Fit(scores, labels).ok());
    std::stringstream stream;
    BinaryWriter writer(&stream);
    original->Save(&writer);

    auto all = calib::MakeAllCalibrators();
    calib::Calibrator* restored = nullptr;
    for (auto& c : all) {
      if (c->name() == original->name()) restored = c.get();
    }
    ASSERT_NE(restored, nullptr);
    BinaryReader reader(&stream);
    ASSERT_TRUE(restored->Load(&reader).ok()) << original->name();
    for (double s = 0.0; s <= 1.0; s += 0.03) {
      EXPECT_DOUBLE_EQ(original->Calibrate(s), restored->Calibrate(s))
          << original->name();
    }
  }
}

TEST(CalibratorSerializeTest, AdaptiveEnsembleRoundTrips) {
  std::vector<double> scores;
  std::vector<int> labels;
  MakeCalibrationData(500, 5, &scores, &labels);
  calib::AdaptiveCalibrator original;
  ASSERT_TRUE(original.Fit(scores, labels).ok());
  std::stringstream stream;
  BinaryWriter writer(&stream);
  original.Save(&writer);

  calib::AdaptiveCalibrator restored;
  BinaryReader reader(&stream);
  ASSERT_TRUE(restored.Load(&reader).ok());
  ASSERT_EQ(restored.methods().size(), original.methods().size());
  for (size_t i = 0; i < original.methods().size(); ++i) {
    EXPECT_EQ(restored.methods()[i].name, original.methods()[i].name);
    EXPECT_DOUBLE_EQ(restored.methods()[i].weight,
                     original.methods()[i].weight);
  }
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    EXPECT_DOUBLE_EQ(original.Calibrate(s), restored.Calibrate(s));
  }
}

void MakeTabularData(int n, uint64_t seed, Matrix* x, std::vector<int>* y) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < 3; ++c) x->At(i, c) = rng.Normal(0, 1);
    (*y)[i] = x->At(i, 0) + x->At(i, 1) * x->At(i, 2) > 0 ? 1 : 0;
  }
}

template <typename Model>
void ExpectHeadRoundTrip(Model* original, Model* restored) {
  Matrix x;
  std::vector<int> y;
  MakeTabularData(200, 7, &x, &y);
  ASSERT_TRUE(original->Train(x, y).ok());
  std::stringstream stream;
  BinaryWriter writer(&stream);
  original->Save(&writer);
  BinaryReader reader(&stream);
  ASSERT_TRUE(restored->Load(&reader).ok());
  for (int i = 0; i < x.rows(); i += 17) {
    EXPECT_DOUBLE_EQ(original->PredictProba(x.RowPtr(i)),
                     restored->PredictProba(x.RowPtr(i)));
  }
}

TEST(HeadSerializeTest, GbdtRoundTrips) {
  ml::GbdtClassifier original, restored;
  ExpectHeadRoundTrip(&original, &restored);
}

TEST(HeadSerializeTest, RandomForestRoundTrips) {
  ml::RandomForestClassifier original, restored;
  ExpectHeadRoundTrip(&original, &restored);
}

TEST(HeadSerializeTest, AdaBoostRoundTrips) {
  ml::AdaBoostClassifier original, restored;
  ExpectHeadRoundTrip(&original, &restored);
}

TEST(HeadSerializeTest, MlpRoundTrips) {
  ml::MlpClassifier original, restored;
  ExpectHeadRoundTrip(&original, &restored);
}

// --- Optimizer state (training-resume checkpoints) ---

/// Runs `steps` Adam updates of minimize sum(x^2) over `params`.
void RunQuadraticSteps(ag::Adam* opt, const std::vector<ag::Tensor>& params,
                       int steps) {
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    ag::Tensor loss;
    for (const ag::Tensor& p : params) {
      ag::Tensor term = ag::SumAll(ag::Mul(p, p));
      loss = loss.defined() ? ag::Add(loss, term) : term;
    }
    loss.Backward();
    opt->Step();
  }
}

TEST(OptimizerStateTest, AdamRoundTripResumesBitIdentically) {
  Rng rng(11);
  std::vector<ag::Tensor> params_a = {
      ag::Tensor::Parameter(Matrix::Random(3, 4, &rng)),
      ag::Tensor::Parameter(Matrix::Random(2, 2, &rng))};
  ag::Adam opt_a(params_a, 0.05);
  RunQuadraticSteps(&opt_a, params_a, 3);

  // Checkpoint: parameter values + optimizer moments and step counter.
  std::stringstream stream;
  BinaryWriter writer(&stream);
  ag::WriteParameters(&writer, params_a);
  opt_a.SaveState(&writer);

  // Fresh process: equally shaped params, state restored from the stream.
  std::vector<ag::Tensor> params_b = {
      ag::Tensor::Parameter(Matrix::Zeros(3, 4)),
      ag::Tensor::Parameter(Matrix::Zeros(2, 2))};
  BinaryReader reader(&stream);
  ASSERT_TRUE(ag::ReadParameters(&reader, &params_b).ok());
  ag::Adam opt_b(params_b, 0.05);
  ASSERT_TRUE(opt_b.LoadState(&reader).ok());
  EXPECT_EQ(opt_b.step_count(), opt_a.step_count());

  // Both trajectories must now be bit-identical — Adam's moments and
  // bias-correction counter are part of the update, so a zeroed restore
  // would diverge on the very first step.
  RunQuadraticSteps(&opt_a, params_a, 5);
  RunQuadraticSteps(&opt_b, params_b, 5);
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_TRUE(AlmostEqual(params_a[i].value(), params_b[i].value(), 0.0))
        << "param " << i << " diverged after resume";
  }
}

TEST(OptimizerStateTest, AdamRejectsParameterCountMismatch) {
  Rng rng(12);
  std::vector<ag::Tensor> two = {
      ag::Tensor::Parameter(Matrix::Random(2, 2, &rng)),
      ag::Tensor::Parameter(Matrix::Random(2, 2, &rng))};
  ag::Adam saved(two, 0.1);
  RunQuadraticSteps(&saved, two, 1);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  saved.SaveState(&writer);

  std::vector<ag::Tensor> one = {
      ag::Tensor::Parameter(Matrix::Random(2, 2, &rng))};
  ag::Adam loaded(one, 0.1);
  BinaryReader reader(&stream);
  const Status st = loaded.LoadState(&reader);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loaded.step_count(), 0);  // In-memory state untouched.
}

TEST(OptimizerStateTest, AdamRejectsShapeMismatchAndStaysUsable) {
  Rng rng(13);
  std::vector<ag::Tensor> small = {
      ag::Tensor::Parameter(Matrix::Random(2, 3, &rng))};
  ag::Adam saved(small, 0.1);
  RunQuadraticSteps(&saved, small, 2);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  saved.SaveState(&writer);

  std::vector<ag::Tensor> big = {
      ag::Tensor::Parameter(Matrix::Random(3, 3, &rng))};
  ag::Adam loaded(big, 0.1);
  BinaryReader reader(&stream);
  const Status st = loaded.LoadState(&reader);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(loaded.step_count(), 0);
  // The rejected load must not have corrupted the optimizer.
  RunQuadraticSteps(&loaded, big, 1);
  EXPECT_EQ(loaded.step_count(), 1);
}

TEST(OptimizerStateTest, StatelessSgdRoundTripsAndRejectsAdamState) {
  Rng rng(14);
  std::vector<ag::Tensor> params = {
      ag::Tensor::Parameter(Matrix::Random(2, 2, &rng))};
  ag::Sgd sgd(params, 0.1);
  std::stringstream stream;
  BinaryWriter writer(&stream);
  sgd.SaveState(&writer);
  BinaryReader reader(&stream);
  EXPECT_TRUE(sgd.LoadState(&reader).ok());

  // An Adam state is not a stateless-optimizer state.
  std::stringstream adam_stream;
  BinaryWriter adam_writer(&adam_stream);
  ag::Adam adam(params, 0.1);
  adam.SaveState(&adam_writer);
  BinaryReader adam_reader(&adam_stream);
  EXPECT_FALSE(sgd.LoadState(&adam_reader).ok());
}

TEST(ModelSerializeTest, FullDbg4EthRoundTrips) {
  eth::LedgerConfig lc;
  lc.num_normal = 500;
  lc.num_exchange = 10;
  lc.duration_days = 90.0;
  lc.seed = 99;
  eth::LedgerSimulator ledger(lc);
  ASSERT_TRUE(ledger.Generate().ok());
  eth::DatasetConfig dc;
  dc.target = eth::AccountClass::kExchange;
  dc.max_positives = 10;
  dc.sampling.top_k = 5;
  dc.sampling.max_nodes = 40;
  dc.num_time_slices = 4;
  auto ds = std::move(eth::BuildDataset(ledger, dc)).ValueOrDie();

  core::Dbg4EthConfig config;
  config.gsg.hidden_dim = 12;
  config.gsg.epochs = 3;
  config.ldg.hidden_dim = 12;
  config.ldg.epochs = 2;
  config.ldg.first_level_clusters = 4;
  config.gbdt.num_trees = 10;
  core::Dbg4Eth original(config);
  Rng rng(config.seed);
  const ml::SplitIndices split = ml::StratifiedSplit(
      ds.labels(), config.train_fraction, config.val_fraction, &rng);
  ASSERT_TRUE(original.Train(&ds, split).ok());

  // Untrained models refuse to save.
  {
    core::Dbg4Eth untrained(config);
    std::stringstream sink;
    EXPECT_EQ(untrained.Save(&sink).code(), StatusCode::kFailedPrecondition);
  }

  std::stringstream stream;
  ASSERT_TRUE(original.Save(&stream).ok());
  auto restored_result = core::Dbg4Eth::Load(&stream);
  ASSERT_TRUE(restored_result.ok()) << restored_result.status().ToString();
  const auto& restored = restored_result.ValueOrDie();

  for (const auto& inst : ds.instances) {
    EXPECT_DOUBLE_EQ(original.PredictProba(inst),
                     restored->PredictProba(inst));
  }

  // The checkpoint is framed (magic + version + length + CRC) so
  // corruption fails loudly instead of restoring a silently wrong model.
  const std::string framed = stream.str();
  {
    std::stringstream probe(framed);
    EXPECT_TRUE(LooksFramed(&probe));
  }

  // Legacy pre-framing checkpoints (the bare payload) still load.
  {
    std::stringstream whole(framed);
    auto payload = ReadFramedCheckpoint(&whole);
    ASSERT_TRUE(payload.ok());
    std::stringstream legacy(payload.ValueOrDie());
    auto from_legacy = core::Dbg4Eth::Load(&legacy);
    ASSERT_TRUE(from_legacy.ok()) << from_legacy.status().ToString();
    EXPECT_DOUBLE_EQ(original.PredictProba(ds.instances[0]),
                     from_legacy.ValueOrDie()->PredictProba(ds.instances[0]));
  }

  // Truncation at any point errors instead of crashing. Sweep every byte
  // of the head and tail plus a stride through the body (a full per-byte
  // sweep over a multi-KB model would be quadratic; the frame-level sweep
  // in checkpoint_store_test covers every offset exhaustively).
  {
    std::vector<size_t> cuts;
    for (size_t i = 0; i < std::min<size_t>(80, framed.size()); ++i) {
      cuts.push_back(i);
    }
    for (size_t i = 80; i + 80 < framed.size(); i += 997) cuts.push_back(i);
    for (size_t i = framed.size() - std::min<size_t>(80, framed.size());
         i < framed.size(); ++i) {
      cuts.push_back(i);
    }
    for (size_t cut : cuts) {
      std::stringstream truncated(framed.substr(0, cut));
      EXPECT_FALSE(core::Dbg4Eth::Load(&truncated).ok())
          << "prefix of " << cut << " bytes restored a model";
    }
  }

  // A single flipped bit anywhere in the payload fails the CRC.
  {
    std::string tampered = framed;
    tampered[tampered.size() / 2] =
        static_cast<char>(tampered[tampered.size() / 2] ^ 0x10);
    std::stringstream corrupt(tampered);
    auto load = core::Dbg4Eth::Load(&corrupt);
    ASSERT_FALSE(load.ok());
    EXPECT_EQ(load.status().code(), StatusCode::kDataLoss);
  }
}

TEST(ModelSerializeTest, GarbageStreamFailsToLoad) {
  std::stringstream stream;
  stream << "this is not a checkpoint";
  auto result = core::Dbg4Eth::Load(&stream);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace dbg4eth
