#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace dbg4eth {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.0);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, FactoryHelpers) {
  EXPECT_DOUBLE_EQ(Matrix::Ones(2, 2).Sum(), 4.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(id.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.At(0, 1), 0.0);
  Matrix col = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(col.rows(), 3);
  EXPECT_EQ(col.cols(), 1);
  Matrix row = Matrix::RowVector({1, 2});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 2);
}

TEST(MatrixTest, FromFlatRowMajor) {
  Matrix m = Matrix::FromFlat(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 3);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 4);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = Matrix::FromFlat(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = Matrix::FromFlat(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 4, &rng);
  EXPECT_TRUE(AlmostEqual(MatMul(a, Matrix::Identity(4)), a));
  EXPECT_TRUE(AlmostEqual(MatMul(Matrix::Identity(4), a), a));
}

TEST(MatrixTest, TransposedVariantsMatch) {
  Rng rng(2);
  Matrix a = Matrix::Random(3, 5, &rng);
  Matrix b = Matrix::Random(3, 4, &rng);
  EXPECT_TRUE(AlmostEqual(MatMulTransA(a, b), MatMul(a.Transposed(), b)));
  Matrix c = Matrix::Random(6, 5, &rng);
  EXPECT_TRUE(AlmostEqual(MatMulTransB(a, c), MatMul(a, c.Transposed())));
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromFlat(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromFlat(2, 2, {5, 6, 7, 8});
  EXPECT_TRUE(AlmostEqual(Add(a, b), Matrix::FromFlat(2, 2, {6, 8, 10, 12})));
  EXPECT_TRUE(AlmostEqual(Sub(b, a), Matrix::FromFlat(2, 2, {4, 4, 4, 4})));
  EXPECT_TRUE(AlmostEqual(Mul(a, b), Matrix::FromFlat(2, 2, {5, 12, 21, 32})));
  EXPECT_TRUE(AlmostEqual(Scale(a, 2), Matrix::FromFlat(2, 2, {2, 4, 6, 8})));
}

TEST(MatrixTest, SliceAndGatherRows) {
  Matrix m = Matrix::FromFlat(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix s = m.SliceRows(1, 3);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 3);
  Matrix g = m.GatherRows({2, 0});
  EXPECT_DOUBLE_EQ(g.At(0, 0), 5);
  EXPECT_DOUBLE_EQ(g.At(1, 1), 2);
}

TEST(MatrixTest, ConcatColsRows) {
  Matrix a = Matrix::FromFlat(2, 1, {1, 2});
  Matrix b = Matrix::FromFlat(2, 2, {3, 4, 5, 6});
  Matrix cc = ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_DOUBLE_EQ(cc.At(1, 2), 6);
  Matrix cr = ConcatRows(b, Matrix::FromFlat(1, 2, {9, 9}));
  EXPECT_EQ(cr.rows(), 3);
  EXPECT_DOUBLE_EQ(cr.At(2, 1), 9);
}

TEST(MatrixTest, Reductions) {
  Matrix m = Matrix::FromFlat(2, 2, {3, -4, 0, 0});
  EXPECT_DOUBLE_EQ(m.Sum(), -1);
  EXPECT_DOUBLE_EQ(m.Norm(), 5);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4);
}

TEST(MatrixTest, AllFinite) {
  Matrix m(1, 2);
  EXPECT_TRUE(m.AllFinite());
  m.At(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
  m.At(0, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(m.AllFinite());
}

TEST(MatrixTest, AlmostEqualShapesAndTolerance) {
  Matrix a = Matrix::Ones(2, 2);
  Matrix b = Matrix::Ones(2, 3);
  EXPECT_FALSE(AlmostEqual(a, b));
  Matrix c = Matrix::Ones(2, 2);
  c.At(0, 0) += 1e-12;
  EXPECT_TRUE(AlmostEqual(a, c));
  c.At(0, 0) += 1.0;
  EXPECT_FALSE(AlmostEqual(a, c));
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(3);
  Matrix a = Matrix::Random(3, 7, &rng);
  EXPECT_TRUE(AlmostEqual(a.Transposed().Transposed(), a));
}

TEST(MatrixTest, RandomRange) {
  Rng rng(4);
  Matrix m = Matrix::Random(10, 10, &rng, -0.5, 0.5);
  EXPECT_LE(m.MaxAbs(), 0.5);
}

}  // namespace
}  // namespace dbg4eth
