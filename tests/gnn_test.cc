#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/optimizer.h"
#include "gnn/conv.h"
#include "gnn/diffpool.h"
#include "gnn/gru.h"
#include "gnn/hier_attention.h"
#include "gnn/linear.h"
#include "gnn/transformer.h"
#include "graph/graph.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dbg4eth {
namespace gnn {
namespace {

graph::Graph TestGraph() {
  // 5 nodes: hub 0 plus a tail.
  graph::Graph g;
  g.num_nodes = 5;
  g.edges = {{0, 1}, {0, 2}, {0, 3}, {3, 4}};
  return g;
}

ag::Tensor RandomInput(int n, int d, Rng* rng) {
  return ag::Tensor::Constant(Matrix::Random(n, d, rng, -1.0, 1.0));
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  ag::Tensor x = RandomInput(5, 4, &rng);
  ag::Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(lin.Parameters().size(), 2u);
  EXPECT_EQ(lin.NumParameters(), 4 * 3 + 3);

  Linear no_bias(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear lin(3, 2, &rng);
  ag::Tensor x = RandomInput(4, 3, &rng);
  auto loss = [&] { return ag::SumAll(ag::Tanh(lin.Forward(x))); };
  auto res = ag::CheckGradients(loss, lin.Parameters());
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GcnConvTest, PropagatesAndGradChecks) {
  Rng rng(3);
  graph::Graph g = TestGraph();
  GcnConv conv(3, 2, &rng);
  ag::Tensor adj = ag::Tensor::Constant(g.NormalizedAdjacency());
  ag::Tensor x = RandomInput(5, 3, &rng);
  ag::Tensor y = conv.Forward(adj, x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
  auto loss = [&] { return ag::SumAll(ag::Tanh(conv.Forward(adj, x))); };
  auto res = ag::CheckGradients(loss, conv.Parameters());
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GcnConvTest, IsolatedGraphReducesToSelfTransform) {
  // With identity adjacency, GCN is exactly a linear layer.
  Rng rng(4);
  GcnConv conv(3, 3, &rng);
  ag::Tensor adj = ag::Tensor::Constant(Matrix::Identity(4));
  ag::Tensor x = RandomInput(4, 3, &rng);
  ag::Tensor y = conv.Forward(adj, x);
  // Permuting rows of x permutes rows of y identically.
  Matrix xp = x.value().GatherRows({3, 2, 1, 0});
  ag::Tensor yp = conv.Forward(adj, ag::Tensor::Constant(xp));
  EXPECT_TRUE(AlmostEqual(yp.value(), y.value().GatherRows({3, 2, 1, 0})));
}

TEST(GatConvTest, HeadsConcatAndAttentionNormalized) {
  Rng rng(5);
  graph::Graph g = TestGraph();
  GatConv conv(3, 4, /*num_heads=*/2, &rng);
  ag::Tensor x = RandomInput(5, 3, &rng);
  ag::Tensor y = conv.Forward(x, g.AttentionMask());
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);  // 2 heads x 4
  EXPECT_EQ(conv.Parameters().size(), 6u);
}

TEST(GatConvTest, GradCheck) {
  Rng rng(6);
  graph::Graph g = TestGraph();
  GatConv conv(3, 2, 2, &rng);
  ag::Tensor x = RandomInput(5, 3, &rng);
  const Matrix mask = g.AttentionMask();
  auto loss = [&] { return ag::SumAll(ag::Tanh(conv.Forward(x, mask))); };
  auto res = ag::CheckGradients(loss, conv.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GinConvTest, GradCheckAndShapes) {
  Rng rng(7);
  graph::Graph g = TestGraph();
  GinConv conv(3, 6, 2, &rng);
  ag::Tensor adj = ag::Tensor::Constant(
      g.DenseAdjacency(/*symmetric=*/true, /*self_loops=*/false));
  ag::Tensor x = RandomInput(5, 3, &rng);
  EXPECT_EQ(conv.Forward(adj, x).cols(), 2);
  auto loss = [&] { return ag::SumAll(ag::Tanh(conv.Forward(adj, x))); };
  auto res = ag::CheckGradients(loss, conv.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(SageConvTest, GradCheck) {
  Rng rng(8);
  graph::Graph g = TestGraph();
  // Mean-neighbor matrix: row-normalized adjacency without self loops.
  Matrix adj = g.DenseAdjacency(true, false);
  for (int i = 0; i < adj.rows(); ++i) {
    double s = 0;
    for (int j = 0; j < adj.cols(); ++j) s += adj.At(i, j);
    if (s > 0) {
      for (int j = 0; j < adj.cols(); ++j) adj.At(i, j) /= s;
    }
  }
  SageConv conv(3, 2, &rng);
  ag::Tensor mean_adj = ag::Tensor::Constant(adj);
  ag::Tensor x = RandomInput(5, 3, &rng);
  auto loss = [&] {
    return ag::SumAll(ag::Tanh(conv.Forward(mean_adj, x)));
  };
  auto res = ag::CheckGradients(loss, conv.Parameters());
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(AppnpTest, PropagationMixesPredictions) {
  Rng rng(9);
  graph::Graph g = TestGraph();
  Appnp model(3, 8, 2, /*k_steps=*/4, /*alpha=*/0.2, &rng);
  ag::Tensor adj = ag::Tensor::Constant(g.NormalizedAdjacency());
  ag::Tensor x = RandomInput(5, 3, &rng);
  ag::Tensor y = model.Forward(adj, x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
  auto loss = [&] { return ag::SumAll(ag::Tanh(model.Forward(adj, x))); };
  auto res = ag::CheckGradients(loss, model.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GruCellTest, OutputBoundedAndGradChecks) {
  Rng rng(10);
  GruCell cell(4, &rng);
  ag::Tensor u = RandomInput(3, 4, &rng);
  ag::Tensor h = RandomInput(3, 4, &rng);
  ag::Tensor out = cell.Forward(u, h);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
  EXPECT_EQ(cell.Parameters().size(), 9u);
  auto loss = [&] { return ag::SumAll(cell.Forward(u, h)); };
  auto res = ag::CheckGradients(loss, cell.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GruCellTest, UpdateGateInterpolates) {
  // h_t must lie between h_prev and the candidate (element-wise convex
  // combination); with h_prev == candidate range bound [-1, 1] from tanh,
  // |h_t| <= max(|h_prev|, 1).
  Rng rng(11);
  GruCell cell(3, &rng);
  ag::Tensor u = RandomInput(4, 3, &rng);
  ag::Tensor h = ag::Tensor::Constant(Matrix(4, 3, 0.5));
  Matrix out = cell.Forward(u, h).value();
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_LE(std::fabs(out.At(r, c)), 1.0);
    }
  }
}

TEST(DiffPoolTest, ShapesAndGradCheck) {
  Rng rng(12);
  graph::Graph g = TestGraph();
  DiffPool pool(3, /*num_clusters=*/2, &rng);
  ag::Tensor adj = ag::Tensor::Constant(g.NormalizedAdjacency());
  ag::Tensor x = RandomInput(5, 3, &rng);
  auto out = pool.Forward(adj, x);
  EXPECT_EQ(out.features.rows(), 2);
  EXPECT_EQ(out.features.cols(), 3);
  EXPECT_EQ(out.adjacency.rows(), 2);
  EXPECT_EQ(out.adjacency.cols(), 2);
  auto loss = [&] {
    auto o = pool.Forward(adj, x);
    return ag::Add(ag::SumAll(ag::Tanh(o.features)),
                   ag::SumAll(ag::Tanh(o.adjacency)));
  };
  auto res = ag::CheckGradients(loss, pool.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(DiffPoolTest, StackedPoolingToSingleCluster) {
  Rng rng(13);
  graph::Graph g = TestGraph();
  DiffPool pool1(3, 2, &rng);
  DiffPool pool2(3, 1, &rng);
  ag::Tensor adj = ag::Tensor::Constant(g.NormalizedAdjacency());
  ag::Tensor x = RandomInput(5, 3, &rng);
  auto level1 = pool1.Forward(adj, x);
  auto level2 = pool2.Forward(level1.adjacency, level1.features);
  EXPECT_EQ(level2.features.rows(), 1);
  EXPECT_EQ(level2.features.cols(), 3);
}

TEST(GraphAttentionReadoutTest, ProducesGraphEmbedding) {
  Rng rng(14);
  GraphAttentionReadout readout(4, &rng);
  ag::Tensor h = RandomInput(6, 4, &rng);
  ag::Tensor graph_emb = readout.Forward(h);
  EXPECT_EQ(graph_emb.rows(), 1);
  EXPECT_EQ(graph_emb.cols(), 4);
}

TEST(GraphAttentionReadoutTest, GradCheck) {
  Rng rng(15);
  GraphAttentionReadout readout(3, &rng);
  ag::Tensor h = RandomInput(4, 3, &rng);
  auto loss = [&] { return ag::SumAll(readout.Forward(h)); };
  auto res = ag::CheckGradients(loss, readout.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(TransformerTest, SequenceEncoderShapes) {
  Rng rng(16);
  SequenceEncoder encoder(5, 8, /*num_blocks=*/2, /*num_heads=*/2,
                          /*num_classes=*/2, &rng);
  ag::Tensor seq = RandomInput(7, 5, &rng);
  ag::Tensor logits = encoder.Forward(seq);
  EXPECT_EQ(logits.rows(), 1);
  EXPECT_EQ(logits.cols(), 2);
  EXPECT_GT(encoder.NumParameters(), 0);
}

TEST(TransformerTest, SequenceEncoderGradCheck) {
  Rng rng(17);
  SequenceEncoder encoder(3, 4, 1, 1, 2, &rng);
  ag::Tensor seq = RandomInput(5, 3, &rng);
  std::vector<int> label = {1};
  auto loss = [&] {
    return ag::SoftmaxCrossEntropy(encoder.Forward(seq), label);
  };
  auto res = ag::CheckGradients(loss, encoder.Parameters(), 1e-5, 1e-3);
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(TransformerTest, GraphTransformerUsesStructure) {
  Rng rng(18);
  graph::Graph g = TestGraph();
  GraphTransformer model(3, 8, 1, 2, 2, &rng);
  Matrix adj = g.DenseAdjacency(true, false);
  ag::Tensor x = RandomInput(5, 3, &rng);
  ag::Tensor logits = model.Forward(x, adj);
  EXPECT_EQ(logits.cols(), 2);
  // Different topology with the same features changes the output.
  Matrix empty_adj(5, 5);
  ag::Tensor logits2 = model.Forward(x, empty_adj);
  EXPECT_FALSE(AlmostEqual(logits.value(), logits2.value(), 1e-9));
}

TEST(TransformerTest, StructuralBiasEncodesDegreeAndConnectivity) {
  graph::Graph g = TestGraph();
  Matrix bias = GraphTransformer::StructuralBias(g.DenseAdjacency(true, false));
  // Hub 0 (degree 3) has larger diagonal than leaf 4 (degree 1).
  EXPECT_GT(bias.At(0, 0), bias.At(4, 4));
  EXPECT_DOUBLE_EQ(bias.At(0, 1), 1.0);   // connected
  EXPECT_DOUBLE_EQ(bias.At(1, 2), -1.0);  // not connected
}

TEST(ModuleTest, JoinParameters) {
  Rng rng(19);
  Linear a(2, 2, &rng);
  Linear b(2, 2, &rng, /*bias=*/false);
  auto params = JoinParameters({&a, &b});
  EXPECT_EQ(params.size(), 3u);
}

// End-to-end sanity: a 2-layer GCN + pooling head can overfit a tiny
// synthetic graph classification task.
TEST(GnnIntegrationTest, OverfitsTinyTask) {
  Rng rng(20);
  // Two classes: dense graphs vs sparse graphs, constant features.
  std::vector<graph::Graph> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 10; ++i) {
    graph::Graph g;
    g.num_nodes = 6;
    const bool dense = i % 2 == 0;
    for (int a = 0; a < 6; ++a) {
      for (int b = a + 1; b < 6; ++b) {
        if (dense || (b == a + 1 && a % 2 == 0)) g.edges.push_back({a, b});
      }
    }
    // Feature: constant channel plus normalized degree.
    g.node_features = Matrix::Ones(6, 3);
    const auto deg = g.UndirectedDegrees();
    for (int v = 0; v < 6; ++v) {
      g.node_features.At(v, 1) = deg[v] / 5.0;
      g.node_features.At(v, 2) = 0.1 * i;  // instance jitter
    }
    graphs.push_back(g);
    labels.push_back(dense ? 1 : 0);
  }
  GcnConv conv1(3, 8, &rng);
  GcnConv conv2(8, 8, &rng);
  Linear head(8, 2, &rng);
  auto params = JoinParameters({&conv1, &conv2, &head});
  ag::Adam opt(params, 0.05);
  auto forward = [&](const graph::Graph& g) {
    ag::Tensor adj = ag::Tensor::Constant(g.NormalizedAdjacency());
    ag::Tensor x = ag::Tensor::Constant(g.node_features);
    ag::Tensor h = ag::Relu(conv1.Forward(adj, x));
    h = ag::Relu(conv2.Forward(adj, h));
    return head.Forward(ag::MeanPoolRows(h));
  };
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (size_t i = 0; i < graphs.size(); ++i) {
      opt.ZeroGrad();
      ag::Tensor loss = ag::SoftmaxCrossEntropy(forward(graphs[i]),
                                                {labels[i]});
      loss.Backward();
      opt.Step();
    }
  }
  int correct = 0;
  for (size_t i = 0; i < graphs.size(); ++i) {
    const Matrix logits = forward(graphs[i]).value();
    const int pred = logits.At(0, 1) > logits.At(0, 0) ? 1 : 0;
    correct += pred == labels[i];
  }
  EXPECT_EQ(correct, 10);
}

}  // namespace
}  // namespace gnn
}  // namespace dbg4eth
