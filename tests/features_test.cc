#include <gtest/gtest.h>

#include <cmath>

#include "features/analysis.h"
#include "features/node_features.h"

namespace dbg4eth {
namespace features {
namespace {

eth::TxSubgraph MakeSubgraph() {
  eth::TxSubgraph sub;
  sub.nodes = {10, 20, 30};
  sub.is_contract = {false, false, true};
  sub.center_index = 0;
  auto add = [&](int s, int d, double v, double t, double gas_price,
                 double gas_used, bool contract) {
    eth::LocalTransaction tx;
    tx.src = s;
    tx.dst = d;
    tx.value = v;
    tx.timestamp = t;
    tx.gas_price = gas_price;
    tx.gas_used = gas_used;
    tx.is_contract_call = contract;
    sub.txs.push_back(tx);
  };
  // Node 0 sends three txs at t = 0, 100, 400.
  add(0, 1, 1.0, 0.0, 2e10, 21000, false);
  add(0, 1, 3.0, 100.0, 2e10, 21000, false);
  add(0, 2, 2.0, 400.0, 1e10, 100000, true);
  // Node 1 sends one back.
  add(1, 0, 5.0, 200.0, 2e10, 21000, false);
  return sub;
}

TEST(NodeFeaturesTest, TableIOrderAndNames) {
  EXPECT_EQ(kFeatureDim, 15);
  const auto& names = FeatureNames();
  EXPECT_EQ(names[kNts], "NTS");
  EXPECT_EQ(names[kMaxSti], "max_STI");
  EXPECT_EQ(names[kNc], "NC");
}

TEST(NodeFeaturesTest, CategoriesPartitionFeatures) {
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < kFeatureDim; ++i) {
    ++counts[static_cast<int>(CategoryOf(i))];
  }
  EXPECT_EQ(counts[0], 5);  // sender
  EXPECT_EQ(counts[1], 5);  // receiver
  EXPECT_EQ(counts[2], 4);  // fee
  EXPECT_EQ(counts[3], 1);  // contract
}

TEST(NodeFeaturesTest, SenderFeatures) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  ASSERT_EQ(f.rows(), 3);
  ASSERT_EQ(f.cols(), 15);
  EXPECT_DOUBLE_EQ(f.At(0, kNts), 3.0);
  EXPECT_DOUBLE_EQ(f.At(0, kStv), 6.0);
  EXPECT_DOUBLE_EQ(f.At(0, kSav), 2.0);
  EXPECT_DOUBLE_EQ(f.At(0, kMinSti), 100.0);
  EXPECT_DOUBLE_EQ(f.At(0, kMaxSti), 300.0);
}

TEST(NodeFeaturesTest, ReceiverFeatures) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  EXPECT_DOUBLE_EQ(f.At(1, kNtr), 2.0);
  EXPECT_DOUBLE_EQ(f.At(1, kRtv), 4.0);
  EXPECT_DOUBLE_EQ(f.At(1, kRav), 2.0);
  EXPECT_DOUBLE_EQ(f.At(1, kMinRti), 100.0);
  EXPECT_DOUBLE_EQ(f.At(1, kMaxRti), 100.0);
  // Node 0 received one tx: no intervals.
  EXPECT_DOUBLE_EQ(f.At(0, kMinRti), 0.0);
  EXPECT_DOUBLE_EQ(f.At(0, kMaxRti), 0.0);
}

TEST(NodeFeaturesTest, FeeFeaturesEq5) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  // Node 0 fees: 2 * (2e10*21000) + 1 * (1e10*100000), in ETH (1e-18).
  const double expected =
      (2.0 * 2e10 * 21000.0 + 1e10 * 100000.0) * 1e-18;
  EXPECT_NEAR(f.At(0, kSetf), expected, 1e-15);
  EXPECT_NEAR(f.At(0, kSaetf), expected / 3.0, 1e-15);
  // Node 1 as receiver of two txs with fee 2e10*21000 each.
  EXPECT_NEAR(f.At(1, kRetf), 2.0 * 2e10 * 21000.0 * 1e-18, 1e-15);
}

TEST(NodeFeaturesTest, ContractCallCount) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  // One contract call involves nodes 0 and 2.
  EXPECT_DOUBLE_EQ(f.At(0, kNc), 1.0);
  EXPECT_DOUBLE_EQ(f.At(2, kNc), 1.0);
  EXPECT_DOUBLE_EQ(f.At(1, kNc), 0.0);
}

TEST(NodeFeaturesTest, EmptySubgraphIsZero) {
  eth::TxSubgraph sub;
  sub.nodes = {1, 2};
  sub.is_contract = {false, false};
  Matrix f = ComputeNodeFeatures(sub);
  EXPECT_DOUBLE_EQ(f.Sum(), 0.0);
}

TEST(NodeFeaturesTest, LogScaleMonotonicNonNegative) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  Matrix scaled = LogScaleFeatures(f);
  for (int r = 0; r < f.rows(); ++r) {
    for (int c = 0; c < f.cols(); ++c) {
      EXPECT_GE(scaled.At(r, c), 0.0);
      EXPECT_NEAR(scaled.At(r, c), std::log1p(f.At(r, c)), 1e-12);
    }
  }
}

TEST(NormalizerTest, ZeroMeanUnitVariance) {
  Matrix a = Matrix::FromFlat(2, 2, {1, 10, 3, 20});
  Matrix b = Matrix::FromFlat(2, 2, {5, 30, 7, 40});
  FeatureNormalizer norm;
  norm.Fit({&a, &b});
  ASSERT_TRUE(norm.fitted());
  EXPECT_DOUBLE_EQ(norm.means()[0], 4.0);
  EXPECT_DOUBLE_EQ(norm.means()[1], 25.0);

  Matrix na = norm.Apply(a);
  Matrix nb = norm.Apply(b);
  // Recompute mean/std of transformed data: should be ~0 / ~1.
  for (int c = 0; c < 2; ++c) {
    double mean = 0;
    for (int r = 0; r < 2; ++r) mean += na.At(r, c) + nb.At(r, c);
    mean /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    double var = 0;
    for (int r = 0; r < 2; ++r) {
      var += na.At(r, c) * na.At(r, c) + nb.At(r, c) * nb.At(r, c);
    }
    EXPECT_NEAR(var / 4.0, 1.0, 1e-12);
  }
}

TEST(NormalizerTest, ConstantColumnPassesThroughCentered) {
  Matrix a = Matrix::FromFlat(3, 1, {7, 7, 7});
  FeatureNormalizer norm;
  norm.Fit({&a});
  Matrix out = norm.Apply(a);
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(out.At(r, 0), 0.0);
}

TEST(AnalysisTest, CorrelationMatrixProperties) {
  // Build two feature matrices with a known perfect correlation between
  // dims 0 and 1 and anti-correlation between 0 and 2.
  Matrix a(4, kFeatureDim);
  for (int r = 0; r < 4; ++r) {
    a.At(r, 0) = r;
    a.At(r, 1) = 2.0 * r;
    a.At(r, 2) = -3.0 * r;
  }
  Matrix corr = FeatureCorrelationMatrix({&a});
  ASSERT_EQ(corr.rows(), kFeatureDim);
  for (int i = 0; i < kFeatureDim; ++i) {
    EXPECT_DOUBLE_EQ(corr.At(i, i), 1.0);
    for (int j = 0; j < kFeatureDim; ++j) {
      EXPECT_NEAR(corr.At(i, j), corr.At(j, i), 1e-12);
      EXPECT_LE(std::fabs(corr.At(i, j)), 1.0 + 1e-12);
    }
  }
  EXPECT_NEAR(corr.At(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(corr.At(0, 2), -1.0, 1e-12);
  // Constant dims have zero correlation with everything.
  EXPECT_DOUBLE_EQ(corr.At(0, 5), 0.0);
}

TEST(AnalysisTest, CategoryFeaturesInUnitRange) {
  Matrix f = ComputeNodeFeatures(MakeSubgraph());
  auto cats = ComputeCategoryFeatures({&f});
  ASSERT_EQ(cats.size(), 3u);
  for (const auto& c : cats) {
    EXPECT_GE(c.saf, 0.0);
    EXPECT_LE(c.saf, 1.0);
    EXPECT_GE(c.raf, 0.0);
    EXPECT_LE(c.raf, 1.0);
    EXPECT_GE(c.tff, 0.0);
    EXPECT_LE(c.tff, 1.0);
    EXPECT_GE(c.cf, 0.0);
    EXPECT_LE(c.cf, 1.0);
  }
  // Node 0 is the dominant sender -> highest SAF.
  EXPECT_GT(cats[0].saf, cats[1].saf);
  EXPECT_GT(cats[0].saf, cats[2].saf);
}

}  // namespace
}  // namespace features
}  // namespace dbg4eth
