#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/gradcheck.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace dbg4eth {
namespace ag {
namespace {

Tensor RandomParam(int r, int c, Rng* rng) {
  return Tensor::Parameter(Matrix::Random(r, c, rng, -1.0, 1.0));
}

TEST(TensorTest, LeafProperties) {
  Tensor t = Tensor::Parameter(Matrix::Ones(2, 2));
  EXPECT_TRUE(t.defined());
  EXPECT_TRUE(t.requires_grad());
  EXPECT_EQ(t.rows(), 2);
  Tensor c = Tensor::Constant(Matrix::Ones(1, 1));
  EXPECT_FALSE(c.requires_grad());
}

TEST(TensorTest, BackwardThroughSum) {
  Tensor x = Tensor::Parameter(Matrix::FromFlat(2, 2, {1, 2, 3, 4}));
  Tensor loss = SumAll(x);
  loss.Backward();
  EXPECT_TRUE(AlmostEqual(x.grad(), Matrix::Ones(2, 2)));
}

TEST(TensorTest, GradsAccumulateAcrossBackward) {
  Tensor x = Tensor::Parameter(Matrix::Ones(1, 1));
  SumAll(x).Backward();
  SumAll(x).Backward();
  EXPECT_DOUBLE_EQ(x.grad().At(0, 0), 2.0);
  x.ZeroGrad();
  EXPECT_DOUBLE_EQ(x.grad().At(0, 0), 0.0);
}

TEST(TensorTest, DiamondGraphAccumulates) {
  // loss = sum(x + x) => dx = 2.
  Tensor x = Tensor::Parameter(Matrix::Ones(2, 2));
  Tensor loss = SumAll(Add(x, x));
  loss.Backward();
  EXPECT_TRUE(AlmostEqual(x.grad(), Matrix(2, 2, 2.0)));
}

TEST(TensorTest, ScalarValue) {
  Tensor t = Tensor::Constant(Matrix::FromFlat(1, 1, {3.5}));
  EXPECT_DOUBLE_EQ(t.ScalarValue(), 3.5);
}

// --- Gradient checks for every op ---

TEST(GradCheckTest, MatMul) {
  Rng rng(1);
  Tensor a = RandomParam(3, 4, &rng);
  Tensor b = RandomParam(4, 2, &rng);
  auto loss = [&] { return SumAll(Tanh(MatMul(a, b))); };
  auto res = CheckGradients(loss, {a, b});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, AddSubMul) {
  Rng rng(2);
  Tensor a = RandomParam(2, 3, &rng);
  Tensor b = RandomParam(2, 3, &rng);
  auto loss = [&] {
    return SumAll(Mul(Sub(Add(a, b), Mul(a, b)), Add(a, a)));
  };
  auto res = CheckGradients(loss, {a, b});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, ScalarOps) {
  Rng rng(3);
  Tensor a = RandomParam(2, 2, &rng);
  auto loss = [&] { return SumAll(ScalarAdd(ScalarMul(a, 2.5), -0.5)); };
  auto res = CheckGradients(loss, {a});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, AddRowBroadcast) {
  Rng rng(4);
  Tensor a = RandomParam(3, 4, &rng);
  Tensor bias = RandomParam(1, 4, &rng);
  auto loss = [&] { return SumAll(Tanh(AddRowBroadcast(a, bias))); };
  auto res = CheckGradients(loss, {a, bias});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, BroadcastRow) {
  Rng rng(5);
  Tensor row = RandomParam(1, 3, &rng);
  auto loss = [&] { return SumAll(Tanh(BroadcastRow(row, 4))); };
  auto res = CheckGradients(loss, {row});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, PairwiseSum) {
  Rng rng(6);
  Tensor u = RandomParam(3, 1, &rng);
  Tensor v = RandomParam(4, 1, &rng);
  auto loss = [&] { return SumAll(Sigmoid(PairwiseSum(u, v))); };
  auto res = CheckGradients(loss, {u, v});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, ConcatColsRows) {
  Rng rng(7);
  Tensor a = RandomParam(2, 3, &rng);
  Tensor b = RandomParam(2, 2, &rng);
  Tensor c = RandomParam(1, 5, &rng);
  auto loss = [&] {
    return SumAll(Tanh(ConcatRows(ConcatCols(a, b), c)));
  };
  auto res = CheckGradients(loss, {a, b, c});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, ConcatRowsList) {
  Rng rng(8);
  Tensor a = RandomParam(1, 3, &rng);
  Tensor b = RandomParam(2, 3, &rng);
  Tensor c = RandomParam(1, 3, &rng);
  auto loss = [&] { return SumAll(Sigmoid(ConcatRowsList({a, b, c}))); };
  auto res = CheckGradients(loss, {a, b, c});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, SliceRowsAndTranspose) {
  Rng rng(9);
  Tensor a = RandomParam(4, 3, &rng);
  auto loss = [&] {
    return SumAll(Tanh(Transpose(SliceRows(a, 1, 3))));
  };
  auto res = CheckGradients(loss, {a});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, Activations) {
  Rng rng(10);
  Tensor a = RandomParam(3, 3, &rng);
  for (auto fn : {+[](const Tensor& t) { return Relu(t); },
                  +[](const Tensor& t) { return LeakyRelu(t, 0.2); },
                  +[](const Tensor& t) { return Elu(t, 1.0); },
                  +[](const Tensor& t) { return Tanh(t); },
                  +[](const Tensor& t) { return Sigmoid(t); },
                  +[](const Tensor& t) { return Exp(t); }}) {
    auto loss = [&] { return SumAll(fn(a)); };
    auto res = CheckGradients(loss, {a}, 1e-6, 1e-3);
    EXPECT_TRUE(res.passed) << res.max_rel_error;
  }
}

TEST(GradCheckTest, LogClamped) {
  Rng rng(11);
  Tensor a = Tensor::Parameter(Matrix::Random(2, 2, &rng, 0.5, 2.0));
  auto loss = [&] { return SumAll(Log(a)); };
  auto res = CheckGradients(loss, {a});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, SoftmaxRows) {
  Rng rng(12);
  Tensor a = RandomParam(3, 4, &rng);
  Tensor w = RandomParam(3, 4, &rng);
  auto loss = [&] { return SumAll(Mul(SoftmaxRows(a), w)); };
  auto res = CheckGradients(loss, {a, w});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, MaskedSoftmaxRows) {
  Rng rng(13);
  Tensor a = RandomParam(3, 3, &rng);
  Tensor w = RandomParam(3, 3, &rng);
  Matrix mask = Matrix::FromFlat(3, 3, {1, 1, 0, 0, 1, 1, 0, 0, 0});
  auto loss = [&] { return SumAll(Mul(MaskedSoftmaxRows(a, mask), w)); };
  auto res = CheckGradients(loss, {a, w});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(OpsTest, MaskedSoftmaxZeroRowStaysZero) {
  Tensor a = Tensor::Constant(Matrix::Ones(2, 2));
  Matrix mask(2, 2);
  mask.At(0, 0) = 1;
  mask.At(0, 1) = 1;
  Tensor out = MaskedSoftmaxRows(a, mask);
  EXPECT_DOUBLE_EQ(out.value().At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.value().At(1, 1), 0.0);
  EXPECT_NEAR(out.value().At(0, 0), 0.5, 1e-12);
}

TEST(GradCheckTest, SoftmaxColVector) {
  Rng rng(14);
  Tensor a = RandomParam(5, 1, &rng);
  Tensor w = RandomParam(5, 1, &rng);
  auto loss = [&] { return SumAll(Mul(SoftmaxColVector(a), w)); };
  auto res = CheckGradients(loss, {a, w});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, Reductions) {
  Rng rng(15);
  Tensor a = RandomParam(4, 3, &rng);
  for (auto fn : {+[](const Tensor& t) { return RowSum(t); },
                  +[](const Tensor& t) { return ColMean(t); },
                  +[](const Tensor& t) { return MeanPoolRows(t); },
                  +[](const Tensor& t) { return SumPoolRows(t); },
                  +[](const Tensor& t) { return MaxPoolRows(t); }}) {
    auto loss = [&] { return SumAll(Tanh(fn(a))); };
    auto res = CheckGradients(loss, {a});
    EXPECT_TRUE(res.passed) << res.max_rel_error;
  }
}

TEST(GradCheckTest, MeanAll) {
  Rng rng(16);
  Tensor a = RandomParam(3, 3, &rng);
  auto loss = [&] { return MeanAll(Mul(a, a)); };
  auto res = CheckGradients(loss, {a});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, L2NormalizeRows) {
  Rng rng(17);
  Tensor a = RandomParam(3, 4, &rng);
  Tensor w = RandomParam(3, 4, &rng);
  auto loss = [&] { return SumAll(Mul(L2NormalizeRows(a), w)); };
  auto res = CheckGradients(loss, {a, w});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(OpsTest, L2NormalizeRowsUnitNorm) {
  Rng rng(18);
  Tensor a = Tensor::Constant(Matrix::Random(5, 8, &rng));
  Matrix out = L2NormalizeRows(a).value();
  for (int r = 0; r < out.rows(); ++r) {
    double norm = 0;
    for (int c = 0; c < out.cols(); ++c) norm += out.At(r, c) * out.At(r, c);
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Rng rng(19);
  Tensor logits = RandomParam(4, 3, &rng);
  std::vector<int> labels = {0, 2, 1, 2};
  auto loss = [&] { return SoftmaxCrossEntropy(logits, labels); };
  auto res = CheckGradients(loss, {logits});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(20);
  Tensor logits = RandomParam(5, 1, &rng);
  std::vector<int> labels = {0, 1, 1, 0, 1};
  auto loss = [&] { return BceWithLogits(logits, labels); };
  auto res = CheckGradients(loss, {logits});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(GradCheckTest, MseLoss) {
  Rng rng(21);
  Tensor a = RandomParam(2, 3, &rng);
  Tensor b = Tensor::Constant(Matrix::Random(2, 3, &rng));
  auto loss = [&] { return MseLoss(a, b); };
  auto res = CheckGradients(loss, {a});
  EXPECT_TRUE(res.passed) << res.max_rel_error;
}

TEST(OpsTest, DropoutTrainingAndEval) {
  Rng rng(22);
  Tensor a = Tensor::Parameter(Matrix::Ones(10, 10));
  Tensor eval_out = Dropout(a, 0.5, &rng, /*training=*/false);
  EXPECT_TRUE(AlmostEqual(eval_out.value(), a.value()));
  Tensor train_out = Dropout(a, 0.5, &rng, /*training=*/true);
  int zeros = 0;
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 10; ++c) {
      const double v = train_out.value().At(r, c);
      EXPECT_TRUE(v == 0.0 || std::fabs(v - 2.0) < 1e-12);
      if (v == 0.0) ++zeros;
    }
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(OpsTest, SoftmaxCrossEntropyMatchesManual) {
  Tensor logits = Tensor::Constant(Matrix::FromFlat(1, 2, {0.0, 0.0}));
  Tensor loss = SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(loss.ScalarValue(), std::log(2.0), 1e-9);
}

// --- Optimizers ---

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  // minimize (x - 3)^2
  Tensor x = Tensor::Parameter(Matrix::FromFlat(1, 1, {0.0}));
  Sgd opt({x}, 0.1);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Tensor diff = ScalarAdd(x, -3.0);
    Tensor loss = SumAll(Mul(diff, diff));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value().At(0, 0), 3.0, 1e-4);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Tensor x = Tensor::Parameter(Matrix::FromFlat(1, 2, {5.0, -5.0}));
  Adam opt({x}, 0.1);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Tensor loss = SumAll(Mul(x, x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.value().MaxAbs(), 0.0, 1e-3);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor x = Tensor::Parameter(Matrix::FromFlat(1, 2, {3.0, 4.0}));
  Sgd opt({x}, 1.0);
  opt.ZeroGrad();
  SumAll(Mul(x, x)).Backward();  // grad = (6, 8), norm 10
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(x.grad().Norm(), 1.0, 1e-9);
}

TEST(OptimizerTest, WeightDecayShrinks) {
  Tensor x = Tensor::Parameter(Matrix::FromFlat(1, 1, {1.0}));
  Sgd opt({x}, 0.1, /*weight_decay=*/0.5);
  opt.ZeroGrad();
  // Zero loss gradient: only decay acts.
  SumAll(ScalarMul(x, 0.0)).Backward();
  opt.Step();
  EXPECT_NEAR(x.value().At(0, 0), 1.0 - 0.1 * 0.5, 1e-12);
}

TEST(InitTest, XavierBounds) {
  Rng rng(30);
  Matrix w = XavierUniform(100, 100, &rng);
  const double bound = std::sqrt(6.0 / 200.0);
  EXPECT_LE(w.MaxAbs(), bound);
  EXPECT_GT(w.MaxAbs(), bound * 0.5);
}

TEST(InitTest, HeNormalStddev) {
  Rng rng(31);
  Matrix w = HeNormal(200, 200, &rng);
  double sum = 0, sq = 0;
  for (int r = 0; r < w.rows(); ++r) {
    for (int c = 0; c < w.cols(); ++c) {
      sum += w.At(r, c);
      sq += w.At(r, c) * w.At(r, c);
    }
  }
  const double n = 200.0 * 200.0;
  const double var = sq / n - (sum / n) * (sum / n);
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 200.0), 0.01);
}

}  // namespace
}  // namespace ag
}  // namespace dbg4eth
